#include "script/analysis/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "script/analysis/host_api.hpp"
#include "script/analysis/passes.hpp"
#include "script/ir/lower.hpp"
#include "script/parser.hpp"
#include "sensors/energy.hpp"

namespace sor::script::analysis {

namespace {

// ===========================================================================
// Pass 1+2+3: scope/flow, types, capability.
//
// One abstract interpretation walk mirroring the interpreter's scoping rules
// exactly (src/script/interpreter.cpp): a scope stack whose bottom is the
// global scope, block scopes pushed for if/while/for bodies, `local`
// declaring in the innermost scope, plain assignment writing the nearest
// enclosing binding or else creating a global. Branches are joined; a name
// bound on only one incoming path becomes "maybe unassigned" (SA102).
// ===========================================================================

struct VarInfo {
  SType type = SType::kAny;
  bool maybe = false;  // possibly unassigned on some path
};

using Scope = std::map<std::string, VarInfo>;

SType JoinType(SType a, SType b) { return a == b ? a : SType::kAny; }

bool CouldBe(SType t, SType want) { return t == want || t == SType::kAny; }

class ScopeTypeChecker {
 public:
  ScopeTypeChecker(const Program& program, const AnalyzerOptions& options,
                   std::vector<Diagnostic>& out,
                   std::set<SensorKind>& required)
      : program_(program), options_(options), out_(out), required_(required) {}

  void Run() {
    Collect(program_.statements, /*top_level_main=*/true);
    scopes_.clear();
    scopes_.emplace_back();  // globals
    in_function_ = false;
    loop_depth_ = 0;
    WalkBlock(program_.statements);
    // Function bodies are checked against the set of every global the
    // program could ever create (functions run with whatever globals exist
    // at call time, so flow-sensitive "maybe unassigned" does not apply).
    for (const auto& [name, fn] : functions_) WalkFunction(*fn);
  }

 private:
  void Emit(std::string code, Severity sev, int line, std::string msg) {
    out_.push_back(
        Diagnostic{std::move(code), sev, line, std::move(msg)});
  }

  bool IsExtraHostFn(const std::string& name) const {
    return std::find(options_.extra_host_fns.begin(),
                     options_.extra_host_fns.end(),
                     name) != options_.extra_host_fns.end();
  }

  // --- pre-pass: every name the program can bind, anywhere ----------------

  void Collect(const std::vector<StmtPtr>& body, bool top_level_main) {
    for (const StmtPtr& sp : body) {
      const Stmt& st = *sp;
      switch (st.kind) {
        case Stmt::Kind::kLocal:
          assigned_anywhere_.insert(st.name);
          // A top-level `local` lives in the interpreter's global scope, so
          // function bodies can see it.
          if (top_level_main) global_candidates_.insert(st.name);
          break;
        case Stmt::Kind::kAssign:
          if (!st.target_index) {
            assigned_anywhere_.insert(st.name);
            // Plain assignment creates a global when no local exists.
            global_candidates_.insert(st.name);
          }
          break;
        case Stmt::Kind::kNumericFor:
          assigned_anywhere_.insert(st.name);
          Collect(st.body, false);
          break;
        case Stmt::Kind::kWhile:
          Collect(st.body, false);
          break;
        case Stmt::Kind::kIf:
          Collect(st.body, false);
          Collect(st.else_body, false);
          break;
        case Stmt::Kind::kFunction: {
          auto [it, inserted] = functions_.emplace(st.name, &st);
          const int arity = static_cast<int>(st.params.size());
          if (inserted) {
            fn_arity_[st.name] = arity;
          } else if (fn_arity_[st.name] != arity) {
            fn_arity_[st.name] = -1;  // conflicting defs: skip arity checks
          }
          for (const std::string& p : st.params)
            assigned_anywhere_.insert(p);
          Collect(st.body, false);
          break;
        }
        case Stmt::Kind::kExpr:
        case Stmt::Kind::kReturn:
        case Stmt::Kind::kBreak:
          break;
      }
    }
  }

  // --- environment --------------------------------------------------------

  VarInfo* Find(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (auto v = it->find(name); v != it->end()) return &v->second;
    }
    return nullptr;
  }

  bool VisibleInOuterScope(const std::string& name) const {
    for (std::size_t i = 0; i + 1 < scopes_.size(); ++i) {
      if (scopes_[i].count(name) != 0) return true;
    }
    return false;
  }

  // Merge `b` into `a` (same stack depth): a name bound in only one path is
  // maybe-unassigned after the join.
  static void MergeScopes(std::vector<Scope>& a, const std::vector<Scope>& b) {
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      for (auto& [name, info] : a[i]) {
        auto it = b[i].find(name);
        if (it == b[i].end()) {
          info.maybe = true;
        } else {
          info.type = JoinType(info.type, it->second.type);
          info.maybe = info.maybe || it->second.maybe;
        }
      }
      for (const auto& [name, info] : b[i]) {
        if (a[i].count(name) == 0) {
          a[i][name] = VarInfo{info.type, true};
        }
      }
    }
  }

  // --- statements ---------------------------------------------------------

  // Returns true when the block always transfers control out (return/break),
  // i.e. statements after it in the enclosing block are dead.
  bool WalkBlock(const std::vector<StmtPtr>& body) {
    bool terminated = false;
    for (const StmtPtr& st : body) {
      if (terminated) {
        Emit("SA104", Severity::kWarning, st->line,
             "unreachable statement (control flow never reaches here)");
        // Dead statements never execute: skip them rather than cascade.
        return true;
      }
      terminated = WalkStmt(*st);
    }
    return terminated;
  }

  bool WalkStmt(const Stmt& st) {
    switch (st.kind) {
      case Stmt::Kind::kLocal: {
        const SType t = WalkExpr(*st.expr);
        if (VisibleInOuterScope(st.name)) {
          Emit("SA103", Severity::kWarning, st.line,
               "local '" + st.name + "' shadows an outer variable");
        }
        scopes_.back()[st.name] = VarInfo{t, false};
        return false;
      }
      case Stmt::Kind::kAssign: {
        const SType t = WalkExpr(*st.expr);
        if (st.target_index) {
          const SType lt = WalkExpr(*st.target_index->lhs);
          if (!CouldBe(lt, SType::kList)) {
            Emit("SA201", Severity::kError, st.line,
                 "cannot index a " + std::string(to_string(lt)));
          }
          const SType it = WalkExpr(*st.target_index->rhs);
          if (!CouldBe(it, SType::kNumber)) {
            Emit("SA201", Severity::kError, st.line,
                 "list index must be a number, got " +
                     std::string(to_string(it)));
          }
          return false;
        }
        if (VarInfo* v = Find(st.name)) {
          v->type = t;
          v->maybe = false;
        } else {
          scopes_.front()[st.name] = VarInfo{t, false};  // creates a global
        }
        return false;
      }
      case Stmt::Kind::kExpr:
        WalkExpr(*st.expr);
        return false;
      case Stmt::Kind::kIf: {
        WalkExpr(*st.expr);
        const std::vector<Scope> snapshot = scopes_;
        scopes_.emplace_back();
        const bool then_exits = WalkBlock(st.body);
        scopes_.pop_back();
        std::vector<Scope> after_then = std::move(scopes_);
        scopes_ = snapshot;
        scopes_.emplace_back();
        const bool else_exits = WalkBlock(st.else_body);
        scopes_.pop_back();
        // State that flows past the `if` comes only from branches that fall
        // through.
        if (then_exits && !else_exits) {
          // keep else state (already current)
        } else if (else_exits && !then_exits) {
          scopes_ = std::move(after_then);
        } else {
          MergeScopes(scopes_, after_then);
        }
        return then_exits && else_exits;
      }
      case Stmt::Kind::kWhile: {
        // The first condition evaluation sees exactly the entry state, so
        // analyzing it (and the first body iteration) against the entry
        // state reports precisely the errors iteration one would hit.
        WalkExpr(*st.expr);
        const std::vector<Scope> snapshot = scopes_;
        ++loop_depth_;
        scopes_.emplace_back();
        WalkBlock(st.body);
        scopes_.pop_back();
        --loop_depth_;
        // Zero iterations are possible: join body effects with entry state.
        std::vector<Scope> after_body = std::move(scopes_);
        scopes_ = snapshot;
        MergeScopes(scopes_, after_body);
        return false;
      }
      case Stmt::Kind::kNumericFor: {
        auto check_bound = [&](const Expr* e, const char* what) {
          if (e == nullptr) return;
          const SType t = WalkExpr(*e);
          if (!CouldBe(t, SType::kNumber)) {
            Emit("SA201", Severity::kError, st.line,
                 std::string("for ") + what + " must be a number, got " +
                     std::string(to_string(t)));
          }
        };
        check_bound(st.for_start.get(), "start");
        check_bound(st.for_stop.get(), "stop");
        check_bound(st.for_step.get(), "step");
        if (Find(st.name) != nullptr) {
          Emit("SA103", Severity::kWarning, st.line,
               "loop variable '" + st.name + "' shadows an outer variable");
        }
        const std::vector<Scope> snapshot = scopes_;
        ++loop_depth_;
        scopes_.emplace_back();
        scopes_.back()[st.name] = VarInfo{SType::kNumber, false};
        WalkBlock(st.body);
        scopes_.pop_back();
        --loop_depth_;
        std::vector<Scope> after_body = std::move(scopes_);
        scopes_ = snapshot;
        MergeScopes(scopes_, after_body);
        return false;
      }
      case Stmt::Kind::kFunction: {
        if (FindHostSignature(st.name) != nullptr ||
            IsExtraHostFn(st.name)) {
          Emit("SA106", Severity::kError, st.line,
               "cannot shadow host function '" + st.name + "'");
        }
        defined_so_far_.insert(st.name);
        return false;  // body checked separately in WalkFunction
      }
      case Stmt::Kind::kReturn:
        if (st.expr) WalkExpr(*st.expr);
        return true;
      case Stmt::Kind::kBreak:
        if (loop_depth_ == 0) {
          Emit("SA105", Severity::kError, st.line,
               "'break' outside of a loop silently ends the "
               "enclosing block");
        }
        return true;
    }
    return false;
  }

  void WalkFunction(const Stmt& fn) {
    in_function_ = true;
    scopes_.clear();
    scopes_.emplace_back();
    for (const std::string& g : global_candidates_)
      scopes_.front()[g] = VarInfo{SType::kAny, false};
    scopes_.emplace_back();
    for (const std::string& p : fn.params)
      scopes_.back()[p] = VarInfo{SType::kAny, false};
    loop_depth_ = 0;
    WalkBlock(fn.body);
    in_function_ = false;
  }

  // --- expressions --------------------------------------------------------

  SType WalkExpr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kNumber: return SType::kNumber;
      case Expr::Kind::kString: return SType::kString;
      case Expr::Kind::kBool: return SType::kBool;
      case Expr::Kind::kNil: return SType::kNil;
      case Expr::Kind::kName: {
        if (VarInfo* v = Find(e.text)) {
          if (v->maybe) {
            Emit("SA102", Severity::kWarning, e.line,
                 "'" + e.text + "' may be unassigned here");
          }
          return v->type;
        }
        if (in_function_) {
          // Globals are modeled flow-insensitively inside function bodies.
          if (global_candidates_.count(e.text) != 0) return SType::kAny;
        }
        if (assigned_anywhere_.count(e.text) != 0) {
          Emit("SA102", Severity::kWarning, e.line,
               "'" + e.text + "' is used before it is assigned");
          return SType::kAny;
        }
        if (functions_.count(e.text) != 0) {
          Emit("SA101", Severity::kError, e.line,
               "undefined name '" + e.text +
                   "' (functions are not values; call it instead)");
        } else {
          Emit("SA101", Severity::kError, e.line,
               "undefined name '" + e.text + "'");
        }
        return SType::kAny;
      }
      case Expr::Kind::kUnary: {
        const SType t = WalkExpr(*e.lhs);
        switch (e.un_op) {
          case UnOp::kNeg:
            if (!CouldBe(t, SType::kNumber)) {
              Emit("SA201", Severity::kError, e.line,
                   "cannot negate a " + std::string(to_string(t)));
            }
            return SType::kNumber;
          case UnOp::kNot:
            return SType::kBool;
          case UnOp::kLen:
            if (!CouldBe(t, SType::kList) && !CouldBe(t, SType::kString)) {
              Emit("SA201", Severity::kError, e.line,
                   "cannot take length of a " + std::string(to_string(t)));
            }
            return SType::kNumber;
        }
        return SType::kAny;
      }
      case Expr::Kind::kBinary: return WalkBinary(e);
      case Expr::Kind::kCall: return WalkCall(e);
      case Expr::Kind::kIndex: {
        const SType lt = WalkExpr(*e.lhs);
        if (!CouldBe(lt, SType::kList)) {
          Emit("SA201", Severity::kError, e.line,
               "cannot index a " + std::string(to_string(lt)));
        }
        const SType it = WalkExpr(*e.rhs);
        if (!CouldBe(it, SType::kNumber)) {
          Emit("SA201", Severity::kError, e.line,
               "list index must be a number, got " +
                   std::string(to_string(it)));
        }
        return SType::kAny;  // element type is unknown
      }
      case Expr::Kind::kListLiteral: {
        for (const ExprPtr& arg : e.args) WalkExpr(*arg);
        return SType::kList;
      }
    }
    return SType::kAny;
  }

  SType WalkBinary(const Expr& e) {
    if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
      // Lua semantics: the result is one of the operands.
      const SType a = WalkExpr(*e.lhs);
      const SType b = WalkExpr(*e.rhs);
      return JoinType(a, b);
    }
    const SType a = WalkExpr(*e.lhs);
    const SType b = WalkExpr(*e.rhs);
    auto type_names = [&] {
      return std::string(to_string(a)) + " and " + to_string(b);
    };
    switch (e.bin_op) {
      case BinOp::kAdd:
      case BinOp::kSub:
      case BinOp::kMul:
      case BinOp::kDiv:
      case BinOp::kMod:
        if (!CouldBe(a, SType::kNumber) || !CouldBe(b, SType::kNumber)) {
          Emit("SA201", Severity::kError, e.line,
               "arithmetic on " + type_names());
        }
        return SType::kNumber;
      case BinOp::kConcat:
        if (a == SType::kList || b == SType::kList) {
          Emit("SA201", Severity::kError, e.line, "cannot concatenate lists");
        }
        return SType::kString;
      case BinOp::kEq:
      case BinOp::kNe:
        return SType::kBool;
      case BinOp::kLt:
      case BinOp::kLe:
      case BinOp::kGt:
      case BinOp::kGe: {
        auto comparable = [](SType t) {
          return t == SType::kNumber || t == SType::kString || t == SType::kAny;
        };
        const bool definite_mismatch =
            !comparable(a) || !comparable(b) ||
            (a != SType::kAny && b != SType::kAny && a != b);
        if (definite_mismatch) {
          Emit("SA201", Severity::kError, e.line,
               "cannot compare " + type_names());
        }
        return SType::kBool;
      }
      case BinOp::kAnd:
      case BinOp::kOr:
        break;  // handled above
    }
    return SType::kAny;
  }

  static bool ArgCompatible(SType actual, ArgType want) {
    if (actual == SType::kAny) return true;
    switch (want) {
      case ArgType::kAny: return true;
      case ArgType::kNumber: return actual == SType::kNumber;
      case ArgType::kString: return actual == SType::kString;
      case ArgType::kList: return actual == SType::kList;
      case ArgType::kListOrString:
        return actual == SType::kList || actual == SType::kString;
    }
    return true;
  }

  static const char* ArgTypeName(ArgType t) {
    switch (t) {
      case ArgType::kNumber: return "number";
      case ArgType::kString: return "string";
      case ArgType::kList: return "list";
      case ArgType::kListOrString: return "list or string";
      case ArgType::kAny: return "any";
    }
    return "?";
  }

  SType WalkCall(const Expr& e) {
    std::vector<SType> arg_types;
    arg_types.reserve(e.args.size());
    for (const ExprPtr& arg : e.args) arg_types.push_back(WalkExpr(*arg));
    const int n = static_cast<int>(arg_types.size());

    if (const HostSignature* sig = FindHostSignature(e.text)) {
      if (n < sig->min_args || (sig->max_args >= 0 && n > sig->max_args)) {
        std::string expect =
            sig->max_args < 0
                ? "at least " + std::to_string(sig->min_args)
                : (sig->min_args == sig->max_args
                       ? std::to_string(sig->min_args)
                       : std::to_string(sig->min_args) + " to " +
                             std::to_string(sig->max_args));
        Emit("SA202", Severity::kError, e.line,
             "'" + std::string(sig->name) + "' expects " + expect +
                 " argument(s), got " + std::to_string(n));
      }
      for (int i = 0; i < n; ++i) {
        const ArgType want = i < 2 ? sig->args[i] : sig->rest;
        if (!ArgCompatible(arg_types[static_cast<std::size_t>(i)], want)) {
          Emit("SA202", Severity::kError, e.line,
               "argument " + std::to_string(i + 1) + " of '" +
                   std::string(sig->name) + "' must be " + ArgTypeName(want) +
                   ", got " +
                   to_string(arg_types[static_cast<std::size_t>(i)]));
        }
      }
      if (sig->sensor.has_value()) {
        required_.insert(*sig->sensor);
        if (options_.available_sensors.has_value()) {
          const auto& avail = *options_.available_sensors;
          if (std::find(avail.begin(), avail.end(), *sig->sensor) ==
              avail.end()) {
            Emit("SA302", Severity::kError, e.line,
                 "'" + std::string(sig->name) + "' needs sensor '" +
                     std::string(to_string(*sig->sensor)) +
                     "', which the target device does not provide");
          }
        }
      }
      return sig->ret;
    }

    if (IsExtraHostFn(e.text)) return SType::kAny;

    if (auto it = functions_.find(e.text); it != functions_.end()) {
      const int arity = fn_arity_[e.text];
      if (arity >= 0 && n != arity) {
        Emit("SA203", Severity::kError, e.line,
             "'" + e.text + "' expects " + std::to_string(arity) +
                 " args, got " + std::to_string(n));
      }
      if (!in_function_ && defined_so_far_.count(e.text) == 0) {
        Emit("SA107", Severity::kWarning, e.line,
             "'" + e.text + "' is called before its definition on line " +
                 std::to_string(it->second->line) + " has executed");
      }
      return SType::kAny;
    }

    Emit("SA301", Severity::kError, e.line,
         "function '" + e.text + "' is not in the allowed function whitelist");
    return SType::kAny;
  }

  const Program& program_;
  const AnalyzerOptions& options_;
  std::vector<Diagnostic>& out_;
  std::set<SensorKind>& required_;

  std::set<std::string> assigned_anywhere_;
  std::set<std::string> global_candidates_;
  std::map<std::string, const Stmt*> functions_;
  std::map<std::string, int> fn_arity_;
  std::set<std::string> defined_so_far_;

  std::vector<Scope> scopes_;
  bool in_function_ = false;
  int loop_depth_ = 0;
};

// ===========================================================================
// Pass 4: cost & termination.
//
// Interval-based constant folding drives static loop bounds; the result is
// a worst-case count of interpreter ticks (mirroring the Tick() placement in
// src/script/interpreter.cpp) and of physical acquisition samples, priced
// with sensors::AcquisitionEnergyMj.
// ===========================================================================

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Interval {
  double lo = -kInf;
  double hi = kInf;
  [[nodiscard]] bool finite() const {
    return std::isfinite(lo) && std::isfinite(hi);
  }
};

// Abstract value: a numeric range, a truthiness verdict, a list-length
// range — whichever is statically known.
struct CVal {
  std::optional<Interval> num;
  std::optional<bool> truth;
  std::optional<Interval> len;
};

std::optional<Interval> IAdd(const std::optional<Interval>& a,
                             const std::optional<Interval>& b) {
  if (!a || !b || !a->finite() || !b->finite()) return std::nullopt;
  return Interval{a->lo + b->lo, a->hi + b->hi};
}
std::optional<Interval> ISub(const std::optional<Interval>& a,
                             const std::optional<Interval>& b) {
  if (!a || !b || !a->finite() || !b->finite()) return std::nullopt;
  return Interval{a->lo - b->hi, a->hi - b->lo};
}
std::optional<Interval> IMul(const std::optional<Interval>& a,
                             const std::optional<Interval>& b) {
  if (!a || !b || !a->finite() || !b->finite()) return std::nullopt;
  const double p1 = a->lo * b->lo, p2 = a->lo * b->hi;
  const double p3 = a->hi * b->lo, p4 = a->hi * b->hi;
  return Interval{std::min(std::min(p1, p2), std::min(p3, p4)),
                  std::max(std::max(p1, p2), std::max(p3, p4))};
}
Interval IHull(const Interval& a, const Interval& b) {
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

// Worst-case resources for one execution of a fragment.
struct Cost {
  double steps = 0;
  double samples = 0;   // physical acquisition samples
  double energy = 0;    // millijoules
  bool bounded = true;
  int heavy_line = 0;        // acquisition site with the largest energy
  double heavy_energy = -1;
  int heavy_loop_line = 0;   // loop contributing the most steps
  double heavy_loop_steps = -1;

  void Add(const Cost& o) {
    steps += o.steps;
    samples += o.samples;
    energy += o.energy;
    bounded = bounded && o.bounded;
    if (o.heavy_energy > heavy_energy) {
      heavy_energy = o.heavy_energy;
      heavy_line = o.heavy_line;
    }
    if (o.heavy_loop_steps > heavy_loop_steps) {
      heavy_loop_steps = o.heavy_loop_steps;
      heavy_loop_line = o.heavy_loop_line;
    }
  }

  void Scale(double n, int loop_line) {
    steps *= n;
    samples *= n;
    energy *= n;
    heavy_energy *= n;
    heavy_loop_steps *= n;
    if (steps > heavy_loop_steps) {
      heavy_loop_steps = steps;
      heavy_loop_line = loop_line;
    }
  }

  static Cost Max(const Cost& a, const Cost& b) {
    Cost m;
    m.steps = std::max(a.steps, b.steps);
    m.samples = std::max(a.samples, b.samples);
    m.energy = std::max(a.energy, b.energy);
    m.bounded = a.bounded && b.bounded;
    const Cost& h = a.heavy_energy >= b.heavy_energy ? a : b;
    m.heavy_energy = h.heavy_energy;
    m.heavy_line = h.heavy_line;
    const Cost& hl = a.heavy_loop_steps >= b.heavy_loop_steps ? a : b;
    m.heavy_loop_steps = hl.heavy_loop_steps;
    m.heavy_loop_line = hl.heavy_loop_line;
    return m;
  }
};

class CostAnalyzer {
 public:
  CostAnalyzer(const Program& program, const AnalyzerOptions& options,
               std::vector<Diagnostic>& out,
               const std::map<LoopKey, double>* trip_overrides = nullptr)
      : program_(program), options_(options), out_(out),
        trip_overrides_(trip_overrides) {}

  Cost Run() {
    CollectFunctions(program_.statements);
    env_.clear();
    env_.emplace_back();
    return CostOfBlock(program_.statements);
  }

 private:
  void Emit(std::string code, int line, std::string msg) {
    out_.push_back(
        Diagnostic{std::move(code), Severity::kError, line, std::move(msg)});
  }

  void CollectFunctions(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& sp : body) {
      const Stmt& st = *sp;
      if (st.kind == Stmt::Kind::kFunction) {
        fns_[st.name] = &st;  // later definition wins, like the interpreter
        CollectFunctions(st.body);
      } else if (st.kind == Stmt::Kind::kIf) {
        CollectFunctions(st.body);
        CollectFunctions(st.else_body);
      } else if (st.kind == Stmt::Kind::kWhile ||
                 st.kind == Stmt::Kind::kNumericFor) {
        CollectFunctions(st.body);
      }
    }
  }

  // --- abstract environment ----------------------------------------------

  using CEnv = std::map<std::string, CVal>;

  CVal* FindVal(const std::string& name) {
    for (auto it = env_.rbegin(); it != env_.rend(); ++it) {
      if (auto v = it->find(name); v != it->end()) return &v->second;
    }
    return nullptr;
  }

  void AssignVal(const std::string& name, CVal v) {
    if (CVal* slot = FindVal(name)) {
      *slot = std::move(v);
    } else {
      env_.front()[name] = std::move(v);
    }
  }

  static void JoinEnv(std::vector<CEnv>& a, const std::vector<CEnv>& b) {
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
      for (auto it = a[i].begin(); it != a[i].end();) {
        auto bv = b[i].find(it->first);
        if (bv == b[i].end()) {
          it = a[i].erase(it);
          continue;
        }
        CVal& av = it->second;
        const CVal& o = bv->second;
        av.num = (av.num && o.num) ? std::optional(IHull(*av.num, *o.num))
                                   : std::nullopt;
        av.len = (av.len && o.len) ? std::optional(IHull(*av.len, *o.len))
                                   : std::nullopt;
        av.truth = (av.truth && o.truth && *av.truth == *o.truth)
                       ? av.truth
                       : std::nullopt;
        ++it;
      }
    }
  }

  // Names (re)assigned anywhere in a block — used to widen loop bodies.
  static void CollectAssigned(const std::vector<StmtPtr>& body,
                              std::set<std::string>& out) {
    for (const StmtPtr& sp : body) {
      const Stmt& st = *sp;
      switch (st.kind) {
        case Stmt::Kind::kLocal:
        case Stmt::Kind::kAssign:
          if (!st.target_index) out.insert(st.name);
          break;
        case Stmt::Kind::kNumericFor:
          out.insert(st.name);
          CollectAssigned(st.body, out);
          break;
        case Stmt::Kind::kWhile:
          CollectAssigned(st.body, out);
          break;
        case Stmt::Kind::kIf:
          CollectAssigned(st.body, out);
          CollectAssigned(st.else_body, out);
          break;
        default:
          break;
      }
    }
  }

  void Widen(const std::set<std::string>& names) {
    for (CEnv& scope : env_) {
      for (const std::string& n : names) {
        if (auto it = scope.find(n); it != scope.end()) it->second = CVal{};
      }
    }
  }

  // --- expressions --------------------------------------------------------

  struct EvalResult {
    CVal val;
    Cost cost;
  };

  EvalResult EvalC(const Expr& e) {
    EvalResult r;
    r.cost.steps = 1;  // the interpreter ticks once per evaluated node
    switch (e.kind) {
      case Expr::Kind::kNumber:
        r.val.num = Interval{e.number, e.number};
        r.val.truth = true;
        return r;
      case Expr::Kind::kString:
        r.val.truth = true;
        return r;
      case Expr::Kind::kBool:
        r.val.truth = e.boolean;
        return r;
      case Expr::Kind::kNil:
        r.val.truth = false;
        return r;
      case Expr::Kind::kName:
        if (const CVal* v = FindVal(e.text)) r.val = *v;
        return r;
      case Expr::Kind::kUnary: {
        EvalResult operand = EvalC(*e.lhs);
        r.cost.Add(operand.cost);
        switch (e.un_op) {
          case UnOp::kNeg:
            if (operand.val.num && operand.val.num->finite())
              r.val.num = Interval{-operand.val.num->hi, -operand.val.num->lo};
            break;
          case UnOp::kNot:
            if (operand.val.truth) r.val.truth = !*operand.val.truth;
            break;
          case UnOp::kLen:
            r.val.num = operand.val.len;
            break;
        }
        return r;
      }
      case Expr::Kind::kBinary: {
        EvalResult a = EvalC(*e.lhs);
        EvalResult b = EvalC(*e.rhs);
        // and/or short-circuit; worst case evaluates both operands.
        r.cost.Add(a.cost);
        r.cost.Add(b.cost);
        switch (e.bin_op) {
          case BinOp::kAdd: r.val.num = IAdd(a.val.num, b.val.num); break;
          case BinOp::kSub: r.val.num = ISub(a.val.num, b.val.num); break;
          case BinOp::kMul: r.val.num = IMul(a.val.num, b.val.num); break;
          case BinOp::kLt:
          case BinOp::kLe:
          case BinOp::kGt:
          case BinOp::kGe:
            r.val.truth = FoldCompare(e.bin_op, a.val.num, b.val.num);
            break;
          default:
            break;  // div/mod/concat/eq/and/or: value statically unknown
        }
        if (r.val.num) r.val.truth = true;  // numbers are always truthy
        return r;
      }
      case Expr::Kind::kCall:
        return EvalCall(e);
      case Expr::Kind::kIndex: {
        r.cost.Add(EvalC(*e.lhs).cost);
        r.cost.Add(EvalC(*e.rhs).cost);
        return r;
      }
      case Expr::Kind::kListLiteral: {
        for (const ExprPtr& arg : e.args) r.cost.Add(EvalC(*arg).cost);
        const double n = static_cast<double>(e.args.size());
        r.val.len = Interval{n, n};
        r.val.truth = true;
        return r;
      }
    }
    return r;
  }

  static std::optional<bool> FoldCompare(BinOp op,
                                         const std::optional<Interval>& a,
                                         const std::optional<Interval>& b) {
    if (!a || !b) return std::nullopt;
    switch (op) {
      case BinOp::kLt:
        if (a->hi < b->lo) return true;
        if (a->lo >= b->hi) return false;
        break;
      case BinOp::kLe:
        if (a->hi <= b->lo) return true;
        if (a->lo > b->hi) return false;
        break;
      case BinOp::kGt:
        if (a->lo > b->hi) return true;
        if (a->hi <= b->lo) return false;
        break;
      case BinOp::kGe:
        if (a->lo >= b->hi) return true;
        if (a->hi < b->lo) return false;
        break;
      default:
        break;
    }
    return std::nullopt;
  }

  EvalResult EvalCall(const Expr& e) {
    EvalResult r;
    r.cost.steps = 1;
    std::vector<CVal> arg_vals;
    arg_vals.reserve(e.args.size());
    for (const ExprPtr& arg : e.args) {
      EvalResult ar = EvalC(*arg);
      r.cost.Add(ar.cost);
      arg_vals.push_back(std::move(ar.val));
    }

    const HostSignature* sig = FindHostSignature(e.text);
    if (sig != nullptr && sig->sensor.has_value()) {
      // Acquisition: samples = first argument when statically known, the
      // configured per-window default otherwise.
      double samples = static_cast<double>(options_.default_samples_per_window);
      if (!e.args.empty()) {
        if (arg_vals[0].num && arg_vals[0].num->finite()) {
          samples = std::max(1.0, std::floor(arg_vals[0].num->hi));
        } else {
          out_.push_back(Diagnostic{
              "SA405", Severity::kWarning, e.line,
              "sample count of '" + e.text +
                  "' is not statically derivable; cost estimate assumes " +
                  std::to_string(options_.default_samples_per_window)});
        }
      }
      const double mj = samples * sensors::AcquisitionEnergyMj(*sig->sensor);
      r.cost.samples += samples;
      r.cost.energy += mj;
      if (mj > r.cost.heavy_energy) {
        r.cost.heavy_energy = mj;
        r.cost.heavy_line = e.line;
      }
      // Denied or failed acquisitions legitimately return an empty list.
      r.val.len = Interval{0, samples};
      r.val.truth = true;
      return r;
    }
    if (sig != nullptr) {
      if (sig->name == "len" && arg_vals.size() == 1 && arg_vals[0].len) {
        r.val.num = arg_vals[0].len;
        r.val.truth = true;
      } else if (sig->name == "push" && !e.args.empty() &&
                 e.args[0]->kind == Expr::Kind::kName) {
        // push(list, v) appends in place: the bound list grows by one.
        if (CVal* lv = FindVal(e.args[0]->text); lv != nullptr && lv->len) {
          lv->len = Interval{lv->len->lo + 1, lv->len->hi + 1};
          r.val.num = lv->len;
        }
      }
      return r;
    }
    if (auto it = fns_.find(e.text); it != fns_.end()) {
      r.cost.Add(CostOfFunction(e.text));
      return r;
    }
    return r;  // unknown function: SA301 already reported by the scope pass
  }

  Cost CostOfFunction(const std::string& name) {
    if (auto memo = fn_memo_.find(name); memo != fn_memo_.end())
      return memo->second;
    if (fn_stack_.count(name) != 0) {
      if (recursion_reported_.insert(name).second) {
        Emit("SA402", fns_[name]->line,
             "function '" + name +
                 "' is recursive; its cost cannot be bounded");
      }
      Cost unbounded;
      unbounded.bounded = false;
      return unbounded;
    }
    fn_stack_.insert(name);
    // Function bodies run with unknown parameters and globals.
    std::vector<CEnv> saved = std::move(env_);
    env_.clear();
    env_.emplace_back();
    env_.emplace_back();
    Cost c = CostOfBlock(fns_[name]->body);
    env_ = std::move(saved);
    fn_stack_.erase(name);
    fn_memo_[name] = c;
    return c;
  }

  // --- statements ---------------------------------------------------------

  Cost CostOfBlock(const std::vector<StmtPtr>& body) {
    Cost c;
    for (const StmtPtr& st : body) c.Add(CostOfStmt(*st));
    return c;
  }

  Cost CostOfStmt(const Stmt& st) {
    Cost c;
    c.steps = 1;  // RunStmt ticks once per statement
    switch (st.kind) {
      case Stmt::Kind::kLocal: {
        EvalResult v = EvalC(*st.expr);
        c.Add(v.cost);
        env_.back()[st.name] = std::move(v.val);
        return c;
      }
      case Stmt::Kind::kAssign: {
        EvalResult v = EvalC(*st.expr);
        c.Add(v.cost);
        if (st.target_index) {
          c.Add(EvalC(*st.target_index->lhs).cost);
          c.Add(EvalC(*st.target_index->rhs).cost);
          // list[n+1] = v appends: worst case the list grows by one.
          if (st.target_index->lhs->kind == Expr::Kind::kName) {
            if (CVal* lv = FindVal(st.target_index->lhs->text);
                lv != nullptr && lv->len) {
              lv->len->hi += 1;
            }
          }
          return c;
        }
        AssignVal(st.name, std::move(v.val));
        return c;
      }
      case Stmt::Kind::kExpr:
        c.Add(EvalC(*st.expr).cost);
        return c;
      case Stmt::Kind::kIf: {
        EvalResult cond = EvalC(*st.expr);
        c.Add(cond.cost);
        const std::vector<CEnv> snapshot = env_;
        env_.emplace_back();
        Cost then_c = CostOfBlock(st.body);
        env_.pop_back();
        std::vector<CEnv> after_then = std::move(env_);
        env_ = snapshot;
        env_.emplace_back();
        Cost else_c = CostOfBlock(st.else_body);
        env_.pop_back();
        if (cond.val.truth.has_value()) {
          // Statically decided branch: only that arm can run.
          if (*cond.val.truth) {
            env_ = std::move(after_then);
            c.Add(then_c);
          } else {
            c.Add(else_c);
          }
        } else {
          JoinEnv(env_, after_then);
          c.Add(Cost::Max(then_c, else_c));
        }
        return c;
      }
      case Stmt::Kind::kWhile: {
        EvalResult cond = EvalC(*st.expr);
        std::optional<double> bound = WhileBound(st, cond.val);
        // The flow-sensitive interval pass can only tighten (or supply) a
        // bound, never loosen one.
        if (const std::optional<double> ov = Override(st.line, 0)) {
          bound = bound ? std::min(*bound, *ov) : *ov;
        }
        std::set<std::string> assigned;
        CollectAssigned(st.body, assigned);
        Widen(assigned);
        env_.emplace_back();
        Cost body_c = CostOfBlock(st.body);
        env_.pop_back();
        if (!bound.has_value()) {
          Emit("SA401", st.line,
               "cannot derive a static bound for this while loop");
          c.bounded = false;
          c.Add(body_c);  // keep nested diagnostics / sensors counted once
          c.Add(cond.cost);
          return c;
        }
        const double n = *bound;
        body_c.Scale(n, st.line);
        Cost cond_c = cond.cost;
        cond_c.Scale(n + 1, st.line);
        c.Add(body_c);
        c.Add(cond_c);
        c.steps += n + 1;  // loop head ticks once per check, incl. the last
        return c;
      }
      case Stmt::Kind::kNumericFor: {
        EvalResult start = EvalC(*st.for_start);
        EvalResult stop = EvalC(*st.for_stop);
        c.Add(start.cost);
        c.Add(stop.cost);
        std::optional<Interval> step = Interval{1, 1};
        if (st.for_step) {
          EvalResult sv = EvalC(*st.for_step);
          c.Add(sv.cost);
          step = sv.val.num;
        }
        std::optional<double> bound;
        std::optional<Interval> var_range;
        if (start.val.num && stop.val.num && step && step->finite() &&
            start.val.num->finite() && stop.val.num->finite()) {
          const Interval& s0 = *start.val.num;
          const Interval& s1 = *stop.val.num;
          if (step->lo > 0) {
            bound = std::max(0.0, std::floor((s1.hi - s0.lo) / step->lo) + 1);
          } else if (step->hi < 0) {
            bound = std::max(0.0, std::floor((s0.hi - s1.lo) / -step->hi) + 1);
          }
          var_range = IHull(s0, s1);
        }
        if (const std::optional<double> ov = Override(st.line, 1)) {
          bound = bound ? std::min(*bound, *ov) : *ov;
        }
        std::set<std::string> assigned;
        CollectAssigned(st.body, assigned);
        Widen(assigned);
        env_.emplace_back();
        CVal loop_var;
        loop_var.num = var_range;
        loop_var.truth = true;
        env_.back()[st.name] = loop_var;
        Cost body_c = CostOfBlock(st.body);
        env_.pop_back();
        if (!bound.has_value()) {
          Emit("SA401", st.line,
               "cannot derive a static bound for this for loop "
               "(bounds or step are not statically known)");
          c.bounded = false;
          c.Add(body_c);
          return c;
        }
        body_c.Scale(*bound, st.line);
        c.Add(body_c);
        c.steps += *bound;  // per-iteration tick in the loop head
        return c;
      }
      case Stmt::Kind::kFunction:
        return c;  // body is costed at call sites
      case Stmt::Kind::kReturn:
        if (st.expr) c.Add(EvalC(*st.expr).cost);
        return c;
      case Stmt::Kind::kBreak:
        return c;
    }
    return c;
  }

  // --- while-loop bound derivation ----------------------------------------

  static bool AlwaysExits(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& sp : body) {
      const Stmt& st = *sp;
      if (st.kind == Stmt::Kind::kBreak || st.kind == Stmt::Kind::kReturn)
        return true;
      if (st.kind == Stmt::Kind::kIf && AlwaysExits(st.body) &&
          !st.else_body.empty() && AlwaysExits(st.else_body))
        return true;
    }
    return false;
  }

  // Counts assignments to `name` in a block (any nesting) and remembers the
  // last one seen at the top level of the block.
  static void FindAssignments(const std::vector<StmtPtr>& body,
                              const std::string& name, bool top_level,
                              int& count, const Stmt** top_level_assign) {
    for (const StmtPtr& sp : body) {
      const Stmt& st = *sp;
      switch (st.kind) {
        case Stmt::Kind::kLocal:
        case Stmt::Kind::kAssign:
          if (!st.target_index && st.name == name) {
            ++count;
            if (top_level && st.kind == Stmt::Kind::kAssign)
              *top_level_assign = &st;
          }
          break;
        case Stmt::Kind::kNumericFor:
          if (st.name == name) ++count;
          FindAssignments(st.body, name, false, count, top_level_assign);
          break;
        case Stmt::Kind::kWhile:
          FindAssignments(st.body, name, false, count, top_level_assign);
          break;
        case Stmt::Kind::kIf:
          FindAssignments(st.body, name, false, count, top_level_assign);
          FindAssignments(st.else_body, name, false, count, top_level_assign);
          break;
        default:
          break;
      }
    }
  }

  // `v = v + k` / `v = k + v` / `v = v - k` with constant k. Returns the
  // signed per-iteration delta interval.
  std::optional<Interval> StepOf(const Stmt& assign, const std::string& v) {
    if (assign.expr == nullptr ||
        assign.expr->kind != Expr::Kind::kBinary)
      return std::nullopt;
    const Expr& e = *assign.expr;
    auto is_v = [&](const ExprPtr& p) {
      return p->kind == Expr::Kind::kName && p->text == v;
    };
    auto fold = [&](const ExprPtr& p) -> std::optional<Interval> {
      // Evaluated against the widened env: loop-variant names are unknown,
      // so a non-invariant step folds to nullopt and the pattern fails.
      EvalResult r = EvalC(*p);
      if (r.val.num && r.val.num->finite()) return r.val.num;
      return std::nullopt;
    };
    if (e.bin_op == BinOp::kAdd) {
      if (is_v(e.lhs)) return fold(e.rhs);
      if (is_v(e.rhs)) return fold(e.lhs);
    } else if (e.bin_op == BinOp::kSub && is_v(e.lhs)) {
      std::optional<Interval> k = fold(e.rhs);
      if (k) return Interval{-k->hi, -k->lo};
    }
    return std::nullopt;
  }

  // Static iteration bound for `while cond do body end`, or nullopt.
  std::optional<double> WhileBound(const Stmt& st, const CVal& cond_val) {
    if (cond_val.truth.has_value() && !*cond_val.truth) return 0.0;
    if (AlwaysExits(st.body)) return 1.0;

    // Induction pattern: cond compares a variable against a loop-invariant
    // limit and the body moves the variable toward it by a constant step.
    if (st.expr == nullptr || st.expr->kind != Expr::Kind::kBinary)
      return std::nullopt;
    const Expr& cond = *st.expr;
    const Expr* var_side = nullptr;
    const Expr* limit_side = nullptr;
    bool var_must_grow = false;  // variable counts up toward the limit
    switch (cond.bin_op) {
      case BinOp::kLt:
      case BinOp::kLe:
        var_side = cond.lhs.get();
        limit_side = cond.rhs.get();
        var_must_grow = true;
        break;
      case BinOp::kGt:
      case BinOp::kGe:
        var_side = cond.lhs.get();
        limit_side = cond.rhs.get();
        var_must_grow = false;
        break;
      default:
        return std::nullopt;
    }
    if (var_side->kind != Expr::Kind::kName) {
      // Flipped form: `limit > v` counts up, `limit < v` counts down.
      if (limit_side->kind != Expr::Kind::kName) return std::nullopt;
      std::swap(var_side, limit_side);
      var_must_grow = !var_must_grow;
    }
    if (var_side->kind != Expr::Kind::kName) return std::nullopt;
    const std::string& v = var_side->text;

    // Entry value of the variable, before any widening.
    const CVal* entry = FindVal(v);
    if (entry == nullptr || !entry->num || !entry->num->finite())
      return std::nullopt;
    const Interval entry_range = *entry->num;

    // The limit and step must be loop-invariant: fold them in a copy of the
    // environment with every body-assigned name forgotten.
    std::set<std::string> assigned;
    CollectAssigned(st.body, assigned);
    const std::vector<CEnv> saved = env_;
    Widen(assigned);
    std::optional<Interval> limit;
    {
      EvalResult lr = EvalC(*limit_side);
      if (lr.val.num && lr.val.num->finite()) limit = lr.val.num;
    }
    std::optional<Interval> step;
    int assign_count = 0;
    const Stmt* increment = nullptr;
    FindAssignments(st.body, v, /*top_level=*/true, assign_count, &increment);
    if (assign_count == 1 && increment != nullptr)
      step = StepOf(*increment, v);
    env_ = saved;

    if (!limit || !step) return std::nullopt;
    if (var_must_grow) {
      if (step->lo <= 0) return std::nullopt;  // may never reach the limit
      return std::max(0.0, (limit->hi - entry_range.lo) / step->lo + 2);
    }
    if (step->hi >= 0) return std::nullopt;
    return std::max(0.0, (entry_range.hi - limit->lo) / -step->hi + 2);
  }

  const Program& program_;
  const AnalyzerOptions& options_;
  std::vector<Diagnostic>& out_;
  const std::map<LoopKey, double>* trip_overrides_ = nullptr;

  // IR-derived bound for a loop, when the interval pass proved one.
  std::optional<double> Override(int line, int kind) const {
    if (trip_overrides_ == nullptr) return std::nullopt;
    const auto it = trip_overrides_->find({line, kind});
    if (it == trip_overrides_->end()) return std::nullopt;
    return it->second;
  }

  std::vector<CEnv> env_;
  std::map<std::string, const Stmt*> fns_;
  std::map<std::string, Cost> fn_memo_;
  std::set<std::string> fn_stack_;
  std::set<std::string> recursion_reported_;
};

int FirstStatementLine(const Program& program) {
  return program.statements.empty() ? 1 : program.statements.front()->line;
}

}  // namespace

AnalysisReport Analyze(const Program& program, const AnalyzerOptions& options) {
  AnalysisReport report;
  std::set<SensorKind> required;
  ScopeTypeChecker scopes(program, options, report.diagnostics, required);
  scopes.Run();

  // Flow-sensitive layer: lower to the dataflow IR, optimize, and collect
  // SA5xx diagnostics, interval trip bounds, and the information-flow
  // manifest from the optimized module.
  IrAnalysis ir_facts;
  if (options.ir_passes) {
    ir::Module mod = ir::Lower(program);
    IrAnalysisOptions ir_opts;
    ir_opts.default_samples_per_window = options.default_samples_per_window;
    ir_facts = AnalyzeModule(mod, ir_opts);
    report.diagnostics.insert(report.diagnostics.end(),
                              ir_facts.diagnostics.begin(),
                              ir_facts.diagnostics.end());
    report.flow = std::move(ir_facts.flow);
  }

  CostAnalyzer coster(program, options, report.diagnostics,
                      options.ir_passes ? &ir_facts.trip_bounds : nullptr);
  const Cost cost = coster.Run();

  report.manifest.required_sensors.assign(required.begin(), required.end());
  report.manifest.cost_bounded = cost.bounded;
  if (cost.bounded) {
    report.manifest.worst_case_steps = cost.steps;
    report.manifest.worst_case_acquisitions = cost.samples;
    report.manifest.worst_case_energy_mj = cost.energy;
    if (options.energy_budget_mj > 0 &&
        cost.energy > options.energy_budget_mj) {
      report.diagnostics.push_back(Diagnostic{
          "SA403", Severity::kError,
          cost.heavy_line > 0 ? cost.heavy_line : FirstStatementLine(program),
          "worst-case energy estimate " + std::to_string(cost.energy) +
              " mJ/run exceeds the budget of " +
              std::to_string(options.energy_budget_mj) + " mJ/run"});
    }
    if (options.max_steps > 0 && cost.steps > options.max_steps) {
      report.diagnostics.push_back(Diagnostic{
          "SA404", Severity::kError,
          cost.heavy_loop_line > 0 ? cost.heavy_loop_line
                                   : FirstStatementLine(program),
          "worst-case step estimate " + std::to_string(cost.steps) +
              " exceeds the interpreter budget of " +
              std::to_string(options.max_steps)});
    }
  }
  SortAndDedupe(report.diagnostics);
  return report;
}

AnalysisReport AnalyzeSource(std::string_view source,
                             const AnalyzerOptions& options) {
  Result<Program> program = Parse(source);
  if (!program.ok()) {
    AnalysisReport report;
    report.diagnostics.push_back(FromError(program.error()));
    report.manifest.cost_bounded = false;
    return report;
  }
  return Analyze(program.value(), options);
}

}  // namespace sor::script::analysis

#include "script/analysis/flow_manifest.hpp"

#include <algorithm>
#include <tuple>

namespace sor::script::analysis {

void Canonicalize(FlowManifest& m) {
  for (FlowSite& site : m.sites) {
    std::sort(site.sensors.begin(), site.sensors.end());
    site.sensors.erase(std::unique(site.sensors.begin(), site.sensors.end()),
                       site.sensors.end());
  }
  std::sort(m.sites.begin(), m.sites.end(),
            [](const FlowSite& a, const FlowSite& b) {
              return std::tie(a.line, a.kind, a.sensors) <
                     std::tie(b.line, b.kind, b.sensors);
            });
  // Merge duplicate (kind, line) sites: union their sensor sets.
  std::vector<FlowSite> merged;
  for (FlowSite& site : m.sites) {
    if (!merged.empty() && merged.back().kind == site.kind &&
        merged.back().line == site.line) {
      FlowSite& dst = merged.back();
      dst.sensors.insert(dst.sensors.end(), site.sensors.begin(),
                         site.sensors.end());
      std::sort(dst.sensors.begin(), dst.sensors.end());
      dst.sensors.erase(std::unique(dst.sensors.begin(), dst.sensors.end()),
                        dst.sensors.end());
    } else {
      merged.push_back(std::move(site));
    }
  }
  m.sites = std::move(merged);
}

std::string EncodeFlowManifest(const FlowManifest& m) {
  std::string out;
  for (const FlowSite& site : m.sites) {
    if (!out.empty()) out += ';';
    out += to_string(site.kind);
    out += '@';
    out += std::to_string(site.line);
    out += '=';
    if (site.sensors.empty()) {
      out += '-';
    } else {
      for (std::size_t i = 0; i < site.sensors.size(); ++i) {
        if (i) out += ',';
        out += to_string(site.sensors[i]);
      }
    }
  }
  return out;
}

Result<FlowManifest> DecodeFlowManifest(std::string_view text) {
  FlowManifest m;
  if (text.empty()) return m;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    const std::string_view entry = text.substr(pos, end - pos);
    const std::size_t at = entry.find('@');
    const std::size_t eq = entry.find('=');
    if (at == std::string_view::npos || eq == std::string_view::npos ||
        eq < at) {
      return Error{Errc::kDecodeError,
                   "malformed flow manifest entry: " + std::string(entry)};
    }
    FlowSite site;
    const std::string_view kind = entry.substr(0, at);
    if (kind == "acquire") {
      site.kind = FlowSite::Kind::kAcquire;
    } else if (kind == "print") {
      site.kind = FlowSite::Kind::kPrint;
    } else if (kind == "return") {
      site.kind = FlowSite::Kind::kReturn;
    } else {
      return Error{Errc::kDecodeError,
                   "unknown flow site kind: " + std::string(kind)};
    }
    const std::string_view line_s = entry.substr(at + 1, eq - at - 1);
    int line = 0;
    for (const char c : line_s) {
      if (c < '0' || c > '9')
        return Error{Errc::kDecodeError,
                     "bad flow site line: " + std::string(line_s)};
      line = line * 10 + (c - '0');
    }
    site.line = line;
    const std::string_view sensors = entry.substr(eq + 1);
    if (sensors != "-") {
      std::size_t s = 0;
      while (s <= sensors.size()) {
        const std::size_t c = std::min(sensors.find(',', s), sensors.size());
        const std::string_view name = sensors.substr(s, c - s);
        const auto k = SensorKindFromString(name);
        if (!k) {
          return Error{Errc::kDecodeError,
                       "unknown sensor in flow manifest: " + std::string(name)};
        }
        site.sensors.push_back(*k);
        if (c == sensors.size()) break;
        s = c + 1;
      }
    }
    m.sites.push_back(std::move(site));
    if (end == text.size()) break;
    pos = end + 1;
  }
  Canonicalize(m);
  return m;
}

}  // namespace sor::script::analysis

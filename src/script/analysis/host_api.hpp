// The SenseScript host API, described statically.
//
// One table describing every function a phone registers for a sensing task:
// the pure stdlib, the interpreter-internal `print`, the per-execution
// introspection helpers, and the data-acquisition vocabulary (one function
// per supported sensor, §II-A's "data acquisition functions we defined").
//
// This table is the shared contract between three consumers:
//   * the phone's TaskInstance, which registers the acquisition functions
//     listed here (src/phone/task_instance.cpp),
//   * the server's ApplicationManager, which refuses to store scripts that
//     call anything else (src/server/managers.cpp), and
//   * the static analyzer, which checks call arity/types against the
//     signatures and derives the per-app required-sensor manifest.
// Adding a sensor means adding one row here and one Provider — both sides
// of the wire pick it up.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "common/sensor_kind.hpp"

namespace sor::script::analysis {

// Argument/return types as the analyzer's lattice sees them.
enum class SType { kNil, kBool, kNumber, kString, kList, kAny };

[[nodiscard]] constexpr const char* to_string(SType t) {
  switch (t) {
    case SType::kNil: return "nil";
    case SType::kBool: return "boolean";
    case SType::kNumber: return "number";
    case SType::kString: return "string";
    case SType::kList: return "list";
    case SType::kAny: return "any";
  }
  return "?";
}

// One argument slot. kListOrString models len()'s union-typed argument.
enum class ArgType { kNumber, kString, kList, kListOrString, kAny };

struct HostSignature {
  std::string_view name;
  int min_args = 0;
  int max_args = 0;              // -1: variadic (extra args typed `rest`)
  ArgType args[2] = {ArgType::kAny, ArgType::kAny};  // first two slots
  ArgType rest = ArgType::kAny;  // type of args beyond the first two
  SType ret = SType::kAny;
  // Set for data-acquisition functions: the sensor this call powers up.
  std::optional<SensorKind> sensor;
};

// Whole-table access (the phone iterates this to register providers).
[[nodiscard]] std::span<const HostSignature> HostSignatures();

// nullptr when `name` is not part of the host API.
[[nodiscard]] const HostSignature* FindHostSignature(std::string_view name);

// Sensor behind an acquisition function, nullopt for non-acquisition names.
[[nodiscard]] std::optional<SensorKind> AcquisitionSensor(
    std::string_view fn_name);

}  // namespace sor::script::analysis

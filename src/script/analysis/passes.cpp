#include "script/analysis/passes.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <set>

#include "script/analysis/dataflow.hpp"
#include "script/analysis/host_api.hpp"
#include "script/ast.hpp"

namespace sor::script::analysis {
namespace {

using ir::BasicBlock;
using ir::Inst;
using ir::kNoReg;
using ir::Op;
using ir::Reg;

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- shared helpers --------------------------------------------------------

bool HasDst(Op op) {
  switch (op) {
    case Op::kConst:
    case Op::kMove:
    case Op::kLoadGlobal:
    case Op::kUnOp:
    case Op::kBinOp:
    case Op::kIndexGet:
    case Op::kListNew:
    case Op::kCall:
      return true;
    default:
      return false;
  }
}

template <typename F>
void ForEachUse(const Inst& i, F f) {
  switch (i.op) {
    case Op::kMove:
    case Op::kUnOp:
    case Op::kCheckDef:
    case Op::kCheckList:
    case Op::kBranch:
      f(i.a);
      break;
    case Op::kBinOp:
    case Op::kIndexGet:
      f(i.a);
      f(i.b);
      break;
    case Op::kIndexSet:
    case Op::kForCheck:
    case Op::kForLoop:
      f(i.a);
      f(i.b);
      f(i.c);
      break;
    case Op::kForStep:
      f(i.a);
      f(i.c);
      break;
    case Op::kStoreGlobal:
      f(i.b);
      break;
    case Op::kCall:
    case Op::kListNew:
      for (std::uint32_t k = 0; k < i.b; ++k) f(i.a + k);
      break;
    case Op::kReturn:
      if (i.a != kNoReg) f(i.a);
      break;
    default:
      break;  // kConst, kClearSlots, kLoadGlobal, kDefineFn, kJump
  }
}

std::vector<std::uint8_t> ReachableBlocks(const ir::Function& fn) {
  std::vector<std::uint8_t> reach(fn.blocks.size(), 0);
  std::vector<int> work{0};
  if (!fn.blocks.empty()) reach[0] = 1;
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    for (const int s : fn.blocks[static_cast<std::size_t>(b)].succs) {
      if (s >= 0 && static_cast<std::size_t>(s) < reach.size() && !reach[s]) {
        reach[static_cast<std::size_t>(s)] = 1;
        work.push_back(s);
      }
    }
  }
  return reach;
}

// Module-wide facts every pass shares.
struct ModuleInfo {
  // name idx -> function indices bound by some kDefineFn.
  std::map<std::uint32_t, std::vector<std::uint32_t>> candidates;
  // [fn][global]: may the function (transitively) store this global?
  std::vector<std::vector<std::uint8_t>> global_writes;
  std::vector<std::uint8_t> global_loaded;  // any kLoadGlobal, module-wide
  std::vector<std::uint8_t> global_stored;  // any kStoreGlobal, module-wide
};

ModuleInfo ComputeModuleInfo(const ir::Module& m) {
  ModuleInfo info;
  const std::size_t nglobals = m.global_names.size();
  info.global_loaded.assign(nglobals, 0);
  info.global_stored.assign(nglobals, 0);
  info.global_writes.assign(m.functions.size(),
                            std::vector<std::uint8_t>(nglobals, 0));
  for (std::size_t f = 0; f < m.functions.size(); ++f) {
    for (const BasicBlock& b : m.functions[f].blocks) {
      for (const Inst& inst : b.insts) {
        if (inst.op == Op::kDefineFn) {
          info.candidates[inst.a].push_back(inst.b);
        } else if (inst.op == Op::kStoreGlobal) {
          info.global_stored[inst.a] = 1;
          info.global_writes[f][inst.a] = 1;
        } else if (inst.op == Op::kLoadGlobal) {
          info.global_loaded[inst.a] = 1;
        }
      }
    }
  }
  // Transitive closure of global writes across calls.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t f = 0; f < m.functions.size(); ++f) {
      for (const BasicBlock& b : m.functions[f].blocks) {
        for (const Inst& inst : b.insts) {
          if (inst.op != Op::kCall) continue;
          const auto it = info.candidates.find(inst.imm);
          if (it == info.candidates.end()) continue;
          for (const std::uint32_t callee : it->second) {
            for (std::size_t g = 0; g < nglobals; ++g) {
              if (info.global_writes[callee][g] && !info.global_writes[f][g]) {
                info.global_writes[f][g] = 1;
                changed = true;
              }
            }
          }
        }
      }
    }
  }
  return info;
}

// --- constant propagation / folding ---------------------------------------

struct CV {
  enum class K : std::uint8_t { kBottom, kConst, kTop };
  K k = K::kBottom;
  Value v;
};

// Fold only operations that are total on the given constant operands (no
// runtime error possible, deterministic result).
std::optional<Value> FoldUnOp(std::uint8_t sub, const Value& v) {
  switch (static_cast<UnOp>(sub)) {
    case UnOp::kNeg:
      if (v.is_number()) return Value(-v.as_number());
      return std::nullopt;
    case UnOp::kNot:
      return Value(!v.truthy());
    case UnOp::kLen:
      if (v.is_string())
        return Value(static_cast<double>(v.as_string().size()));
      return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Value> FoldBinOp(std::uint8_t sub, const Value& a,
                               const Value& b) {
  const bool nums = a.is_number() && b.is_number();
  switch (static_cast<BinOp>(sub)) {
    case BinOp::kAdd:
      if (nums) return Value(a.as_number() + b.as_number());
      return std::nullopt;
    case BinOp::kSub:
      if (nums) return Value(a.as_number() - b.as_number());
      return std::nullopt;
    case BinOp::kMul:
      if (nums) return Value(a.as_number() * b.as_number());
      return std::nullopt;
    case BinOp::kDiv:
      if (nums) return Value(a.as_number() / b.as_number());
      return std::nullopt;
    case BinOp::kMod:
      if (nums) return Value(std::fmod(a.as_number(), b.as_number()));
      return std::nullopt;
    case BinOp::kConcat:
      if (!a.is_list() && !b.is_list())
        return Value(a.ToDisplayString() + b.ToDisplayString());
      return std::nullopt;
    case BinOp::kEq: return Value(a.Equals(b));
    case BinOp::kNe: return Value(!a.Equals(b));
    case BinOp::kLt:
      if (nums) return Value(a.as_number() < b.as_number());
      if (a.is_string() && b.is_string())
        return Value(a.as_string().compare(b.as_string()) < 0);
      return std::nullopt;
    case BinOp::kLe:
      if (nums) return Value(a.as_number() <= b.as_number());
      if (a.is_string() && b.is_string())
        return Value(a.as_string().compare(b.as_string()) <= 0);
      return std::nullopt;
    case BinOp::kGt:
      if (nums) return Value(a.as_number() > b.as_number());
      if (a.is_string() && b.is_string())
        return Value(a.as_string().compare(b.as_string()) > 0);
      return std::nullopt;
    case BinOp::kGe:
      if (nums) return Value(a.as_number() >= b.as_number());
      if (a.is_string() && b.is_string())
        return Value(a.as_string().compare(b.as_string()) >= 0);
      return std::nullopt;
    case BinOp::kAnd:
    case BinOp::kOr:
      return std::nullopt;  // lowered to branches
  }
  return std::nullopt;
}

struct ConstDomain {
  using State = std::vector<CV>;
  const ir::Module& m;

  State Boundary(const ir::Function& fn) const {
    return State(fn.num_regs, CV{CV::K::kTop, Value()});
  }
  State Bottom(const ir::Function& fn) const { return State(fn.num_regs); }

  static bool JoinCV(CV& into, const CV& from) {
    if (from.k == CV::K::kBottom) return false;
    if (into.k == CV::K::kBottom) {
      into = from;
      return true;
    }
    if (into.k == CV::K::kTop) return false;
    if (from.k == CV::K::kTop ||
        !(into.v.kind() == from.v.kind() && EqualBits(into.v, from.v))) {
      into = CV{CV::K::kTop, Value()};
      return true;
    }
    return false;
  }

  static bool EqualBits(const Value& a, const Value& b) {
    if (a.kind() != b.kind()) return false;
    switch (a.kind()) {
      case Value::Kind::kNil: return true;
      case Value::Kind::kBool: return a.as_bool() == b.as_bool();
      case Value::Kind::kNumber: {
        const double x = a.as_number();
        const double y = b.as_number();
        return std::memcmp(&x, &y, sizeof(double)) == 0;
      }
      case Value::Kind::kString: return a.as_string() == b.as_string();
      case Value::Kind::kList: return false;
    }
    return false;
  }

  bool Join(State& into, const State& from, int) const {
    bool changed = false;
    for (std::size_t i = 0; i < into.size(); ++i)
      changed |= JoinCV(into[i], from[i]);
    return changed;
  }

  void Apply(const Inst& inst, State& s) const {
    const CV top{CV::K::kTop, Value()};
    switch (inst.op) {
      case Op::kConst:
        s[inst.dst] = CV{CV::K::kConst, m.consts[inst.imm]};
        break;
      case Op::kMove:
        s[inst.dst] = s[inst.a];
        break;
      case Op::kUnOp:
        if (s[inst.a].k == CV::K::kConst) {
          if (auto v = FoldUnOp(inst.sub, s[inst.a].v)) {
            s[inst.dst] = CV{CV::K::kConst, *v};
            break;
          }
        }
        s[inst.dst] = top;
        break;
      case Op::kBinOp:
        if (s[inst.a].k == CV::K::kConst && s[inst.b].k == CV::K::kConst) {
          if (auto v = FoldBinOp(inst.sub, s[inst.a].v, s[inst.b].v)) {
            s[inst.dst] = CV{CV::K::kConst, *v};
            break;
          }
        }
        s[inst.dst] = top;
        break;
      case Op::kClearSlots:
        for (Reg r = inst.a; r < inst.a + inst.b; ++r) s[r] = top;
        break;
      case Op::kForStep:
        s[inst.a] = top;
        break;
      default:
        if (HasDst(inst.op)) s[inst.dst] = top;
        break;
    }
  }

  void Transfer(const ir::Function& fn, int block, State& s) const {
    for (const Inst& inst :
         fn.blocks[static_cast<std::size_t>(block)].insts)
      Apply(inst, s);
  }
};

std::uint32_t InternConst(ir::Module& m, const Value& v) {
  for (std::size_t i = 0; i < m.consts.size(); ++i) {
    if (ConstDomain::EqualBits(m.consts[i], v))
      return static_cast<std::uint32_t>(i);
  }
  m.consts.push_back(v);
  return static_cast<std::uint32_t>(m.consts.size() - 1);
}

// Returns true if at least one branch was folded.
bool ConstFoldFunction(ir::Module& m, std::size_t fn_idx,
                       OptimizeReport* report) {
  ir::Function& fn = m.functions[fn_idx];
  ConstDomain domain{m};
  const DataflowResult<ConstDomain> df =
      Solve(fn, domain, Direction::kForward);

  bool folded_any = false;
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    ConstDomain::State s = df.in[bi];
    for (Inst& inst : fn.blocks[bi].insts) {
      // Fold pure value-producing instructions whose result is known. User
      // stores keep their kMove form so dead-store diagnostics retain the
      // variable name; branch targets are rewritten below.
      const bool user_store =
          inst.op == Op::kMove && (inst.sub & ir::kStoreUser) != 0;
      if ((inst.op == Op::kUnOp || inst.op == Op::kBinOp ||
           (inst.op == Op::kMove && !user_store)) &&
          inst.dst != kNoReg) {
        CV before = s[inst.a];
        CV result;
        if (inst.op == Op::kMove) {
          result = before;
        } else if (inst.op == Op::kUnOp && before.k == CV::K::kConst) {
          if (auto v = FoldUnOp(inst.sub, before.v))
            result = CV{CV::K::kConst, *v};
        } else if (inst.op == Op::kBinOp && before.k == CV::K::kConst &&
                   s[inst.b].k == CV::K::kConst) {
          if (auto v = FoldBinOp(inst.sub, before.v, s[inst.b].v))
            result = CV{CV::K::kConst, *v};
        }
        if (result.k == CV::K::kConst) {
          domain.Apply(inst, s);
          inst.op = Op::kConst;
          inst.sub = 0;
          inst.a = inst.b = inst.c = kNoReg;
          inst.imm = InternConst(m, result.v);
          continue;
        }
      }
      if (inst.op == Op::kBranch && s[inst.a].k == CV::K::kConst) {
        const bool truthy = s[inst.a].v.truthy();
        if (report != nullptr && inst.sub == 1) {
          bool while_head = false;
          for (const ir::LoopInfo& loop : fn.loops) {
            if (loop.kind == ir::LoopInfo::Kind::kWhile &&
                loop.body_block == inst.then_block &&
                loop.exit_block == inst.else_block) {
              while_head = true;
              break;
            }
          }
          report->folded_branches.push_back(
              {inst.line, truthy, inst.sub == 1, while_head});
        }
        const int target = truthy ? inst.then_block : inst.else_block;
        inst.op = Op::kJump;
        inst.sub = 0;
        inst.a = kNoReg;
        inst.then_block = target;
        inst.else_block = -1;
        folded_any = true;
        continue;
      }
      domain.Apply(inst, s);
    }
  }
  return folded_any;
}

// --- definite assignment (CheckDef elision + SA501) ------------------------

struct DefState {
  bool reached = false;
  // Slot space: [0, num_named) frame slots, then one per global.
  std::vector<std::uint8_t> must;
  std::vector<std::uint8_t> may;
};

struct DefDomain {
  using State = DefState;
  const ir::Module& m;
  const ModuleInfo& info;
  bool is_main = false;

  State Boundary(const ir::Function& fn) const {
    State s;
    s.reached = true;
    const std::size_t n = fn.num_named + m.global_names.size();
    s.must.assign(n, 0);
    s.may.assign(n, 0);
    for (std::uint32_t p = 0; p < fn.num_params && p < fn.num_named; ++p) {
      s.must[p] = 1;
      s.may[p] = 1;
    }
    if (!is_main) {
      // A function can be called at any point of main's execution: any
      // global with a store anywhere may be live by then.
      for (std::size_t g = 0; g < m.global_names.size(); ++g)
        s.may[fn.num_named + g] = info.global_stored[g];
    }
    return s;
  }
  State Bottom(const ir::Function&) const { return {}; }

  bool Join(State& into, const State& from, int) const {
    if (!from.reached) return false;
    if (!into.reached) {
      into = from;
      return true;
    }
    bool changed = false;
    for (std::size_t i = 0; i < into.must.size(); ++i) {
      if (into.must[i] && !from.must[i]) {
        into.must[i] = 0;
        changed = true;
      }
      if (!into.may[i] && from.may[i]) {
        into.may[i] = 1;
        changed = true;
      }
    }
    return changed;
  }

  void Apply(const ir::Function& fn, const Inst& inst, State& s) const {
    switch (inst.op) {
      case Op::kMove:
      case Op::kConst:
      case Op::kLoadGlobal:
      case Op::kUnOp:
      case Op::kBinOp:
      case Op::kIndexGet:
      case Op::kListNew:
      case Op::kCall:
        if (inst.dst != kNoReg && inst.dst < fn.num_named) {
          s.must[inst.dst] = 1;
          s.may[inst.dst] = 1;
        }
        if (inst.op == Op::kCall) {
          const auto it = info.candidates.find(inst.imm);
          if (it != info.candidates.end()) {
            for (const std::uint32_t callee : it->second) {
              for (std::size_t g = 0; g < m.global_names.size(); ++g) {
                if (info.global_writes[callee][g])
                  s.may[fn.num_named + g] = 1;
              }
            }
          }
        }
        break;
      case Op::kClearSlots:
        for (Reg r = inst.a; r < inst.a + inst.b; ++r) {
          if (r < fn.num_named) {
            s.must[r] = 0;
            s.may[r] = 0;
          }
        }
        break;
      case Op::kStoreGlobal:
        s.must[fn.num_named + inst.a] = 1;
        s.may[fn.num_named + inst.a] = 1;
        break;
      default:
        break;
    }
  }

  void Transfer(const ir::Function& fn, int block, State& s) const {
    if (!s.reached) return;
    for (const Inst& inst :
         fn.blocks[static_cast<std::size_t>(block)].insts)
      Apply(fn, inst, s);
  }
};

void DefiniteAssignment(ir::Module& m, std::size_t fn_idx,
                        const ModuleInfo& info, OptimizeReport* report) {
  ir::Function& fn = m.functions[fn_idx];
  DefDomain domain{m, info, fn_idx == 0};
  const DataflowResult<DefDomain> df = Solve(fn, domain, Direction::kForward);
  const std::vector<std::uint8_t> reach = ReachableBlocks(fn);

  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    if (!reach[bi] || !df.in[bi].reached) continue;
    DefState s = df.in[bi];
    std::vector<Inst> kept;
    kept.reserve(fn.blocks[bi].insts.size());
    for (const Inst& inst : fn.blocks[bi].insts) {
      if (inst.op == Op::kCheckDef) {
        if (s.must[inst.a]) continue;  // provably assigned: elide
        if (report != nullptr && !s.may[inst.a]) {
          report->undef_uses.push_back({inst.line, m.names[inst.imm]});
        }
      } else if (inst.op == Op::kLoadGlobal && report != nullptr) {
        // Only when the global IS stored somewhere: a never-stored name is
        // the syntactic pass's SA101, not a flow fact.
        if (!s.may[fn.num_named + inst.a] && info.global_stored[inst.a]) {
          report->undef_uses.push_back(
              {inst.line, m.names[m.global_names[inst.a]]});
        }
      }
      domain.Apply(fn, inst, s);
      kept.push_back(inst);
    }
    fn.blocks[bi].insts = std::move(kept);
  }
}

// --- liveness + dead code elimination (SA502) ------------------------------

struct LiveDomain {
  using State = std::vector<std::uint8_t>;  // live regs

  State Boundary(const ir::Function& fn) const {
    return State(fn.num_regs, 0);
  }
  State Bottom(const ir::Function& fn) const {
    return State(fn.num_regs, 0);
  }
  bool Join(State& into, const State& from, int) const {
    bool changed = false;
    for (std::size_t i = 0; i < into.size(); ++i) {
      if (!into[i] && from[i]) {
        into[i] = 1;
        changed = true;
      }
    }
    return changed;
  }
  void Transfer(const ir::Function& fn, int block, State& s) const {
    const auto& insts = fn.blocks[static_cast<std::size_t>(block)].insts;
    for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
      if (HasDst(it->op) && it->dst != kNoReg) s[it->dst] = 0;
      ForEachUse(*it, [&s](Reg r) {
        if (r != kNoReg) s[r] = 1;
      });
    }
  }
};

bool Removable(const Inst& inst) {
  switch (inst.op) {
    case Op::kConst:
    case Op::kMove:
    case Op::kListNew:
      return true;  // pure and total: removal is unobservable
    default:
      return false;
  }
}

void DeadCodeElim(ir::Module& m, std::size_t fn_idx, const ModuleInfo& info,
                  OptimizeReport* report) {
  ir::Function& fn = m.functions[fn_idx];
  LiveDomain domain;
  const DataflowResult<LiveDomain> df = Solve(fn, domain, Direction::kBackward);
  const std::vector<std::uint8_t> reach = ReachableBlocks(fn);

  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    if (!reach[bi]) continue;
    LiveDomain::State live = df.in[bi];  // live at block exit
    std::vector<Inst> kept_rev;
    const auto& insts = fn.blocks[bi].insts;
    for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
      const Inst& inst = *it;
      const bool dead_dst =
          HasDst(inst.op) && inst.dst != kNoReg && !live[inst.dst];
      if (inst.op == Op::kClearSlots && inst.b == 0) continue;
      if (dead_dst && Removable(inst)) {
        if (report != nullptr && inst.op == Op::kMove &&
            (inst.sub & ir::kStoreUser) != 0 &&
            (inst.sub & ir::kStorePure) != 0) {
          report->dead_stores.push_back({inst.line, m.names[inst.imm]});
        }
        continue;  // drop: its uses generate no liveness
      }
      if (report != nullptr && inst.op == Op::kStoreGlobal &&
          (inst.sub & ir::kStoreUser) != 0 &&
          (inst.sub & ir::kStorePure) != 0 && !info.global_loaded[inst.a]) {
        report->dead_stores.push_back(
            {inst.line, m.names[m.global_names[inst.a]]});
      }
      if (HasDst(inst.op) && inst.dst != kNoReg) live[inst.dst] = 0;
      ForEachUse(inst, [&live](Reg r) {
        if (r != kNoReg) live[r] = 1;
      });
      kept_rev.push_back(inst);
    }
    std::reverse(kept_rev.begin(), kept_rev.end());
    fn.blocks[bi].insts = std::move(kept_rev);
  }
}

}  // namespace

// --- optimization driver ---------------------------------------------------

void OptimizeModule(ir::Module& m, OptimizeReport* report) {
  const ModuleInfo info = ComputeModuleInfo(m);
  if (report != nullptr) {
    // Dead-store diagnosis runs on the UNOPTIMIZED IR: constant propagation
    // rewrites reads of a variable into materialized constants, which would
    // make a source-level-read store look dead. The optimizer below still
    // removes such stores — they just aren't reported to the user.
    ir::Module pristine = m;
    OptimizeReport source_level;
    for (std::size_t f = 0; f < pristine.functions.size(); ++f) {
      DeadCodeElim(pristine, f, info, &source_level);
    }
    report->dead_stores = std::move(source_level.dead_stores);
  }
  for (std::size_t f = 0; f < m.functions.size(); ++f) {
    ir::Function& fn = m.functions[f];
    const std::vector<std::uint8_t> pre_reach = ReachableBlocks(fn);
    for (int round = 0; round < 4; ++round) {
      const bool folded = ConstFoldFunction(m, f, round == 0 ? report : nullptr);
      ir::RebuildEdges(m.functions[f]);
      if (!folded) break;
    }
    if (report != nullptr) {
      const std::vector<std::uint8_t> post_reach = ReachableBlocks(fn);
      for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
        if (!pre_reach[bi] || post_reach[bi]) continue;
        for (const Inst& inst : fn.blocks[bi].insts) {
          if (inst.line > 0) {
            report->unreachable_lines.push_back(inst.line);
            break;
          }
        }
      }
    }
    DefiniteAssignment(m, f, info, report);
    DeadCodeElim(m, f, info, nullptr);  // dead stores already diagnosed above
  }
}

// --- interval analysis -----------------------------------------------------

namespace {

struct Iv {
  bool bot = true;
  double lo = kInf;
  double hi = -kInf;

  static Iv Full() { return Iv{false, -kInf, kInf}; }
  static Iv Point(double d) { return Iv{false, d, d}; }
  [[nodiscard]] bool IsPoint() const { return !bot && lo == hi; }
};

Iv MakeIv(double lo, double hi) {
  if (std::isnan(lo) || std::isnan(hi)) return Iv::Full();
  return Iv{false, lo, hi};
}

Iv IvAdd(const Iv& a, const Iv& b) {
  if (a.bot || b.bot) return Iv::Full();
  return MakeIv(a.lo + b.lo, a.hi + b.hi);
}

Iv IvSub(const Iv& a, const Iv& b) {
  if (a.bot || b.bot) return Iv::Full();
  return MakeIv(a.lo - b.hi, a.hi - b.lo);
}

Iv IvMul(const Iv& a, const Iv& b) {
  if (a.bot || b.bot) return Iv::Full();
  const double p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  double lo = p[0], hi = p[0];
  for (const double v : p) {
    if (std::isnan(v)) return Iv::Full();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return MakeIv(lo, hi);
}

Iv IvNeg(const Iv& a) {
  if (a.bot) return Iv::Full();
  return MakeIv(-a.hi, -a.lo);
}

struct IvState {
  bool reached = false;
  std::vector<Iv> regs;
  std::vector<Iv> globals;
};

struct IvDomain {
  using State = IvState;
  const ir::Module& m;
  const ModuleInfo& info;
  // Widening: after this many changing joins into a block, changing bounds
  // jump straight to infinity so loops converge.
  static constexpr int kWidenAfter = 8;
  mutable std::vector<int> join_counts;

  State Boundary(const ir::Function& fn) const {
    State s;
    s.reached = true;
    s.regs.assign(fn.num_regs, Iv::Full());
    s.globals.assign(m.global_names.size(), Iv::Full());
    return s;
  }
  State Bottom(const ir::Function&) const { return {}; }

  static bool JoinIv(Iv& into, const Iv& from, bool widen) {
    if (from.bot) return false;
    if (into.bot) {
      into = from;
      return true;
    }
    bool changed = false;
    if (from.lo < into.lo) {
      into.lo = widen ? -kInf : from.lo;
      changed = true;
    }
    if (from.hi > into.hi) {
      into.hi = widen ? kInf : from.hi;
      changed = true;
    }
    return changed;
  }

  bool Join(State& into, const State& from, int target_block) const {
    if (!from.reached) return false;
    if (!into.reached) {
      into = from;
      return true;
    }
    if (join_counts.size() <= static_cast<std::size_t>(target_block))
      join_counts.resize(static_cast<std::size_t>(target_block) + 1, 0);
    const bool widen =
        join_counts[static_cast<std::size_t>(target_block)] > kWidenAfter;
    bool changed = false;
    for (std::size_t i = 0; i < into.regs.size(); ++i)
      changed |= JoinIv(into.regs[i], from.regs[i], widen);
    for (std::size_t i = 0; i < into.globals.size(); ++i)
      changed |= JoinIv(into.globals[i], from.globals[i], widen);
    if (changed) ++join_counts[static_cast<std::size_t>(target_block)];
    return changed;
  }

  void Apply(const Inst& inst, State& s) const {
    switch (inst.op) {
      case Op::kConst: {
        const Value& v = m.consts[inst.imm];
        s.regs[inst.dst] =
            v.is_number() ? Iv::Point(v.as_number()) : Iv::Full();
        break;
      }
      case Op::kMove:
        s.regs[inst.dst] = s.regs[inst.a];
        break;
      case Op::kLoadGlobal:
        s.regs[inst.dst] = s.globals[inst.a];
        break;
      case Op::kStoreGlobal:
        s.globals[inst.a] = s.regs[inst.b];
        break;
      case Op::kUnOp:
        switch (static_cast<UnOp>(inst.sub)) {
          case UnOp::kNeg:
            s.regs[inst.dst] = IvNeg(s.regs[inst.a]);
            break;
          case UnOp::kLen:
            s.regs[inst.dst] = MakeIv(0.0, kInf);
            break;
          default:
            s.regs[inst.dst] = Iv::Full();
            break;
        }
        break;
      case Op::kBinOp:
        switch (static_cast<BinOp>(inst.sub)) {
          case BinOp::kAdd:
            s.regs[inst.dst] = IvAdd(s.regs[inst.a], s.regs[inst.b]);
            break;
          case BinOp::kSub:
            s.regs[inst.dst] = IvSub(s.regs[inst.a], s.regs[inst.b]);
            break;
          case BinOp::kMul:
            s.regs[inst.dst] = IvMul(s.regs[inst.a], s.regs[inst.b]);
            break;
          default:
            s.regs[inst.dst] = Iv::Full();
            break;
        }
        break;
      case Op::kForStep:
        s.regs[inst.a] = IvAdd(s.regs[inst.a], s.regs[inst.c]);
        break;
      case Op::kCall: {
        if (inst.dst != kNoReg) s.regs[inst.dst] = Iv::Full();
        const auto it = info.candidates.find(inst.imm);
        if (it != info.candidates.end()) {
          for (const std::uint32_t callee : it->second) {
            for (std::size_t g = 0; g < s.globals.size(); ++g) {
              if (info.global_writes[callee][g]) s.globals[g] = Iv::Full();
            }
          }
        }
        break;
      }
      case Op::kClearSlots:
        for (Reg r = inst.a; r < inst.a + inst.b; ++r)
          s.regs[r] = Iv::Full();
        break;
      default:
        if (HasDst(inst.op) && inst.dst != kNoReg)
          s.regs[inst.dst] = Iv::Full();
        break;
    }
  }

  void Transfer(const ir::Function& fn, int block, State& s) const {
    if (!s.reached) return;
    for (const Inst& inst :
         fn.blocks[static_cast<std::size_t>(block)].insts)
      Apply(inst, s);
  }
};

// State after executing `block` starting from its solved entry state.
IvState StateAtBlockExit(const ir::Function& fn, const IvDomain& domain,
                         const DataflowResult<IvDomain>& df, int block) {
  IvState s = df.in[static_cast<std::size_t>(block)];
  domain.Transfer(fn, block, s);
  return s;
}

// Blocks reachable from `from` without expanding `stop1`/`stop2`.
std::set<int> BlocksReachableAvoiding(const ir::Function& fn, int from,
                                      int stop1, int stop2) {
  std::set<int> seen;
  if (from < 0) return seen;
  std::vector<int> work{from};
  seen.insert(from);
  while (!work.empty()) {
    const int b = work.back();
    work.pop_back();
    if (b == stop1 || b == stop2) continue;
    for (const int s : fn.blocks[static_cast<std::size_t>(b)].succs) {
      if (seen.insert(s).second) work.push_back(s);
    }
  }
  return seen;
}

// The register that `r` holds at instruction `upto` of `block`, resolved
// through kMove chains within the block. Returns the original reg when no
// in-block definition is found (i.e. a named slot or an earlier block's
// temp).
const Inst* DefiningInst(const BasicBlock& block, std::size_t upto, Reg r) {
  for (std::size_t i = upto; i-- > 0;) {
    const Inst& inst = block.insts[i];
    if (HasDst(inst.op) && inst.dst == r) return &inst;
  }
  return nullptr;
}

struct IndVar {
  bool is_global = false;
  Reg slot = kNoReg;  // named reg, or global index
};

// Classify a comparison operand as "the variable var" (load of a named slot
// or of a global, within the branch block) or not.
std::optional<IndVar> ClassifyVarOperand(const ir::Function& fn,
                                         const BasicBlock& block,
                                         std::size_t cmp_index, Reg r) {
  if (r < fn.num_named) return IndVar{false, r};
  const Inst* def = DefiningInst(block, cmp_index, r);
  if (def != nullptr && def->op == Op::kLoadGlobal)
    return IndVar{true, def->a};
  if (def != nullptr && def->op == Op::kMove && def->a < fn.num_named)
    return IndVar{false, def->a};
  return std::nullopt;
}

// While-loop trip bound via simple induction-variable detection:
//   while var <op> limit do ... var = var +/- k ... end
// with exactly one unconditional store to var per iteration and a constant
// step. Returns nullopt when the pattern does not hold.
std::optional<double> WhileTripBound(const ir::Function& fn,
                                     const ModuleInfo& info,
                                     const IvDomain& domain,
                                     const DataflowResult<IvDomain>& df,
                                     const ir::LoopInfo& loop) {
  // Find the conditional branch that enters the body or exits the loop.
  int branch_block = -1;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& insts = fn.blocks[b].insts;
    if (insts.empty()) continue;
    const Inst& last = insts.back();
    if (last.op == Op::kBranch && last.sub == 1 &&
        last.then_block == loop.body_block &&
        last.else_block == loop.exit_block) {
      branch_block = static_cast<int>(b);
      break;
    }
  }
  if (branch_block < 0) return std::nullopt;
  const BasicBlock& bb = fn.blocks[static_cast<std::size_t>(branch_block)];
  const Reg cond = bb.insts.back().a;

  // The condition must be a single comparison var <op> limit.
  std::size_t cmp_index = bb.insts.size();
  const Inst* cmp = nullptr;
  for (std::size_t i = bb.insts.size() - 1; i-- > 0;) {
    if (HasDst(bb.insts[i].op) && bb.insts[i].dst == cond) {
      cmp = &bb.insts[i];
      cmp_index = i;
      break;
    }
  }
  if (cmp == nullptr || cmp->op != Op::kBinOp) return std::nullopt;
  const auto op = static_cast<BinOp>(cmp->sub);
  if (op != BinOp::kLt && op != BinOp::kLe && op != BinOp::kGt &&
      op != BinOp::kGe)
    return std::nullopt;

  // One side is the induction variable, the other the limit.
  const std::optional<IndVar> lhs =
      ClassifyVarOperand(fn, bb, cmp_index, cmp->a);
  const std::optional<IndVar> rhs =
      ClassifyVarOperand(fn, bb, cmp_index, cmp->b);
  // Try the left side as var first, then the (mirrored) right side.
  for (int side = 0; side < 2; ++side) {
    const std::optional<IndVar>& var_opt = side == 0 ? lhs : rhs;
    if (!var_opt) continue;
    const IndVar var = *var_opt;
    const Reg limit_reg = side == 0 ? cmp->b : cmp->a;
    // Mirror the comparison when var is on the right: limit < var == var > limit.
    BinOp dir = op;
    if (side == 1) {
      dir = op == BinOp::kLt   ? BinOp::kGt
            : op == BinOp::kLe ? BinOp::kGe
            : op == BinOp::kGt ? BinOp::kLt
                               : BinOp::kLe;
    }

    // All loop blocks: reachable from the head without leaving via exit.
    const std::set<int> loop_blocks =
        BlocksReachableAvoiding(fn, loop.head_block, loop.exit_block, -1);

    // Exactly one store to var inside the loop, and no call that may write
    // it (globals only; named slots cannot be written by callees).
    int store_block = -1;
    std::size_t store_index = 0;
    int store_count = 0;
    bool hazard = false;
    for (const int b : loop_blocks) {
      const auto& insts = fn.blocks[static_cast<std::size_t>(b)].insts;
      for (std::size_t i = 0; i < insts.size(); ++i) {
        const Inst& inst = insts[i];
        const bool writes_var =
            var.is_global
                ? (inst.op == Op::kStoreGlobal && inst.a == var.slot)
                : ((HasDst(inst.op) && inst.dst == var.slot) ||
                   (inst.op == Op::kForStep && inst.a == var.slot));
        if (writes_var) {
          ++store_count;
          store_block = b;
          store_index = i;
        }
        if (!var.is_global &&
            inst.op == Op::kClearSlots && var.slot >= inst.a &&
            var.slot < inst.a + inst.b)
          hazard = true;
        if (var.is_global && inst.op == Op::kCall) {
          const auto it = info.candidates.find(inst.imm);
          if (it != info.candidates.end()) {
            for (const std::uint32_t callee : it->second)
              if (info.global_writes[callee][var.slot]) hazard = true;
          }
        }
      }
    }
    if (hazard || store_count != 1 || store_block < 0) continue;

    // The store must run on every body->head path (else an iteration can
    // skip the increment and the bound is unsound).
    if (loop.body_block != store_block) {
      const std::set<int> skip = BlocksReachableAvoiding(
          fn, loop.body_block, store_block, loop.exit_block);
      if (skip.count(loop.head_block) > 0) continue;
    }

    // Pattern-match the stored value: var +/- constant step.
    const BasicBlock& sb = fn.blocks[static_cast<std::size_t>(store_block)];
    const Inst& store = sb.insts[store_index];
    Reg src = kNoReg;
    if (var.is_global && store.op == Op::kStoreGlobal) {
      src = store.b;
    } else if (!var.is_global &&
               (store.op == Op::kMove || store.op == Op::kBinOp)) {
      src = store.op == Op::kMove ? store.a : store.dst;
    } else {
      continue;
    }
    const Inst* add = DefiningInst(sb, store_index, src);
    while (add != nullptr && add->op == Op::kMove)
      add = DefiningInst(sb, store_index, add->a);
    if (add == nullptr || add->op != Op::kBinOp) continue;
    const auto aop = static_cast<BinOp>(add->sub);
    if (aop != BinOp::kAdd && aop != BinOp::kSub) continue;

    const auto IsVar = [&](Reg r) {
      const std::optional<IndVar> c = ClassifyVarOperand(
          fn, sb, static_cast<std::size_t>(add - sb.insts.data()), r);
      return c && c->is_global == var.is_global && c->slot == var.slot;
    };
    // Interval of the non-var operand at the add site.
    IvState at_store = df.in[static_cast<std::size_t>(store_block)];
    const auto add_index = static_cast<std::size_t>(add - sb.insts.data());
    for (std::size_t i = 0; i < add_index; ++i)
      domain.Apply(sb.insts[i], at_store);
    double k = 0.0;
    if (IsVar(add->a)) {
      const Iv kv = at_store.regs[add->b];
      if (!kv.IsPoint()) continue;
      k = aop == BinOp::kAdd ? kv.lo : -kv.lo;
    } else if (aop == BinOp::kAdd && IsVar(add->b)) {
      const Iv kv = at_store.regs[add->a];
      if (!kv.IsPoint()) continue;
      k = kv.lo;
    } else {
      continue;
    }
    if (k == 0.0 || !std::isfinite(k)) continue;

    // Initial value: var at the prehead's exit (before the first test).
    const IvState pre =
        StateAtBlockExit(fn, domain, df, loop.prehead_block);
    if (!pre.reached) return 0.0;
    const Iv v0 = var.is_global ? pre.globals[var.slot] : pre.regs[var.slot];
    // Limit: its interval right before the comparison, at the fixpoint (so
    // a limit that changes inside the loop widens and bails below).
    IvState at_cmp = df.in[static_cast<std::size_t>(branch_block)];
    for (std::size_t i = 0; i < cmp_index; ++i)
      domain.Apply(bb.insts[i], at_cmp);
    const Iv lim = at_cmp.regs[limit_reg];
    if (v0.bot || lim.bot) continue;

    double trips = -1.0;
    if (k > 0.0 && (dir == BinOp::kLt || dir == BinOp::kLe)) {
      const double span = lim.hi - v0.lo;
      if (!std::isfinite(span)) continue;
      trips = dir == BinOp::kLt ? std::ceil(span / k)
                                : std::floor(span / k) + 1.0;
    } else if (k < 0.0 && (dir == BinOp::kGt || dir == BinOp::kGe)) {
      const double span = v0.hi - lim.lo;
      if (!std::isfinite(span)) continue;
      trips = dir == BinOp::kGt ? std::ceil(span / -k)
                                : std::floor(span / -k) + 1.0;
    } else {
      continue;
    }
    if (std::isnan(trips)) continue;
    return std::max(0.0, trips);
  }
  return std::nullopt;
}

void CollectTripBounds(const ir::Module& m, const ModuleInfo& info,
                       std::map<LoopKey, double>& bounds) {
  for (const ir::Function& fn : m.functions) {
    if (fn.blocks.empty()) continue;
    IvDomain domain{m, info, {}};
    const DataflowResult<IvDomain> df =
        Solve(fn, domain, Direction::kForward);
    const std::vector<std::uint8_t> reach = ReachableBlocks(fn);

    const auto Record = [&bounds](int line, int kind, double trips) {
      const LoopKey key{line, kind};
      const auto it = bounds.find(key);
      if (it == bounds.end()) {
        bounds[key] = trips;
      } else {
        it->second = std::max(it->second, trips);
      }
    };

    for (const ir::LoopInfo& loop : fn.loops) {
      const int kind = loop.kind == ir::LoopInfo::Kind::kWhile ? 0 : 1;
      if (loop.head_block < 0 ||
          !reach[static_cast<std::size_t>(loop.head_block)] ||
          (loop.body_block >= 0 &&
           !reach[static_cast<std::size_t>(loop.body_block)])) {
        Record(loop.line, kind, 0.0);
        continue;
      }
      if (loop.kind == ir::LoopInfo::Kind::kNumericFor) {
        const IvState pre =
            StateAtBlockExit(fn, domain, df, loop.prehead_block);
        if (!pre.reached) {
          Record(loop.line, kind, 0.0);
          continue;
        }
        const Iv start = pre.regs[loop.counter];
        const Iv stop = pre.regs[loop.stop];
        const Iv step = pre.regs[loop.step];
        if (start.bot || stop.bot || step.bot) continue;
        double trips = -1.0;
        if (step.lo > 0.0 && std::isfinite(stop.hi) &&
            std::isfinite(start.lo) && std::isfinite(step.lo)) {
          trips = std::floor((stop.hi - start.lo) / step.lo) + 1.0;
        } else if (step.hi < 0.0 && std::isfinite(start.hi) &&
                   std::isfinite(stop.lo) && std::isfinite(step.hi)) {
          trips = std::floor((start.hi - stop.lo) / -step.hi) + 1.0;
        } else {
          continue;
        }
        if (std::isnan(trips)) continue;
        Record(loop.line, kind, std::max(0.0, trips));
      } else {
        const std::optional<double> trips =
            WhileTripBound(fn, info, domain, df, loop);
        if (trips) Record(loop.line, kind, *trips);
      }
    }
  }
}

// --- sensor taint ----------------------------------------------------------

using TaintMask = std::uint32_t;

TaintMask SensorBit(SensorKind k) {
  return TaintMask{1} << static_cast<unsigned>(k);
}

struct TaintCtx {
  // Module-level facts, accumulated monotonically across solver rounds.
  std::vector<TaintMask> global_taint;                // per global
  std::vector<std::vector<TaintMask>> param_in;       // per fn, per param
  std::vector<TaintMask> ret_taint;                   // per fn
  std::vector<std::vector<TaintMask>> branch_taint;   // per fn, per block
  // Output sites: (kind, line) -> sensors influencing the value there.
  std::map<std::pair<int, int>, TaintMask> sites;
  bool has_acquisition = false;
  bool changed = false;

  void Accum(TaintMask& dst, TaintMask bits) {
    if ((dst & bits) != bits) {
      dst |= bits;
      changed = true;
    }
  }
};

struct TaintState {
  bool reached = false;
  std::vector<TaintMask> regs;
};

struct TaintDomain {
  using State = TaintState;
  const ir::Module& m;
  const ModuleInfo& info;
  TaintCtx& ctx;
  std::size_t fn_idx;

  State Boundary(const ir::Function& fn) const {
    State s;
    s.reached = true;
    s.regs.assign(fn.num_regs, 0);
    const std::vector<TaintMask>& params = ctx.param_in[fn_idx];
    for (std::uint32_t p = 0; p < fn.num_params && p < params.size(); ++p)
      s.regs[p] = params[p];
    return s;
  }
  State Bottom(const ir::Function&) const { return {}; }

  bool Join(State& into, const State& from, int) const {
    if (!from.reached) return false;
    if (!into.reached) {
      into = from;
      return true;
    }
    bool changed = false;
    for (std::size_t i = 0; i < into.regs.size(); ++i) {
      if ((into.regs[i] | from.regs[i]) != into.regs[i]) {
        into.regs[i] |= from.regs[i];
        changed = true;
      }
    }
    return changed;
  }

  void Transfer(const ir::Function& fn, int block, State& s) const {
    if (!s.reached) return;
    const BasicBlock& bb = fn.blocks[static_cast<std::size_t>(block)];
    TaintMask ctrl = 0;
    for (const BasicBlock::CtrlDep& dep : bb.ctrl_deps) {
      const auto& bt = ctx.branch_taint[fn_idx];
      if (static_cast<std::size_t>(dep.block) < bt.size())
        ctrl |= bt[static_cast<std::size_t>(dep.block)];
    }
    const bool is_main = fn_idx == 0;
    for (const Inst& inst : bb.insts) {
      switch (inst.op) {
        case Op::kConst:
          s.regs[inst.dst] = ctrl;
          break;
        case Op::kMove:
          s.regs[inst.dst] = s.regs[inst.a] | ctrl;
          break;
        case Op::kLoadGlobal:
          s.regs[inst.dst] = ctx.global_taint[inst.a] | ctrl;
          break;
        case Op::kStoreGlobal:
          ctx.Accum(ctx.global_taint[inst.a], s.regs[inst.b] | ctrl);
          break;
        case Op::kUnOp:
          s.regs[inst.dst] = s.regs[inst.a] | ctrl;
          break;
        case Op::kBinOp:
          s.regs[inst.dst] = s.regs[inst.a] | s.regs[inst.b] | ctrl;
          break;
        case Op::kIndexGet:
          s.regs[inst.dst] = s.regs[inst.a] | s.regs[inst.b] | ctrl;
          break;
        case Op::kIndexSet:
          // The list reg absorbs the element taint. Under-approximates
          // through aliases (both names would need the update); documented
          // in docs/sensescript.md.
          s.regs[inst.a] |= s.regs[inst.b] | s.regs[inst.c] | ctrl;
          break;
        case Op::kListNew: {
          TaintMask mask = ctrl;
          for (std::uint32_t k = 0; k < inst.b; ++k)
            mask |= s.regs[inst.a + k];
          s.regs[inst.dst] = mask;
          break;
        }
        case Op::kForStep:
          s.regs[inst.a] |= s.regs[inst.c] | ctrl;
          break;
        case Op::kCall: {
          TaintMask args = ctrl;
          for (std::uint32_t k = 0; k < inst.b; ++k)
            args |= s.regs[inst.a + k];
          const std::string& name = m.names[inst.imm];
          if (name == "print") {
            ctx.Accum(ctx.sites[{0, inst.line}], args);
            if (inst.dst != kNoReg) s.regs[inst.dst] = ctrl;
            break;
          }
          const auto cand = info.candidates.find(inst.imm);
          if (cand != info.candidates.end()) {
            TaintMask ret = ctrl;
            for (const std::uint32_t callee : cand->second) {
              std::vector<TaintMask>& params = ctx.param_in[callee];
              const std::uint32_t n =
                  std::min<std::uint32_t>(inst.b,
                                          static_cast<std::uint32_t>(
                                              params.size()));
              for (std::uint32_t k = 0; k < n; ++k)
                ctx.Accum(params[k], s.regs[inst.a + k] | ctrl);
              ret |= ctx.ret_taint[callee];
            }
            if (inst.dst != kNoReg) s.regs[inst.dst] = ret | args;
            break;
          }
          const HostSignature* sig = FindHostSignature(name);
          TaintMask result = args;
          if (sig != nullptr && sig->sensor) {
            if (!ctx.has_acquisition) {
              ctx.has_acquisition = true;
              ctx.changed = true;
            }
            result |= SensorBit(*sig->sensor);
            ctx.Accum(ctx.sites[{-1, inst.line}], SensorBit(*sig->sensor));
          }
          if (sig != nullptr && inst.b > 0 && sig->args[0] == ArgType::kList) {
            // List-mutating stdlib (push): the list argument absorbs the
            // taint of everything passed in.
            s.regs[inst.a] |= result;
          }
          if (inst.dst != kNoReg) s.regs[inst.dst] = result;
          break;
        }
        case Op::kReturn: {
          const TaintMask mask =
              (inst.a != kNoReg ? s.regs[inst.a] : 0) | ctrl;
          if (is_main) {
            if (inst.line > 0) ctx.Accum(ctx.sites[{1, inst.line}], mask);
          } else {
            ctx.Accum(ctx.ret_taint[fn_idx], mask);
          }
          break;
        }
        case Op::kBranch:
          ctx.Accum(ctx.branch_taint[fn_idx][static_cast<std::size_t>(block)],
                    s.regs[inst.a] | ctrl);
          break;
        case Op::kForLoop:
          ctx.Accum(ctx.branch_taint[fn_idx][static_cast<std::size_t>(block)],
                    s.regs[inst.a] | s.regs[inst.b] | s.regs[inst.c] | ctrl);
          break;
        case Op::kClearSlots:
          for (Reg r = inst.a; r < inst.a + inst.b; ++r) s.regs[r] = 0;
          break;
        default:
          break;  // kCheckDef, kCheckList, kForCheck, kDefineFn, kJump
      }
    }
  }
};

std::vector<SensorKind> MaskToSensors(TaintMask mask) {
  std::vector<SensorKind> out;
  for (unsigned k = 0; k < static_cast<unsigned>(SensorKind::kCount); ++k) {
    if (mask & (TaintMask{1} << k)) out.push_back(static_cast<SensorKind>(k));
  }
  return out;
}

void RunTaint(const ir::Module& m, const ModuleInfo& info, TaintCtx& ctx) {
  ctx.global_taint.assign(m.global_names.size(), 0);
  ctx.param_in.clear();
  ctx.ret_taint.assign(m.functions.size(), 0);
  ctx.branch_taint.clear();
  for (const ir::Function& fn : m.functions) {
    ctx.param_in.emplace_back(fn.num_params, 0);
    ctx.branch_taint.emplace_back(fn.blocks.size(), 0);
  }
  // Module-level fixpoint: branch/global/param/ret masks feed back into
  // other functions (and earlier blocks), so re-solve until stable. The
  // lattice is tiny (bitmasks), so this converges in a handful of rounds.
  for (int round = 0; round < 64; ++round) {
    ctx.changed = false;
    for (std::size_t f = 0; f < m.functions.size(); ++f) {
      if (m.functions[f].blocks.empty()) continue;
      TaintDomain domain{m, info, ctx, f};
      (void)Solve(m.functions[f], domain, Direction::kForward);
    }
    if (!ctx.changed) break;
  }
}

}  // namespace

// --- analysis driver -------------------------------------------------------

IrAnalysis AnalyzeModule(ir::Module& m, const IrAnalysisOptions&) {
  OptimizeReport rep;
  OptimizeModule(m, &rep);

  IrAnalysis out;
  for (const OptimizeReport::NamedUse& u : rep.undef_uses) {
    out.diagnostics.push_back(
        {"SA501", Severity::kError, u.line,
         "'" + u.name + "' is used before any assignment can reach it"});
  }
  for (const OptimizeReport::NamedUse& u : rep.dead_stores) {
    out.diagnostics.push_back(
        {"SA502", Severity::kWarning, u.line,
         "value assigned to '" + u.name + "' is never read"});
  }
  for (const OptimizeReport::FoldedBranch& f : rep.folded_branches) {
    // `while true ... break end` is an idiom, not a bug: stay silent for
    // constant-true while heads.
    if (!f.user_cond || (f.while_head && f.value)) continue;
    out.diagnostics.push_back(
        {"SA503", Severity::kWarning, f.line,
         std::string("condition is always ") + (f.value ? "true" : "false")});
  }
  for (const int line : rep.unreachable_lines) {
    out.diagnostics.push_back(
        {"SA504", Severity::kWarning, line,
         "statement is unreachable (a condition is constant)"});
  }

  const ModuleInfo info = ComputeModuleInfo(m);
  CollectTripBounds(m, info, out.trip_bounds);

  TaintCtx taint;
  RunTaint(m, info, taint);
  bool any_output = false;
  bool any_tainted_output = false;
  int first_output_line = 0;
  for (const auto& [key, mask] : taint.sites) {
    FlowSite site;
    site.kind = key.first == -1  ? FlowSite::Kind::kAcquire
                : key.first == 0 ? FlowSite::Kind::kPrint
                                 : FlowSite::Kind::kReturn;
    site.line = key.second;
    site.sensors = MaskToSensors(mask);
    if (site.kind != FlowSite::Kind::kAcquire) {
      any_output = true;
      if (mask != 0) any_tainted_output = true;
      if (first_output_line == 0 || site.line < first_output_line)
        first_output_line = site.line;
    }
    out.flow.sites.push_back(std::move(site));
  }
  Canonicalize(out.flow);
  if (taint.has_acquisition && any_output && !any_tainted_output) {
    out.diagnostics.push_back(
        {"SA505", Severity::kWarning, first_output_line,
         "script acquires sensor data but no output depends on it"});
  }
  SortAndDedupe(out.diagnostics);
  return out;
}

}  // namespace sor::script::analysis

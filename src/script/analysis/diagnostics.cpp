#include "script/analysis/diagnostics.hpp"

#include <algorithm>
#include <tuple>

namespace sor::script::analysis {

std::string Render(const Diagnostic& d) {
  std::string s = to_string(d.severity);
  s += ' ';
  s += d.code;
  if (d.line > 0) {
    s += " at line ";
    s += std::to_string(d.line);
    if (d.col > 0) {
      s += ", col ";
      s += std::to_string(d.col);
    }
  }
  s += ": ";
  s += d.message;
  return s;
}

std::string Render(std::span<const Diagnostic> ds) {
  std::string out;
  for (const Diagnostic& d : ds) {
    if (!out.empty()) out += '\n';
    out += Render(d);
  }
  return out;
}

Diagnostic FromError(const Error& err) {
  return Diagnostic{"SA001", Severity::kError, err.line, err.str()};
}

void SortAndDedupe(std::vector<Diagnostic>& ds) {
  auto key = [](const Diagnostic& d) {
    return std::tie(d.line, d.col, d.code, d.message);
  };
  std::sort(ds.begin(), ds.end(),
            [&](const Diagnostic& a, const Diagnostic& b) {
              return key(a) < key(b);
            });
  ds.erase(std::unique(ds.begin(), ds.end()), ds.end());
}

bool AnalysisReport::ok() const { return error_count() == 0; }

std::size_t AnalysisReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

std::vector<Diagnostic> AnalysisReport::errors() const {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) out.push_back(d);
  }
  return out;
}

bool AnalysisReport::Has(std::string_view code) const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

std::string AnalysisReport::RenderErrors() const {
  return Render(std::span<const Diagnostic>(errors()));
}

std::string EncodeSensorList(std::span<const SensorKind> kinds) {
  std::string out;
  for (SensorKind k : kinds) {
    if (!out.empty()) out += ',';
    out += to_string(k);
  }
  return out;
}

Result<std::vector<SensorKind>> DecodeSensorList(std::string_view text) {
  std::vector<SensorKind> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    std::string_view name = text.substr(pos, comma - pos);
    std::optional<SensorKind> kind = SensorKindFromString(name);
    if (!kind.has_value()) {
      return Error{Errc::kDecodeError,
                   "unknown sensor name '" + std::string(name) + "'"};
    }
    out.push_back(*kind);
    pos = comma + 1;
  }
  return out;
}

}  // namespace sor::script::analysis

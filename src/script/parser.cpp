#include "script/parser.hpp"

#include <utility>

#include "script/lexer.hpp"

namespace sor::script {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram() {
    Program prog;
    while (!Check(TokenType::kEof)) {
      Result<StmtPtr> s = ParseStatement();
      if (!s.ok()) return s.error();
      prog.statements.push_back(std::move(s).value());
    }
    return prog;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Prev() const { return tokens_[pos_ - 1]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    ++pos_;
    return true;
  }

  // The line rides both in the rendered message and in the structured
  // Error::line field (see lexer.cpp's error lambda for the same contract).
  Error Err(const std::string& msg) const {
    return Error{Errc::kScriptError,
                 "parse error at line " + std::to_string(Peek().line) + ": " +
                     msg + " (got '" +
                     std::string(to_string(Peek().type)) + "')",
                 Peek().line};
  }

  Result<Token> Expect(TokenType t, const std::string& what) {
    if (!Check(t)) return Err("expected " + what);
    Token tok = Peek();
    ++pos_;
    return tok;
  }

  // Parse statements until one of the given terminator keywords (not
  // consumed). Used for blocks of if/while/for/function bodies.
  Result<std::vector<StmtPtr>> ParseBlock(
      std::initializer_list<TokenType> terminators) {
    std::vector<StmtPtr> body;
    while (true) {
      for (TokenType t : terminators) {
        if (Check(t)) return body;
      }
      if (Check(TokenType::kEof)) return Err("unexpected end of script");
      Result<StmtPtr> s = ParseStatement();
      if (!s.ok()) return s.error();
      body.push_back(std::move(s).value());
    }
  }

  Result<StmtPtr> ParseStatement() {
    const int line = Peek().line;
    if (Match(TokenType::kLocal)) return ParseLocal(line);
    if (Match(TokenType::kIf)) return ParseIf(line);
    if (Match(TokenType::kWhile)) return ParseWhile(line);
    if (Match(TokenType::kFor)) return ParseFor(line);
    if (Match(TokenType::kFunction)) return ParseFunction(line);
    if (Match(TokenType::kReturn)) {
      auto st = std::make_unique<Stmt>();
      st->kind = Stmt::Kind::kReturn;
      st->line = line;
      // `return` with no value: next token starts a block terminator.
      if (!Check(TokenType::kEnd) && !Check(TokenType::kElse) &&
          !Check(TokenType::kElseif) && !Check(TokenType::kEof)) {
        Result<ExprPtr> e = ParseExpr();
        if (!e.ok()) return e.error();
        st->expr = std::move(e).value();
      }
      return StmtPtr(std::move(st));
    }
    if (Match(TokenType::kBreak)) {
      auto st = std::make_unique<Stmt>();
      st->kind = Stmt::Kind::kBreak;
      st->line = line;
      return StmtPtr(std::move(st));
    }
    // Assignment or call statement: parse a suffixed expression and decide.
    Result<ExprPtr> e = ParseSuffixedExpr();
    if (!e.ok()) return e.error();
    ExprPtr expr = std::move(e).value();
    if (Match(TokenType::kAssign)) {
      Result<ExprPtr> value = ParseExpr();
      if (!value.ok()) return value.error();
      auto st = std::make_unique<Stmt>();
      st->line = line;
      if (expr->kind == Expr::Kind::kName) {
        st->kind = Stmt::Kind::kAssign;
        st->name = expr->text;
      } else if (expr->kind == Expr::Kind::kIndex) {
        st->kind = Stmt::Kind::kAssign;
        st->target_index = std::move(expr);
      } else {
        return Err("invalid assignment target");
      }
      st->expr = std::move(value).value();
      return StmtPtr(std::move(st));
    }
    if (expr->kind != Expr::Kind::kCall)
      return Err("expected statement");
    auto st = std::make_unique<Stmt>();
    st->kind = Stmt::Kind::kExpr;
    st->line = line;
    st->expr = std::move(expr);
    return StmtPtr(std::move(st));
  }

  Result<StmtPtr> ParseLocal(int line) {
    Result<Token> name = Expect(TokenType::kName, "variable name");
    if (!name.ok()) return name.error();
    if (Result<Token> t = Expect(TokenType::kAssign, "'='"); !t.ok())
      return t.error();
    Result<ExprPtr> value = ParseExpr();
    if (!value.ok()) return value.error();
    auto st = std::make_unique<Stmt>();
    st->kind = Stmt::Kind::kLocal;
    st->line = line;
    st->name = name.value().text;
    st->expr = std::move(value).value();
    return StmtPtr(std::move(st));
  }

  Result<StmtPtr> ParseIf(int line) {
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) return cond.error();
    if (Result<Token> t = Expect(TokenType::kThen, "'then'"); !t.ok())
      return t.error();
    Result<std::vector<StmtPtr>> body = ParseBlock(
        {TokenType::kEnd, TokenType::kElse, TokenType::kElseif});
    if (!body.ok()) return body.error();

    auto st = std::make_unique<Stmt>();
    st->kind = Stmt::Kind::kIf;
    st->line = line;
    st->expr = std::move(cond).value();
    st->body = std::move(body).value();

    if (Match(TokenType::kElseif)) {
      // Desugar: elseif chain becomes a nested if in the else branch.
      Result<StmtPtr> nested = ParseIf(Prev().line);
      if (!nested.ok()) return nested.error();
      st->else_body.push_back(std::move(nested).value());
      return StmtPtr(std::move(st));  // nested ParseIf consumed the 'end'
    }
    if (Match(TokenType::kElse)) {
      Result<std::vector<StmtPtr>> else_body = ParseBlock({TokenType::kEnd});
      if (!else_body.ok()) return else_body.error();
      st->else_body = std::move(else_body).value();
    }
    if (Result<Token> t = Expect(TokenType::kEnd, "'end'"); !t.ok())
      return t.error();
    return StmtPtr(std::move(st));
  }

  Result<StmtPtr> ParseWhile(int line) {
    Result<ExprPtr> cond = ParseExpr();
    if (!cond.ok()) return cond.error();
    if (Result<Token> t = Expect(TokenType::kDo, "'do'"); !t.ok())
      return t.error();
    Result<std::vector<StmtPtr>> body = ParseBlock({TokenType::kEnd});
    if (!body.ok()) return body.error();
    if (Result<Token> t = Expect(TokenType::kEnd, "'end'"); !t.ok())
      return t.error();
    auto st = std::make_unique<Stmt>();
    st->kind = Stmt::Kind::kWhile;
    st->line = line;
    st->expr = std::move(cond).value();
    st->body = std::move(body).value();
    return StmtPtr(std::move(st));
  }

  Result<StmtPtr> ParseFor(int line) {
    Result<Token> name = Expect(TokenType::kName, "loop variable");
    if (!name.ok()) return name.error();
    if (Result<Token> t = Expect(TokenType::kAssign, "'='"); !t.ok())
      return t.error();
    Result<ExprPtr> start = ParseExpr();
    if (!start.ok()) return start.error();
    if (Result<Token> t = Expect(TokenType::kComma, "','"); !t.ok())
      return t.error();
    Result<ExprPtr> stop = ParseExpr();
    if (!stop.ok()) return stop.error();
    ExprPtr step;
    if (Match(TokenType::kComma)) {
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) return e.error();
      step = std::move(e).value();
    }
    if (Result<Token> t = Expect(TokenType::kDo, "'do'"); !t.ok())
      return t.error();
    Result<std::vector<StmtPtr>> body = ParseBlock({TokenType::kEnd});
    if (!body.ok()) return body.error();
    if (Result<Token> t = Expect(TokenType::kEnd, "'end'"); !t.ok())
      return t.error();
    auto st = std::make_unique<Stmt>();
    st->kind = Stmt::Kind::kNumericFor;
    st->line = line;
    st->name = name.value().text;
    st->for_start = std::move(start).value();
    st->for_stop = std::move(stop).value();
    st->for_step = std::move(step);
    st->body = std::move(body).value();
    return StmtPtr(std::move(st));
  }

  Result<StmtPtr> ParseFunction(int line) {
    Result<Token> name = Expect(TokenType::kName, "function name");
    if (!name.ok()) return name.error();
    if (Result<Token> t = Expect(TokenType::kLParen, "'('"); !t.ok())
      return t.error();
    std::vector<std::string> params;
    if (!Check(TokenType::kRParen)) {
      do {
        Result<Token> p = Expect(TokenType::kName, "parameter name");
        if (!p.ok()) return p.error();
        params.push_back(p.value().text);
      } while (Match(TokenType::kComma));
    }
    if (Result<Token> t = Expect(TokenType::kRParen, "')'"); !t.ok())
      return t.error();
    Result<std::vector<StmtPtr>> body = ParseBlock({TokenType::kEnd});
    if (!body.ok()) return body.error();
    if (Result<Token> t = Expect(TokenType::kEnd, "'end'"); !t.ok())
      return t.error();
    auto st = std::make_unique<Stmt>();
    st->kind = Stmt::Kind::kFunction;
    st->line = line;
    st->name = name.value().text;
    st->params = std::move(params);
    st->body = std::move(body).value();
    return StmtPtr(std::move(st));
  }

  // --- expressions (precedence climbing) -------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (Match(TokenType::kOr)) {
      Result<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(BinOp::kOr, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> lhs = ParseComparison();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (Match(TokenType::kAnd)) {
      Result<ExprPtr> rhs = ParseComparison();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(BinOp::kAnd, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseComparison() {
    Result<ExprPtr> lhs = ParseConcat();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (true) {
      BinOp op;
      if (Match(TokenType::kEq)) op = BinOp::kEq;
      else if (Match(TokenType::kNe)) op = BinOp::kNe;
      else if (Match(TokenType::kLt)) op = BinOp::kLt;
      else if (Match(TokenType::kLe)) op = BinOp::kLe;
      else if (Match(TokenType::kGt)) op = BinOp::kGt;
      else if (Match(TokenType::kGe)) op = BinOp::kGe;
      else break;
      Result<ExprPtr> rhs = ParseConcat();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseConcat() {
    Result<ExprPtr> lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (Match(TokenType::kConcat)) {
      Result<ExprPtr> rhs = ParseAdditive();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(BinOp::kConcat, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    Result<ExprPtr> lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (true) {
      BinOp op;
      if (Match(TokenType::kPlus)) op = BinOp::kAdd;
      else if (Match(TokenType::kMinus)) op = BinOp::kSub;
      else break;
      Result<ExprPtr> rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseMultiplicative() {
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    ExprPtr e = std::move(lhs).value();
    while (true) {
      BinOp op;
      if (Match(TokenType::kStar)) op = BinOp::kMul;
      else if (Match(TokenType::kSlash)) op = BinOp::kDiv;
      else if (Match(TokenType::kPercent)) op = BinOp::kMod;
      else break;
      Result<ExprPtr> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      e = MakeBinary(op, std::move(e), std::move(rhs).value());
    }
    return e;
  }

  Result<ExprPtr> ParseUnary() {
    const int line = Peek().line;
    UnOp op;
    if (Match(TokenType::kMinus)) op = UnOp::kNeg;
    else if (Match(TokenType::kNot)) op = UnOp::kNot;
    else if (Match(TokenType::kHash)) op = UnOp::kLen;
    else return ParseSuffixedExpr();
    Result<ExprPtr> operand = ParseUnary();
    if (!operand.ok()) return operand;
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kUnary;
    e->line = line;
    e->un_op = op;
    e->lhs = std::move(operand).value();
    return ExprPtr(std::move(e));
  }

  // primary with call/index suffixes: name(...)  list[i]  f(x)[2] ...
  Result<ExprPtr> ParseSuffixedExpr() {
    Result<ExprPtr> prim = ParsePrimary();
    if (!prim.ok()) return prim;
    ExprPtr e = std::move(prim).value();
    while (true) {
      if (Match(TokenType::kLParen)) {
        if (e->kind != Expr::Kind::kName)
          return Err("only named functions can be called");
        auto call = std::make_unique<Expr>();
        call->kind = Expr::Kind::kCall;
        call->line = e->line;
        call->text = e->text;
        if (!Check(TokenType::kRParen)) {
          do {
            Result<ExprPtr> arg = ParseExpr();
            if (!arg.ok()) return arg;
            call->args.push_back(std::move(arg).value());
          } while (Match(TokenType::kComma));
        }
        if (Result<Token> t = Expect(TokenType::kRParen, "')'"); !t.ok())
          return t.error();
        e = std::move(call);
        continue;
      }
      if (Match(TokenType::kLBracket)) {
        Result<ExprPtr> idx = ParseExpr();
        if (!idx.ok()) return idx;
        if (Result<Token> t = Expect(TokenType::kRBracket, "']'"); !t.ok())
          return t.error();
        auto index = std::make_unique<Expr>();
        index->kind = Expr::Kind::kIndex;
        index->line = e->line;
        index->lhs = std::move(e);
        index->rhs = std::move(idx).value();
        e = std::move(index);
        continue;
      }
      return e;
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    auto e = std::make_unique<Expr>();
    e->line = tok.line;
    if (Match(TokenType::kNumber)) {
      e->kind = Expr::Kind::kNumber;
      e->number = Prev().number;
      return ExprPtr(std::move(e));
    }
    if (Match(TokenType::kString)) {
      e->kind = Expr::Kind::kString;
      e->text = Prev().text;
      return ExprPtr(std::move(e));
    }
    if (Match(TokenType::kTrue) || Match(TokenType::kFalse)) {
      e->kind = Expr::Kind::kBool;
      e->boolean = Prev().type == TokenType::kTrue;
      return ExprPtr(std::move(e));
    }
    if (Match(TokenType::kNil)) {
      e->kind = Expr::Kind::kNil;
      return ExprPtr(std::move(e));
    }
    if (Match(TokenType::kName)) {
      e->kind = Expr::Kind::kName;
      e->text = Prev().text;
      return ExprPtr(std::move(e));
    }
    if (Match(TokenType::kLParen)) {
      Result<ExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (Result<Token> t = Expect(TokenType::kRParen, "')'"); !t.ok())
        return t.error();
      return inner;
    }
    if (Match(TokenType::kLBrace)) {
      e->kind = Expr::Kind::kListLiteral;
      if (!Check(TokenType::kRBrace)) {
        do {
          Result<ExprPtr> el = ParseExpr();
          if (!el.ok()) return el;
          e->args.push_back(std::move(el).value());
        } while (Match(TokenType::kComma));
      }
      if (Result<Token> t = Expect(TokenType::kRBrace, "'}'"); !t.ok())
        return t.error();
      return ExprPtr(std::move(e));
    }
    return Err("expected expression");
  }

  static ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBinary;
    e->line = lhs->line;
    e->bin_op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Program> Parse(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).value());
  return parser.ParseProgram();
}

}  // namespace sor::script

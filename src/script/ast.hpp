// SenseScript abstract syntax tree.
//
// Plain struct hierarchy with unique_ptr ownership; the interpreter walks
// it directly (no bytecode — sensing scripts are tiny and run a handful of
// acquisition loops, so tree walking is more than fast enough and far
// simpler to audit for the security whitelist).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace sor::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod, kConcat,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp { kNeg, kNot, kLen };

struct Expr {
  enum class Kind {
    kNumber, kString, kBool, kNil, kName, kBinary, kUnary, kCall, kIndex,
    kListLiteral,
  };
  Kind kind;
  int line = 1;

  // kNumber / kString / kBool
  double number = 0.0;
  std::string text;  // string literal payload or variable/function name
  bool boolean = false;

  // kBinary / kUnary
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  ExprPtr lhs;  // also: callee-name holder unused; operand for unary
  ExprPtr rhs;

  // kCall: text = function name, args in `args`
  std::vector<ExprPtr> args;

  // kIndex: lhs = list expression, rhs = index expression (1-based, Lua-like)

  // kListLiteral: elements in `args`
};

struct Stmt {
  enum class Kind {
    kLocal,       // local name = expr
    kAssign,      // name = expr  |  list[i] = expr
    kExpr,        // expression statement (function call)
    kIf,          // if/elseif/else
    kWhile,       // while cond do body end
    kNumericFor,  // for name = start, stop[, step] do body end
    kFunction,    // function name(params) body end
    kReturn,      // return [expr]
    kBreak,       // break
  };
  Kind kind;
  int line = 1;

  std::string name;               // target variable / function name
  ExprPtr target_index;           // for list-element assignment: list[i]
  ExprPtr expr;                   // value / condition / call / return value
  std::vector<StmtPtr> body;      // while/for/function body, if-then branch
  std::vector<StmtPtr> else_body; // if: else branch (elseif chains nest here)

  // numeric for:
  ExprPtr for_start;
  ExprPtr for_stop;
  ExprPtr for_step;  // may be null (defaults to 1)

  // function definition:
  std::vector<std::string> params;
};

// A parsed script: a statement block (plus any function definitions hoisted
// into the interpreter's global scope at execution time).
struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace sor::script

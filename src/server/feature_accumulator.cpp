#include "server/feature_accumulator.hpp"

#include <algorithm>

#include "common/geo.hpp"

namespace sor::server {

double GpsCurvatureOfTracks(
    const std::map<std::uint64_t, std::vector<ReadingTuple>>& gps_by_task,
    std::size_t* n_samples) {
  RunningStats per_track;
  for (const auto& [task, stored] : gps_by_task) {
    // Sort a copy by window start so curvature follows the walk order;
    // stable, so a pre-sorted input (the full-recompute oracle) is a no-op.
    std::vector<ReadingTuple> tuples = stored;
    std::stable_sort(tuples.begin(), tuples.end(),
                     [](const ReadingTuple& a, const ReadingTuple& b) {
                       return a.t < b.t;
                     });
    // Fixes within a tuple carry no individual timestamps on the wire, but
    // they are evenly spread over [t, t+Δt]; reconstruct their times, order
    // the whole track, then smooth against GPS noise.
    std::vector<std::pair<std::int64_t, GeoPoint>> timed;
    for (const ReadingTuple& t : tuples) {
      const std::size_t n = t.locations.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t offset =
            n > 1 ? t.dt.ms * static_cast<std::int64_t>(i) /
                        static_cast<std::int64_t>(n - 1)
                  : 0;
        timed.emplace_back(t.t.ms + offset, t.locations[i]);
      }
    }
    std::stable_sort(
        timed.begin(), timed.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<GeoPoint> fixes;
    fixes.reserve(timed.size());
    for (const auto& [ms, p] : timed) fixes.push_back(p);
    if (fixes.size() < 5) continue;

    // 3-point moving-average smoothing.
    std::vector<GeoPoint> smooth(fixes.size());
    smooth.front() = fixes.front();
    smooth.back() = fixes.back();
    for (std::size_t i = 1; i + 1 < fixes.size(); ++i) {
      smooth[i].lat_deg =
          (fixes[i - 1].lat_deg + fixes[i].lat_deg + fixes[i + 1].lat_deg) /
          3.0;
      smooth[i].lon_deg =
          (fixes[i - 1].lon_deg + fixes[i].lon_deg + fixes[i + 1].lon_deg) /
          3.0;
      smooth[i].alt_m =
          (fixes[i - 1].alt_m + fixes[i].alt_m + fixes[i + 1].alt_m) / 3.0;
    }

    RunningStats curv;
    for (std::size_t i = 1; i + 1 < smooth.size(); ++i) {
      // Skip near-stationary vertices: angle is undefined noise there.
      if (HaversineMeters(smooth[i - 1], smooth[i]) < 5.0 ||
          HaversineMeters(smooth[i], smooth[i + 1]) < 5.0)
        continue;
      curv.add(PolylineCurvature(smooth[i - 1], smooth[i], smooth[i + 1]));
    }
    if (curv.count() == 0) continue;
    *n_samples += fixes.size();
    per_track.add(curv.mean() * 1000.0);
  }
  return per_track.mean();
}

void AppAccumulatorState::Ingest(const std::vector<FeatureDef>& defs,
                                 std::uint64_t task,
                                 const ReadingTuple& tuple) {
  if (features.size() < defs.size()) features.resize(defs.size());
  bool needs_gps = false;
  for (std::size_t j = 0; j < defs.size(); ++j) {
    const FeatureDef& def = defs[j];
    if (def.method == ExtractMethod::kGpsCurvature) {
      needs_gps = true;
      continue;  // GPS tails are shared, folded once below
    }
    if (def.sensor != tuple.kind) continue;
    FeatureAccState& f = features[j];
    switch (def.method) {
      case ExtractMethod::kMeanOfAll:
        f.values.insert(f.values.end(), tuple.values.begin(),
                        tuple.values.end());
        break;
      case ExtractMethod::kMeanOfWindowStddev:
        if (tuple.values.size() < 2) break;
        f.window.add(StdDev(tuple.values));
        f.n_samples += tuple.values.size();
        break;
      case ExtractMethod::kStddevOfWindowMeans:
        if (tuple.values.empty()) break;
        f.window.add(Mean(tuple.values));
        f.n_samples += tuple.values.size();
        break;
      case ExtractMethod::kGpsCurvature:
        break;  // unreachable, handled above
    }
  }
  if (needs_gps && tuple.kind == SensorKind::kGps && !tuple.locations.empty())
    gps_by_task[task].push_back(tuple);
}

double AppAccumulatorState::Finalize(std::size_t j, const FeatureDef& def,
                                     bool reject_outliers, double z_threshold,
                                     std::size_t* n_samples) const {
  *n_samples = 0;
  if (def.method == ExtractMethod::kGpsCurvature)
    return GpsCurvatureOfTracks(gps_by_task, n_samples);
  if (j >= features.size()) return 0.0;  // app with zero ingested blobs
  const FeatureAccState& f = features[j];
  switch (def.method) {
    case ExtractMethod::kMeanOfAll:
      *n_samples = f.values.size();
      if (reject_outliers) return RobustMean(f.values, z_threshold);
      return Mean(f.values);
    case ExtractMethod::kMeanOfWindowStddev:
      *n_samples = static_cast<std::size_t>(f.n_samples);
      return f.window.mean();
    case ExtractMethod::kStddevOfWindowMeans:
      *n_samples = static_cast<std::size_t>(f.n_samples);
      return f.window.stddev();
    case ExtractMethod::kGpsCurvature:
      break;  // handled above
  }
  return 0.0;
}

namespace {
constexpr std::uint8_t kStateVersion = 1;
}  // namespace

Bytes AppAccumulatorState::Encode() const {
  ByteWriter w;
  w.u8(kStateVersion);
  w.svarint(cursor);
  w.varint(features.size());
  for (const FeatureAccState& f : features) {
    w.varint(f.values.size());
    for (double v : f.values) w.f64(v);
    w.varint(f.window.count());
    w.f64(f.window.mean());
    w.f64(f.window.m2());
    w.f64(f.window.min());
    w.f64(f.window.max());
    w.varint(f.n_samples);
  }
  w.varint(gps_by_task.size());
  for (const auto& [task, tuples] : gps_by_task) {
    w.varint(task);
    w.varint(tuples.size());
    for (const ReadingTuple& t : tuples) EncodeReadingTuple(t, w);
  }
  return w.take();
}

Result<AppAccumulatorState> AppAccumulatorState::Decode(
    std::span<const std::uint8_t> bytes, std::size_t expected_features) {
  ByteReader r(bytes);
  if (r.u8() != kStateVersion)
    return Error{Errc::kDecodeError, "processor state: bad version"};
  AppAccumulatorState s;
  s.cursor = r.svarint();
  const std::uint64_t n_features = r.varint();
  if (!r.ok() || n_features > expected_features)
    return Error{Errc::kDecodeError, "processor state: feature-list mismatch"};
  s.features.resize(n_features);
  for (FeatureAccState& f : s.features) {
    const std::uint64_t n_values = r.varint();
    if (!r.ok()) break;
    f.values.reserve(n_values);
    for (std::uint64_t i = 0; i < n_values && r.ok(); ++i)
      f.values.push_back(r.f64());
    const auto wn = static_cast<std::size_t>(r.varint());
    const double mean = r.f64();
    const double m2 = r.f64();
    const double min = r.f64();
    const double max = r.f64();
    f.window = RunningStats::FromMoments(wn, mean, m2, min, max);
    f.n_samples = r.varint();
  }
  const std::uint64_t n_tasks = r.varint();
  for (std::uint64_t i = 0; i < n_tasks && r.ok(); ++i) {
    const std::uint64_t task = r.varint();
    const std::uint64_t n_tuples = r.varint();
    auto& tuples = s.gps_by_task[task];
    tuples.reserve(n_tuples);
    for (std::uint64_t k = 0; k < n_tuples && r.ok(); ++k)
      tuples.push_back(DecodeReadingTuple(r));
  }
  if (Status st = r.finish(); !st.ok())
    return Error{Errc::kDecodeError, "processor state: " + st.str()};
  return s;
}

}  // namespace sor::server

// HealthMonitor — the server's overload watchdog (docs/robustness.md).
//
// The SOR prototype ran one sensing server against a whole floor of phones
// (§V); a flash crowd of uploads, or a database hiccup, must degrade the
// service gracefully instead of toppling it. This module owns the
// degradation ladder:
//
//   normal ──load──▶ throttling ──load──▶ shedding
//     ▲                                      │
//     └──────── new tick / load drops ◀──────┘
//   (recovering: entered after storage failures force a reprime; refuses
//    uploads for the rest of the tick, then steps back to normal)
//
// Admission is budgeted per simulated tick: the first `ingest_budget`
// uploads of a tick are admitted; past `throttle_at`·budget the server
// starts shedding by priority — STALE uploads (sensed long ago; their loss
// costs the freshest the least) are refused first, fresh ones ride until
// the budget is spent, and leave notifications are never refused at all
// (they are tiny and the scheduler must learn who is gone). A refusal is a
// ThrottleReply carrying a deterministic retry_after hint, so the data
// stays queued on the phone and the fleet paces itself off the server.
//
// Everything here is a pure function of the admission sequence and the
// clock — no randomness — so overload behaviour is byte-identical across
// thread counts (admissions happen inside the epoch merge pass, in rank
// order, on the driver thread).
#pragma once

#include <cstdint>
#include <map>

#include "common/sim_time.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sor::server {

struct OverloadConfig {
  // Uploads admitted per tick; 0 = unlimited (the pre-overload behaviour,
  // and the default, so existing runs keep their exact fingerprints).
  int ingest_budget = 0;
  // Fraction of the budget past which stale uploads are shed.
  double throttle_at = 0.75;
  // An upload whose newest reading is older than this is "stale": it has
  // already waited on a phone, so it can wait a little longer.
  SimDuration stale_after{10'000};
  // Base retry hint; shedding/recovering hand out twice this.
  SimDuration retry_after{2'000};
  // Storage write failures (within one reprime epoch) that trigger
  // quarantine-and-reprime.
  int reprime_after_failures = 3;
};

enum class ServerMode : std::uint8_t {
  kNormal = 0,
  kThrottling = 1,  // budget tightening: stale uploads shed
  kShedding = 2,    // budget spent: every upload refused
  kRecovering = 3,  // storage faulted; reprimed, refusing until next tick
};

[[nodiscard]] const char* to_string(ServerMode mode);

// The fate of one upload at the admission gate.
struct AdmitDecision {
  bool admit = true;
  bool stale = false;          // the upload was stale at decision time
  SimDuration retry_after{0};  // throttle hint (refusals only)
  ServerMode mode = ServerMode::kNormal;
};

class HealthMonitor {
 public:
  void set_config(OverloadConfig config) { config_ = config; }
  [[nodiscard]] const OverloadConfig& config() const { return config_; }

  // Counters land in the shared registry; mode changes trace on the
  // server's stream. Call from serial setup code.
  void AttachObservability(obs::MetricsRegistry* registry,
                           obs::Tracer* tracer, obs::StreamId stream);

  // Decide one upload's admission at `now`. Rolls the budget window when
  // the clock has advanced since the last decision (a window == one
  // simulated tick) and walks the ladder as the window fills.
  [[nodiscard]] AdmitDecision AdmitUpload(SimTime now, SimTime sensed_at);

  // Clock heartbeat from the campaign driver. Rolls the window exactly
  // like the first admission of a tick would, so the ladder steps back to
  // normal on a QUIET tick too — without this, a server that stopped
  // receiving uploads would be frozen in its last overloaded mode forever.
  // Call from the driver thread (between rounds) only.
  void ObserveTick(SimTime now) { RollWindow(now); }

  // Storage fault accounting. The server reports every failed raw-data
  // write; once `reprime_after_failures` pile up in one epoch the server
  // should quarantine + reprime (ShouldReprime goes true), call
  // NoteReprimed, and the monitor holds kRecovering until the next tick.
  void NoteStorageFailure(SimTime now);
  [[nodiscard]] bool ShouldReprime() const;
  void NoteReprimed(SimTime now);

  // Liveness: last contact per task, so operators can spot silent shards.
  void NoteContact(std::uint64_t task, SimTime now);
  [[nodiscard]] std::size_t LiveTasks(SimTime now, SimDuration within) const;

  [[nodiscard]] ServerMode mode() const { return mode_; }
  [[nodiscard]] std::uint64_t window_used() const { return used_; }
  [[nodiscard]] std::uint64_t throttled_total() const {
    return throttled_total_;
  }
  [[nodiscard]] std::uint64_t shed_stale_total() const {
    return shed_stale_total_;
  }
  [[nodiscard]] std::uint64_t storage_failures_total() const {
    return storage_failures_total_;
  }
  [[nodiscard]] std::uint64_t reprimes_total() const {
    return reprimes_total_;
  }
  [[nodiscard]] std::uint64_t mode_changes_total() const {
    return mode_changes_total_;
  }

 private:
  void RollWindow(SimTime now);
  void SetMode(ServerMode mode, SimTime now);

  OverloadConfig config_;
  ServerMode mode_ = ServerMode::kNormal;
  SimTime window_start_{-1};     // sentinel: first decision rolls the window
  std::uint64_t used_ = 0;       // admissions this window
  int failures_this_epoch_ = 0;  // storage failures since the last reprime

  std::uint64_t throttled_total_ = 0;
  std::uint64_t shed_stale_total_ = 0;
  std::uint64_t storage_failures_total_ = 0;
  std::uint64_t reprimes_total_ = 0;
  std::uint64_t mode_changes_total_ = 0;

  std::map<std::uint64_t, SimTime> last_contact_;

  obs::Tracer* tracer_ = nullptr;
  obs::StreamId stream_ = 0;
  obs::Counter* c_throttled_ = nullptr;
  obs::Counter* c_shed_ = nullptr;
  obs::Counter* c_storage_failures_ = nullptr;
  obs::Counter* c_reprimes_ = nullptr;
  obs::Counter* c_mode_changes_ = nullptr;
  obs::Gauge* g_mode_ = nullptr;
  obs::Gauge* g_window_used_ = nullptr;
};

}  // namespace sor::server

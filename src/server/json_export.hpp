// JSON export of feature data and rankings.
//
// The paper's server feeds a Visualization module "such that users can
// view them easily"; modern consumers want machine-readable output too.
// This is a minimal, dependency-free JSON emitter (proper string escaping,
// no floats-as-locale surprises) for the two artifacts downstream systems
// consume: the feature matrix H and per-user rankings.
#pragma once

#include <string>
#include <vector>

#include "rank/personalizable_ranker.hpp"

namespace sor::server {

// {"places":[...], "features":[{"name":...},...], "values":[[...],...]}
[[nodiscard]] std::string RenderFeatureJson(const rank::FeatureMatrix& m);

// {"rankings":[{"user":"Alice","order":["Cliff Trail",...]},...]}
[[nodiscard]] std::string RenderRankingJson(
    const rank::FeatureMatrix& m,
    const std::vector<std::pair<std::string, rank::Ranking>>& user_rankings);

// Escape a string for embedding in JSON (quotes added by the caller).
[[nodiscard]] std::string JsonEscape(const std::string& s);

}  // namespace sor::server

#include "server/json_export.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace sor::server {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// JSON has no NaN/Inf; emit null for non-finite values.
std::string Num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

std::string RenderFeatureJson(const rank::FeatureMatrix& m) {
  std::ostringstream out;
  out << "{\"places\":[";
  for (int i = 0; i < m.num_places(); ++i) {
    if (i) out << ',';
    out << '"'
        << JsonEscape(m.place_names()[static_cast<std::size_t>(i)]) << '"';
  }
  out << "],\"features\":[";
  for (int j = 0; j < m.num_features(); ++j) {
    if (j) out << ',';
    out << "{\"name\":\""
        << JsonEscape(m.features()[static_cast<std::size_t>(j)].name)
        << "\"}";
  }
  out << "],\"values\":[";
  for (int i = 0; i < m.num_places(); ++i) {
    if (i) out << ',';
    out << '[';
    for (int j = 0; j < m.num_features(); ++j) {
      if (j) out << ',';
      out << Num(m.at(i, j));
    }
    out << ']';
  }
  out << "]}";
  return out.str();
}

std::string RenderRankingJson(
    const rank::FeatureMatrix& m,
    const std::vector<std::pair<std::string, rank::Ranking>>& user_rankings) {
  std::ostringstream out;
  out << "{\"rankings\":[";
  bool first_user = true;
  for (const auto& [user, ranking] : user_rankings) {
    if (!first_user) out << ',';
    first_user = false;
    out << "{\"user\":\"" << JsonEscape(user) << "\",\"order\":[";
    for (int pos = 0; pos < ranking.size(); ++pos) {
      if (pos) out << ',';
      out << '"'
          << JsonEscape(m.place_names()[static_cast<std::size_t>(
                 ranking.item_at(pos))])
          << '"';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace sor::server

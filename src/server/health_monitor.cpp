#include "server/health_monitor.hpp"

#include <cmath>

namespace sor::server {

const char* to_string(ServerMode mode) {
  switch (mode) {
    case ServerMode::kNormal: return "normal";
    case ServerMode::kThrottling: return "throttling";
    case ServerMode::kShedding: return "shedding";
    case ServerMode::kRecovering: return "recovering";
  }
  return "?";
}

void HealthMonitor::AttachObservability(obs::MetricsRegistry* registry,
                                        obs::Tracer* tracer,
                                        obs::StreamId stream) {
  tracer_ = tracer;
  stream_ = stream;
  if (registry == nullptr) {
    c_throttled_ = nullptr;
    c_shed_ = nullptr;
    c_storage_failures_ = nullptr;
    c_reprimes_ = nullptr;
    c_mode_changes_ = nullptr;
    g_mode_ = nullptr;
    g_window_used_ = nullptr;
    return;
  }
  c_throttled_ = &registry->counter("server.uploads_throttled");
  c_shed_ = &registry->counter("server.uploads_shed");
  c_storage_failures_ = &registry->counter("server.storage_write_failures");
  c_reprimes_ = &registry->counter("server.reprimes");
  c_mode_changes_ = &registry->counter("server.mode_changes");
  g_mode_ = &registry->gauge("server.mode");
  g_window_used_ = &registry->gauge("server.ingest_window_used");
}

void HealthMonitor::SetMode(ServerMode mode, SimTime now) {
  if (mode == mode_) return;
  mode_ = mode;
  ++mode_changes_total_;
  if (c_mode_changes_ != nullptr) c_mode_changes_->Inc();
  if (g_mode_ != nullptr) g_mode_->Set(static_cast<double>(
      static_cast<std::uint8_t>(mode)));
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Emit(stream_, now, obs::EventKind::kServerModeChanged,
                  static_cast<std::uint64_t>(static_cast<std::uint8_t>(mode)),
                  used_, 0);
  }
}

void HealthMonitor::RollWindow(SimTime now) {
  if (now.ms == window_start_.ms) return;
  window_start_ = now;
  used_ = 0;
  if (g_window_used_ != nullptr) g_window_used_->Set(0.0);
  // A new tick is a clean slate: load-driven modes step back to normal
  // (the ladder climbs again only if this tick actually fills up), and a
  // reprimed server has had its quiet remainder-of-tick — resume serving.
  SetMode(ServerMode::kNormal, now);
}

AdmitDecision HealthMonitor::AdmitUpload(SimTime now, SimTime sensed_at) {
  RollWindow(now);
  AdmitDecision d;
  d.stale = sensed_at + config_.stale_after < now;

  if (mode_ == ServerMode::kRecovering) {
    // Post-reprime quiet period: refuse everything until the next tick.
    d.admit = false;
    d.retry_after = config_.retry_after + config_.retry_after;
    d.mode = mode_;
    ++throttled_total_;
    if (c_throttled_ != nullptr) c_throttled_->Inc();
    return d;
  }

  const int budget = config_.ingest_budget;
  if (budget > 0) {
    if (used_ >= static_cast<std::uint64_t>(budget)) {
      SetMode(ServerMode::kShedding, now);
      d.admit = false;
      d.retry_after = config_.retry_after + config_.retry_after;
    } else {
      const auto threshold = static_cast<std::uint64_t>(
          std::ceil(config_.throttle_at * budget));
      if (used_ >= threshold) {
        SetMode(ServerMode::kThrottling, now);
        if (d.stale) {
          // Shed by priority: stale data has already waited on a phone —
          // refusing it preserves the remaining budget for fresh uploads.
          d.admit = false;
          d.retry_after = config_.retry_after;
          ++shed_stale_total_;
          if (c_shed_ != nullptr) c_shed_->Inc();
        }
      }
    }
  }
  d.mode = mode_;
  if (d.admit) {
    ++used_;
    if (g_window_used_ != nullptr)
      g_window_used_->Set(static_cast<double>(used_));
  } else {
    ++throttled_total_;
    if (c_throttled_ != nullptr) c_throttled_->Inc();
  }
  return d;
}

void HealthMonitor::NoteStorageFailure(SimTime now) {
  RollWindow(now);
  ++failures_this_epoch_;
  ++storage_failures_total_;
  if (c_storage_failures_ != nullptr) c_storage_failures_->Inc();
}

bool HealthMonitor::ShouldReprime() const {
  return config_.reprime_after_failures > 0 &&
         failures_this_epoch_ >= config_.reprime_after_failures;
}

void HealthMonitor::NoteReprimed(SimTime now) {
  failures_this_epoch_ = 0;
  ++reprimes_total_;
  if (c_reprimes_ != nullptr) c_reprimes_->Inc();
  SetMode(ServerMode::kRecovering, now);
}

void HealthMonitor::NoteContact(std::uint64_t task, SimTime now) {
  last_contact_[task] = now;
}

std::size_t HealthMonitor::LiveTasks(SimTime now, SimDuration within) const {
  std::size_t live = 0;
  for (const auto& [task, seen] : last_contact_) {
    if (seen + within >= now) ++live;
  }
  return live;
}

}  // namespace sor::server

// SensingServer — the backend facade (§II-B, Fig. 5).
//
// Owns the database and every server-side component: Message Handler (the
// net::Endpoint implementation), User Info Manager, Application Manager,
// Participation Manager, Sensing Scheduler, Data Processor and the
// Personalizable Ranker entry point. One instance == one sensing server;
// multiple servers can coexist on the same LoopbackNetwork under different
// endpoint names (the paper allows "one or multiple sensing servers").
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/sim_time.hpp"
#include "db/database.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rank/personalizable_ranker.hpp"
#include "server/data_processor.hpp"
#include "server/health_monitor.hpp"
#include "server/managers.hpp"
#include "server/scheduler.hpp"

namespace sor {
class ShardedExecutor;
}

namespace sor::server {

struct ServerConfig {
  std::string endpoint_name = "server";
  // Δt and the per-window sample count distributed with every schedule
  // (§IV-A: "SOR takes multiple (instead of one) readings within [t, t+Δt]
  // to ensure high sensing quality").
  SimDuration sample_window = SimDuration{5'000};
  int samples_per_window = 5;

  // Overload control (docs/robustness.md). The default budget of 0 keeps
  // admission unlimited — existing runs keep their exact fingerprints.
  OverloadConfig overload;
};

struct ServerStats {
  std::uint64_t requests_handled = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t uploads_stored = 0;
  std::uint64_t participations_accepted = 0;
  std::uint64_t participations_rejected = 0;
  // Retried uploads whose (task, seq) was already stored: acknowledged
  // again, but neither re-inserted nor re-billed against the budget.
  std::uint64_t duplicate_uploads_ignored = 0;
  std::uint64_t recoveries = 0;        // successful RestoreFromSnapshot calls
  std::uint64_t resyncs_triggered = 0; // post-restart schedule re-pushes
  // Overload + storage-fault accounting (docs/robustness.md).
  std::uint64_t uploads_throttled = 0;      // admission refused, hint sent
  std::uint64_t uploads_shed_stale = 0;     // subset shed for being stale
  std::uint64_t storage_write_failures = 0; // raw_data insert failed
  std::uint64_t reprimes = 0;               // quarantine-and-reprime runs
};

class SensingServer final : public net::Endpoint {
 public:
  SensingServer(ServerConfig config, net::LoopbackNetwork& network,
                const SimClock& clock);
  ~SensingServer() override;

  SensingServer(const SensingServer&) = delete;
  SensingServer& operator=(const SensingServer&) = delete;

  [[nodiscard]] const std::string& endpoint_name() const {
    return config_.endpoint_name;
  }

  // --- component access --------------------------------------------------
  [[nodiscard]] db::Database& database() { return db_; }
  [[nodiscard]] UserInfoManager& users() { return users_; }
  [[nodiscard]] ApplicationManager& applications() { return apps_; }
  [[nodiscard]] ParticipationManager& participations() { return parts_; }
  [[nodiscard]] SensingScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] DataProcessor& data_processor() { return processor_; }
  [[nodiscard]] HealthMonitor& health() { return health_; }
  [[nodiscard]] const ServerStats& stats() const { return stats_; }

  // Swap the overload policy (serial code only; chaos drivers use this).
  void set_overload(const OverloadConfig& overload) {
    config_.overload = overload;
    health_.set_config(overload);
  }

  // --- high-level operations ----------------------------------------------
  // Deploys a new application and returns the barcode to place on site.
  Result<BarcodePayload> DeployApplication(const ApplicationSpec& spec);

  // Run the Data Processor over every application (the "periodic check").
  // With an executor attached, apps are processed in parallel: each app's
  // row set is disjoint and the table locks are shared for reads, so the
  // only cross-app state is the stats counters, which merge under a mutex.
  // Results (features, processed flags, returned total) are independent of
  // thread count.
  Result<int> ProcessAllData();

  // Borrow a worker pool for ProcessAllData / FlushReschedules. Not owned;
  // nullptr (the default) restores the serial path.
  void set_executor(ShardedExecutor* executor) { executor_ = executor; }

  // Hook the server (and its scheduler + data processor) into the shared
  // telemetry. The server's handler runs only inside the epoch merge pass
  // (or from serial code), so its "server.*"/"sched.*" counters are
  // single-cell and its trace stream stays single-writer. Call from serial
  // code; safe to call again after a Tracer::Clear() to re-register
  // streams.
  void AttachObservability(obs::MetricsRegistry* registry,
                           obs::Tracer* tracer);

  // Drain the scheduler's deferred dirty set: plan every dirty app (in
  // parallel when an executor is attached — planning is const), then
  // distribute serially in ascending app-id order so the schedule table
  // and the send stream are identical to planning serially.
  Status FlushReschedules();

  // Rank the places covered by `apps` for one user profile (Algorithm 2 on
  // the feature matrix assembled from the database).
  [[nodiscard]] Result<rank::RankingOutcome> RankPlaces(
      const std::vector<AppId>& apps,
      const std::vector<rank::FeatureSpec>& feature_specs,
      const rank::UserProfile& profile,
      rank::AggregationMethod method =
          rank::AggregationMethod::kFootruleMcmf) const;

  // Locate a phone through the cloud-messaging detour (§II-A): ping it and
  // return the reported position.
  [[nodiscard]] Result<PingReply> PingPhone(const Token& token);

  // --- crash recovery ------------------------------------------------------
  // Serialize the full database (the durable state: users, apps,
  // participations, raw uploads with their seqs, features, schedules) into
  // one restorable buffer — what the prototype got from PostgreSQL.
  [[nodiscard]] Bytes SnapshotState() const;

  // Rebuild this server from a snapshot, as a freshly started process would
  // after a crash: replaces the database wholesale, re-syncs every id
  // generator past the ids already issued, rebuilds the (task, seq) upload
  // dedup index from raw_data, and marks every active task as needing a
  // schedule re-push on its next contact (phones keep uploading against
  // their last known schedule; the first message from any of an app's
  // participants triggers one reschedule for that app).
  Status RestoreFromSnapshot(std::span<const std::uint8_t> snapshot);

  // Re-verify that the app's active participants are still at the target
  // place ("a mobile user's status ... will be changed to 'finished' if
  // according to his/her location, he/she leaves the target place",
  // §II-B): ping every active phone; mark participants outside the radius
  // finished and unreachable ones as errored, then re-plan once for the
  // remaining users. Returns the number of participants removed.
  Result<int> VerifyParticipants(AppId app);

  // --- net::Endpoint -------------------------------------------------------
  [[nodiscard]] Bytes HandleFrame(std::span<const std::uint8_t> frame) override;

 private:
  [[nodiscard]] Message HandleMessage(const Message& m);
  [[nodiscard]] Message OnParticipation(const ParticipationRequest& req);
  [[nodiscard]] Message OnUpload(const SensedDataUpload& upload);
  [[nodiscard]] Message OnLeave(const LeaveNotification& note);
  // First post-restart contact from a task whose app still needs a schedule
  // re-push: reschedule the app (which redistributes to all of its phones).
  void MaybeResyncAfterRestart(TaskId task);
  // Rebuild every derived process structure (id generators, upload dedup
  // index, processor watermarks) from the CURRENT database tables. The
  // shared tail of RestoreFromSnapshot and Reprime.
  void RebuildDerivedState();
  // Quarantine-and-reprime after storage write failures: suspect the
  // process state, not the rows — rebuild the derived structures in place
  // and enter kRecovering for the rest of the tick.
  void Reprime();
  // Emit on the server's trace stream (no-op when tracing is off).
  void Trace(obs::EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
             std::uint64_t c = 0);

  ServerConfig config_;
  net::LoopbackNetwork& network_;
  const SimClock& clock_;

  db::Database db_;
  UserInfoManager users_;
  ApplicationManager apps_;
  ParticipationManager parts_;
  SensingScheduler scheduler_;
  DataProcessor processor_;
  HealthMonitor health_;
  ShardedExecutor* executor_ = nullptr;  // not owned
  ServerStats stats_;
  IdGenerator<ScheduleId> raw_ids_;  // raw_data PK source

  // Shared-telemetry handles (null until AttachObservability). The registry
  // is kept so the database's counters can be re-attached after a restore
  // replaces db_ wholesale.
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::StreamId stream_ = 0;
  struct ServerCounters {
    obs::Counter* requests_handled = nullptr;
    obs::Counter* decode_failures = nullptr;
    obs::Counter* uploads_stored = nullptr;
    obs::Counter* uploads_deduped = nullptr;
    obs::Counter* participations_accepted = nullptr;
    obs::Counter* participations_rejected = nullptr;
    obs::Counter* recoveries = nullptr;
    obs::Counter* resyncs_triggered = nullptr;
    obs::Histogram* upload_batch_tuples = nullptr;  // tuples per stored blob
  };
  ServerCounters obs_;

  // Upload dedup index: task id → seqs already stored. Rebuilt from
  // raw_data on restore, so it survives crashes with the database.
  std::map<std::uint64_t, std::set<std::uint64_t>> seen_upload_seqs_;
  // Tasks whose phones have not been re-contacted since the last restore.
  std::set<TaskId> needs_resync_;
};

}  // namespace sor::server

#include "server/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"

namespace sor::server {

namespace {

// Durable schedule-row blob: the legacy prefix (varint count + svarint
// delta-encoded instant times, what the post-restart resync re-pushes) is
// followed by each pick's grid index and commit seq — the planner's commit
// log, which RebuildFromDb replays to reproduce the planning state.
std::vector<std::uint8_t> EncodeTaskRowBlob(
    const std::vector<sched::IncrementalPlanner::Pick>& picks,
    const std::vector<SimTime>& grid) {
  ByteWriter blob;
  blob.varint(picks.size());
  std::int64_t prev = 0;
  for (const sched::IncrementalPlanner::Pick& p : picks) {
    const SimTime t = grid[static_cast<std::size_t>(p.instant)];
    blob.svarint(t.ms - prev);
    prev = t.ms;
  }
  for (const sched::IncrementalPlanner::Pick& p : picks) {
    blob.varint(static_cast<std::uint64_t>(p.instant));
    blob.varint(p.seq);
  }
  return blob.take();
}

}  // namespace

Status SensingScheduler::RescheduleApp(const ApplicationRecord& app,
                                       ParticipationManager& participations,
                                       SimDuration sample_window,
                                       int samples_per_window) {
  if (deferred_) {
    // Batch mode: remember that this app needs a fresh plan; the owner
    // plans once per dirty app instead of once per join/leave event.
    dirty_.insert(app.id.value());
    return Status::Ok();
  }
  Result<SchedulePlan> plan = PlanApp(app, participations);
  if (!plan.ok()) return plan.error();
  return DistributePlan(app, plan.value(), participations, sample_window,
                        samples_per_window);
}

sched::PlacementAlgorithm SensingScheduler::placement_algorithm() const {
  switch (algorithm_) {
    case SchedulerAlgorithm::kGreedy:
      return sched::PlacementAlgorithm::kGreedy;
    case SchedulerAlgorithm::kLazyGreedy:
      return sched::PlacementAlgorithm::kLazyGreedy;
    case SchedulerAlgorithm::kPeriodic:
      return sched::PlacementAlgorithm::kPeriodic;
  }
  return sched::PlacementAlgorithm::kLazyGreedy;
}

void SensingScheduler::EnsurePlanState(const ApplicationRecord& app) {
  auto it = plan_states_.find(app.id.value());
  if (it != plan_states_.end()) return;
  sched::IncrementalPlanner::Options opts;
  opts.sigma_s = app.spec.sigma_s;
  opts.algorithm = placement_algorithm();
  opts.incremental = options_.incremental;
  PlanState st;
  st.planner = std::make_unique<sched::IncrementalPlanner>(
      MakeInstantGrid(app.spec.period, app.spec.n_instants), opts);
  plan_states_.emplace(app.id.value(), std::move(st));
}

void SensingScheduler::MarkTaskUnsent(const ApplicationRecord& app,
                                      TaskId task) {
  EnsurePlanState(app);
  plan_states_.at(app.id.value()).unsent.insert(task.value());
}

Result<SchedulePlan> SensingScheduler::PlanApp(
    const ApplicationRecord& app,
    const ParticipationManager& participations) {
  EnsurePlanState(app);
  PlanState& st = plan_states_.at(app.id.value());
  sched::IncrementalPlanner& planner = *st.planner;

  SchedulePlan plan;
  plan.grid = planner.grid();

  const std::vector<ParticipationRecord> active =
      participations.ActiveForApp(app.id);
  plan.active_count = active.size();
  const SimTime now = clock_.now();

  // Diff the active set against the planner's members: unknown active tasks
  // are joins, known members that are no longer active are leaves.
  std::set<std::uint64_t> active_tasks;
  std::map<std::uint64_t, const ParticipationRecord*> record_of;
  std::vector<sched::IncrementalPlanner::Join> joins;
  for (const ParticipationRecord& rec : active) {
    active_tasks.insert(rec.task.value());
    record_of.emplace(rec.task.value(), &rec);
    if (planner.HasMember(static_cast<std::int64_t>(rec.task.value())))
      continue;
    sched::IncrementalPlanner::Join j;
    j.member = static_cast<std::int64_t>(rec.task.value());
    SimTime begin = rec.arrive;
    if (online_aware_ && now > begin) begin = now;  // the past is gone
    j.window = SimInterval{begin, rec.leave.value_or(app.spec.period.end)}
                   .intersect(app.spec.period);
    j.budget = rec.budget_left;
    joins.push_back(j);
  }
  // ActiveForApp visits in insertion (≈ task-id) order; sort to make the
  // single greedy run's matroid ordering independent of index internals.
  std::sort(joins.begin(), joins.end(),
            [](const auto& a, const auto& b) { return a.member < b.member; });

  std::vector<sched::IncrementalPlanner::Leave> leaves;
  for (std::int64_t member : planner.Members()) {
    if (active_tasks.contains(static_cast<std::uint64_t>(member))) continue;
    sched::IncrementalPlanner::Leave l;
    l.member = member;
    l.cutoff = now;
    Result<ParticipationRecord> rec =
        participations.Get(TaskId{static_cast<std::uint64_t>(member)});
    if (rec.ok() && rec.value().leave.has_value())
      l.cutoff = *rec.value().leave;
    leaves.push_back(l);
  }

  // Tasks that stopped being active never get their pending re-send.
  std::erase_if(st.unsent, [&](std::uint64_t t) {
    return !active_tasks.contains(t);
  });

  if (leaves.empty() && joins.empty() && st.unsent.empty()) {
    plan.empty = true;
    return plan;
  }

  Result<sched::IncrementalPlanner::DeltaResult> delta =
      planner.ApplyDelta(leaves, joins);
  if (!delta.ok()) return delta.error();
  plan.objective_delta = delta.value().objective;
  plan.gain_evaluations = delta.value().gain_evaluations;
  plan.total_coverage = planner.total_coverage();
  for (auto& [member, picks] : delta.value().pruned) {
    plan.pruned.emplace_back(static_cast<std::uint64_t>(member),
                             std::move(picks));
  }

  // Every join needs its (first) schedule pushed; previously-failed or
  // rejoined tasks are already in `unsent`.
  for (const sched::IncrementalPlanner::Join& j : joins)
    st.unsent.insert(static_cast<std::uint64_t>(j.member));
  for (std::uint64_t task : st.unsent) {
    SchedulePlan::Dispatch d;
    d.rec = *record_of.at(task);
    d.picks = planner.PicksOf(static_cast<std::int64_t>(task));
    plan.dispatches.push_back(std::move(d));
  }

  if (plan.dispatches.empty() && plan.pruned.empty()) plan.empty = true;
  return plan;
}

void SensingScheduler::AttachObservability(obs::MetricsRegistry* registry,
                                           obs::Tracer* tracer,
                                           obs::StreamId stream) {
  tracer_ = tracer;
  stream_ = stream;
  if (registry == nullptr) {
    obs_ = SchedCounters{};
    return;
  }
  obs_.reschedules = &registry->counter("sched.reschedules");
  obs_.schedules_distributed =
      &registry->counter("sched.schedules_distributed");
  obs_.distribution_failures =
      &registry->counter("sched.distribution_failures");
  obs_.gain_evaluations = &registry->counter("sched.gain_evaluations");
  obs_.last_objective = &registry->gauge("sched.last_objective");
  obs_.last_average_coverage =
      &registry->gauge("sched.last_average_coverage");
}

void SensingScheduler::PersistTaskRow(
    PlanState& st, std::uint64_t task, std::uint64_t app,
    const std::vector<sched::IncrementalPlanner::Pick>& picks,
    const std::vector<SimTime>& grid) {
  db::Table* schedules = db_.table(db::tables::kSchedules);
  std::vector<std::uint8_t> blob = EncodeTaskRowBlob(picks, grid);
  if (auto it = st.row_of.find(task); it != st.row_of.end()) {
    // One row per task: later plans (a resync push, a leave prune) assign
    // the blob in place instead of appending a fresh row per replan.
    const std::pair<int, db::Value> cells[] = {
        {3, db::Value(std::move(blob))}, {4, db::Value(clock_.now().ms)}};
    (void)schedules->UpdateInPlace(db::Value(it->second), cells);
    return;
  }
  const std::uint64_t pk = schedule_ids_.next().value();
  Result<db::RowId> inserted = schedules->Insert(
      {db::Value(pk), db::Value(task), db::Value(app),
       db::Value(std::move(blob)), db::Value(clock_.now().ms)});
  // Under storage faults the insert may fail; leaving `row_of` unset means
  // the next persist retries with a fresh row.
  if (inserted.ok()) st.row_of.emplace(task, pk);
}

Status SensingScheduler::DistributePlan(const ApplicationRecord& app,
                                        const SchedulePlan& plan,
                                        ParticipationManager& participations,
                                        SimDuration sample_window,
                                        int samples_per_window) {
  if (plan.empty) return Status::Ok();
  PlanState& st = plan_states_.at(app.id.value());

  ++stats_.reschedules;
  stats_.last_objective = plan.objective_delta;
  stats_.last_average_coverage =
      plan.total_coverage / static_cast<double>(plan.grid.size());
  stats_.gain_evaluations += plan.gain_evaluations;
  if (obs_.reschedules != nullptr) {
    obs_.reschedules->Inc();
    obs_.gain_evaluations->Inc(plan.gain_evaluations);
    obs_.last_objective->Set(stats_.last_objective);
    obs_.last_average_coverage->Set(stats_.last_average_coverage);
  }
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (tracing) {
    // The planning milestone is emitted here, not from PlanApp: PlanApp may
    // run on a worker thread (FlushReschedules), while distribution is
    // always serial — so the event order is thread-count invariant.
    tracer_->Emit(stream_, clock_.now(), obs::EventKind::kSchedulePlanned,
                  app.id.value(), plan.active_count,
                  static_cast<std::uint64_t>(plan.objective_delta * 1000.0));
  }

  // Departed tasks first: shrink their durable rows to the executed picks,
  // so a restore replays exactly the coverage that is actually sunk.
  for (const auto& [task, picks] : plan.pruned) {
    PersistTaskRow(st, task, app.id.value(), picks, plan.grid);
    st.unsent.erase(task);
  }

  Status overall = Status::Ok();
  for (const SchedulePlan::Dispatch& d : plan.dispatches) {
    const ParticipationRecord& rec = d.rec;
    ScheduleDistribution msg;
    msg.task = rec.task;
    msg.app = app.id;
    msg.script = app.spec.script;
    msg.sample_window = sample_window;
    msg.samples_per_window = samples_per_window;
    msg.required_sensors = app.required_sensors;
    msg.flow_manifest = app.flow_manifest;
    for (const sched::IncrementalPlanner::Pick& p : d.picks)
      msg.instants.push_back(plan.grid[static_cast<std::size_t>(p.instant)]);

    // Persist the schedule before distribution (resync re-pushes the stored
    // row verbatim, so store-then-send keeps restart byte-identical).
    PersistTaskRow(st, rec.task.value(), app.id.value(), d.picks, plan.grid);
    if (tracing) {
      tracer_->Emit(stream_, clock_.now(),
                    obs::EventKind::kScheduleCommitted, rec.task.value(), 0,
                    app.id.value());
    }

    Result<Message> reply =
        network_.Send(origin_, "phone:" + rec.token.value, msg);
    if (reply.ok()) {
      ++stats_.schedules_distributed;
      if (obs_.schedules_distributed != nullptr)
        obs_.schedules_distributed->Inc();
      if (tracing) {
        tracer_->Emit(stream_, clock_.now(),
                      obs::EventKind::kScheduleDistributed, rec.task.value(),
                      msg.instants.size(), app.id.value());
      }
      st.unsent.erase(rec.task.value());
      (void)participations.MarkRunning(rec.task);
    } else {
      ++stats_.distribution_failures;
      if (obs_.distribution_failures != nullptr)
        obs_.distribution_failures->Inc();
      SOR_LOG(kWarn, "scheduler",
              "failed to distribute schedule for task "
                  << rec.task.str() << ": " << reply.error().str());
      // The transport unwraps a delivered ErrorReply into a local error, so
      // the phone's capability refusal arrives here as kUnsupported. That
      // code is permanent (the sensor will not appear), so mark the
      // participation errored; transient faults (kUnavailable partitions,
      // kTimeout drops) stay in `unsent` and retry at the app's next
      // reschedule — the same cadence the full redistribution gave them.
      if (reply.error().code == Errc::kUnsupported) {
        (void)participations.MarkError(rec.task, reply.error().message);
        st.unsent.erase(rec.task.value());
      }
      overall = Status(reply.error());
    }
  }
  return overall;
}

std::vector<std::uint64_t> SensingScheduler::TakeDirtyApps() {
  std::vector<std::uint64_t> out(dirty_.begin(), dirty_.end());
  dirty_.clear();
  return out;
}

void SensingScheduler::ResyncIds() {
  if (auto max = db_.table(db::tables::kSchedules)->MaxPrimaryKey())
    schedule_ids_.advance_past(static_cast<std::uint64_t>(max->as_int()));
}

void SensingScheduler::RebuildFromDb(
    const std::vector<ApplicationRecord>& apps,
    const ParticipationManager& participations) {
  plan_states_.clear();
  for (const ApplicationRecord& app : apps) {
    EnsurePlanState(app);
    PlanState& st = plan_states_.at(app.id.value());
    // Active tasks are members even before their row is replayed (a task
    // planned with zero picks still has a row, but be tolerant of a
    // pre-distribution crash leaving an active task rowless — it will be
    // re-planned as a join at the app's next reschedule).
    for (const ParticipationRecord& rec : participations.ActiveForApp(app.id))
      st.planner->RestoreMember(static_cast<std::int64_t>(rec.task.value()));
  }
  const db::Table* schedules = db_.table(db::tables::kSchedules);
  schedules->ForEach([&](const db::Row& row) {
    const auto app_id = static_cast<std::uint64_t>(row[2].as_int());
    auto it = plan_states_.find(app_id);
    if (it == plan_states_.end()) return true;
    PlanState& st = it->second;
    const auto task = static_cast<std::uint64_t>(row[1].as_int());
    ByteReader blob(row[3].as_blob());
    const std::uint64_t count = blob.varint();
    for (std::uint64_t i = 0; i < count && blob.ok(); ++i)
      (void)blob.svarint();  // legacy prefix: delta-encoded instant times
    for (std::uint64_t i = 0; i < count && blob.ok(); ++i) {
      const auto instant = static_cast<int>(blob.varint());
      const std::uint64_t seq = blob.varint();
      if (!blob.ok()) break;
      // Rows of finished tasks replay as ownerless sunk coverage: their
      // member is not registered, but their picks still shape q.
      st.planner->RestoreCommit(static_cast<std::int64_t>(task), instant,
                                seq);
    }
    st.row_of.emplace(task, static_cast<std::uint64_t>(row[0].as_int()));
    return true;
  });
  for (auto& [app_id, st] : plan_states_) st.planner->FinishRestore();
}

}  // namespace sor::server

#include "server/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/log.hpp"
#include "sched/baseline.hpp"
#include "server/coverage_report.hpp"

namespace sor::server {

std::vector<int> SensingScheduler::ExecutedInstants(
    const ApplicationRecord& app, const std::vector<SimTime>& grid) const {
  std::vector<int> executed;
  for (const auto& [task, instants] :
       ExecutedInstantsByTask(db_, app.id, grid)) {
    executed.insert(executed.end(), instants.begin(), instants.end());
  }
  return executed;
}

Status SensingScheduler::RescheduleApp(const ApplicationRecord& app,
                                       ParticipationManager& participations,
                                       SimDuration sample_window,
                                       int samples_per_window) {
  if (deferred_) {
    // Batch mode: remember that this app needs a fresh plan; the owner
    // plans once per dirty app instead of once per join/leave event.
    dirty_.insert(app.id.value());
    return Status::Ok();
  }
  Result<SchedulePlan> plan = PlanApp(app, participations);
  if (!plan.ok()) return plan.error();
  return DistributePlan(app, plan.value(), participations, sample_window,
                        samples_per_window);
}

Result<SchedulePlan> SensingScheduler::PlanApp(
    const ApplicationRecord& app,
    const ParticipationManager& participations) const {
  SchedulePlan plan;
  plan.active = participations.ActiveForApp(app.id);
  if (plan.active.empty()) {
    plan.empty = true;
    return plan;
  }

  // Build the §III problem instance: the app's instant grid plus one
  // presence window per active participant. A user with no recorded leave
  // time is assumed present until the period ends (online assumption; a
  // later leave triggers another reschedule).
  sched::Problem problem;
  problem.grid = MakeInstantGrid(app.spec.period, app.spec.n_instants);
  problem.sigma_s = app.spec.sigma_s;
  const SimTime now = clock_.now();
  for (const ParticipationRecord& rec : plan.active) {
    sched::UserWindow w;
    SimTime begin = rec.arrive;
    if (online_aware_ && now > begin) begin = now;  // the past is gone
    w.presence = SimInterval{begin, rec.leave.value_or(app.spec.period.end)}
                     .intersect(app.spec.period);
    if (w.presence.empty()) {
      // Window fully in the past: keep the user with an empty-but-valid
      // window so indices still line up with `active`.
      w.presence = SimInterval{app.spec.period.end, app.spec.period.end};
      w.budget = 0;
    } else {
      w.budget = rec.budget_left;
    }
    problem.users.push_back(w);
  }

  // Vacuous instance: nobody has both a live presence window and budget
  // left, so the optimizer cannot place a single measurement. Short-circuit
  // to the empty plan before the expensive steps (decoding the app's raw
  // blobs for executed instants, running the greedy, distributing
  // zero-instant schedules). This is the end-of-campaign shape — every
  // leave triggers a replan of a period that is already over — which made
  // teardown O(phones² · blobs) before the check.
  const bool plannable = std::any_of(
      problem.users.begin(), problem.users.end(),
      [](const sched::UserWindow& w) {
        return !w.presence.empty() && w.budget > 0;
      });
  if (!plannable) {
    plan.empty = true;
    return plan;
  }

  if (online_aware_) {
    problem.existing_measurements = ExecutedInstants(app, problem.grid);
  }

  Result<sched::ScheduleResult> scheduled = [&]() {
    switch (algorithm_) {
      case SchedulerAlgorithm::kGreedy:
        return sched::GreedySchedule(problem);
      case SchedulerAlgorithm::kLazyGreedy:
        return sched::LazyGreedySchedule(problem);
      case SchedulerAlgorithm::kPeriodic:
        return sched::PeriodicBaselineSchedule(problem);
    }
    return Result<sched::ScheduleResult>(
        Error{Errc::kInvalidArgument, "unknown algorithm"});
  }();
  if (!scheduled.ok()) return scheduled.error();

  plan.grid = std::move(problem.grid);
  plan.result = std::move(scheduled.value());
  return plan;
}

void SensingScheduler::AttachObservability(obs::MetricsRegistry* registry,
                                           obs::Tracer* tracer,
                                           obs::StreamId stream) {
  tracer_ = tracer;
  stream_ = stream;
  if (registry == nullptr) {
    obs_ = SchedCounters{};
    return;
  }
  obs_.reschedules = &registry->counter("sched.reschedules");
  obs_.schedules_distributed =
      &registry->counter("sched.schedules_distributed");
  obs_.distribution_failures =
      &registry->counter("sched.distribution_failures");
  obs_.last_objective = &registry->gauge("sched.last_objective");
  obs_.last_average_coverage =
      &registry->gauge("sched.last_average_coverage");
}

Status SensingScheduler::DistributePlan(const ApplicationRecord& app,
                                        const SchedulePlan& plan,
                                        ParticipationManager& participations,
                                        SimDuration sample_window,
                                        int samples_per_window) {
  if (plan.empty) return Status::Ok();

  ++stats_.reschedules;
  stats_.last_objective = plan.result.objective;
  stats_.last_average_coverage =
      plan.result.objective / static_cast<double>(app.spec.n_instants);
  if (obs_.reschedules != nullptr) {
    obs_.reschedules->Inc();
    obs_.last_objective->Set(stats_.last_objective);
    obs_.last_average_coverage->Set(stats_.last_average_coverage);
  }
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  if (tracing) {
    // The planning milestone is emitted here, not from PlanApp: PlanApp may
    // run on a worker thread (FlushReschedules), while distribution is
    // always serial — so the event order is thread-count invariant.
    tracer_->Emit(stream_, clock_.now(), obs::EventKind::kSchedulePlanned,
                  app.id.value(), plan.active.size(),
                  static_cast<std::uint64_t>(plan.result.objective * 1000.0));
  }

  db::Table* schedules = db_.table(db::tables::kSchedules);
  Status overall = Status::Ok();
  for (std::size_t k = 0; k < plan.active.size(); ++k) {
    const ParticipationRecord& rec = plan.active[k];
    ScheduleDistribution msg;
    msg.task = rec.task;
    msg.app = app.id;
    msg.script = app.spec.script;
    msg.sample_window = sample_window;
    msg.samples_per_window = samples_per_window;
    msg.required_sensors = app.required_sensors;
    msg.flow_manifest = app.flow_manifest;
    for (int idx : plan.result.schedule.per_user[k])
      msg.instants.push_back(plan.grid[static_cast<std::size_t>(idx)]);

    // Persist the schedule (delta-encoded instants) before distribution.
    ByteWriter blob;
    blob.varint(msg.instants.size());
    std::int64_t prev = 0;
    for (SimTime t : msg.instants) {
      blob.svarint(t.ms - prev);
      prev = t.ms;
    }
    (void)schedules->Insert({db::Value(schedule_ids_.next().value()),
                             db::Value(rec.task.value()),
                             db::Value(app.id.value()), db::Value(blob.take()),
                             db::Value(clock_.now().ms)});
    if (tracing) {
      tracer_->Emit(stream_, clock_.now(),
                    obs::EventKind::kScheduleCommitted, rec.task.value(), 0,
                    app.id.value());
    }

    Result<Message> reply =
        network_.Send(origin_, "phone:" + rec.token.value, msg);
    if (reply.ok()) {
      ++stats_.schedules_distributed;
      if (obs_.schedules_distributed != nullptr)
        obs_.schedules_distributed->Inc();
      if (tracing) {
        tracer_->Emit(stream_, clock_.now(),
                      obs::EventKind::kScheduleDistributed, rec.task.value(),
                      msg.instants.size(), app.id.value());
      }
      (void)participations.MarkRunning(rec.task);
    } else {
      ++stats_.distribution_failures;
      if (obs_.distribution_failures != nullptr)
        obs_.distribution_failures->Inc();
      SOR_LOG(kWarn, "scheduler",
              "failed to distribute schedule for task "
                  << rec.task.str() << ": " << reply.error().str());
      // The transport unwraps a delivered ErrorReply into a local error, so
      // the phone's capability refusal arrives here as kUnsupported. That
      // code is permanent (the sensor will not appear), so mark the
      // participation errored; transient faults (kUnavailable partitions,
      // kTimeout drops) leave the task waiting for the next reschedule.
      if (reply.error().code == Errc::kUnsupported)
        (void)participations.MarkError(rec.task, reply.error().message);
      overall = Status(reply.error());
    }
  }
  return overall;
}

std::vector<std::uint64_t> SensingScheduler::TakeDirtyApps() {
  std::vector<std::uint64_t> out(dirty_.begin(), dirty_.end());
  dirty_.clear();
  return out;
}

void SensingScheduler::ResyncIds() {
  if (auto max = db_.table(db::tables::kSchedules)->MaxPrimaryKey())
    schedule_ids_.advance_past(static_cast<std::uint64_t>(max->as_int()));
}

}  // namespace sor::server

// Data Processor (§II-B / §IV-A).
//
// "The Data Processor periodically checks if there are any binary sensed
// data in the database, and if any, it decodes the data and stores useful
// information into corresponding tables ... it also processes raw data to
// generate more meaningful data for various sensing features (temperature,
// humidity, roughness of road surface, etc), which will then be stored into
// the database to serve as input for the Personalizable Ranker."
//
// ProcessApp() runs one of two equivalent paths (docs/performance.md):
//   * incremental (default) — persistent per-app accumulators
//     (AppAccumulatorState) are fed only the blobs past the app's raw_id
//     cursor, so a pass costs O(new uploads) instead of O(total history);
//   * full recompute (options.incremental = false) — decode every blob of
//     the app and extract from scratch. Kept as the test oracle: both paths
//     must produce bit-identical feature rows and trace events.
// BuildFeatureMatrix() assembles the ranker's H matrix from the feature
// rows across the applications of one category.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "db/database.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rank/personalizable_ranker.hpp"
#include "server/feature_accumulator.hpp"
#include "server/managers.hpp"

namespace sor::server {

struct DataProcessorStats {
  std::uint64_t blobs_decoded = 0;
  std::uint64_t blobs_rejected = 0;  // malformed bodies (decode failures)
  std::uint64_t tuples_processed = 0;
  std::uint64_t features_written = 0;
  // Periodic checks that found nothing new for an app and skipped it (the
  // per-app stored/processed watermarks make this an O(1) probe).
  std::uint64_t apps_skipped = 0;

  DataProcessorStats& operator+=(const DataProcessorStats& o) {
    blobs_decoded += o.blobs_decoded;
    blobs_rejected += o.blobs_rejected;
    tuples_processed += o.tuples_processed;
    features_written += o.features_written;
    apps_skipped += o.apps_skipped;
    return *this;
  }
};

struct DataProcessorOptions {
  // Robust extraction for mean-type features: readings whose modified
  // z-score exceeds the threshold are excluded, so one phone with a
  // broken or miscalibrated sensor cannot drag a place's feature value.
  bool reject_outliers = true;
  double outlier_z_threshold = 6.0;
  // Streaming accumulators (the production path). false switches to the
  // decode-everything recompute, the oracle the equivalence tests compare
  // against. Appended last so positional initializers stay valid.
  bool incremental = true;
};

class DataProcessor {
 public:
  explicit DataProcessor(db::Database& database,
                         DataProcessorOptions options = {})
      : db_(database), options_(options) {}

  [[nodiscard]] const DataProcessorOptions& options() const {
    return options_;
  }
  void set_options(const DataProcessorOptions& o) { options_ = o; }

  // Decode + process the raw data of `app`; write feature_data rows.
  // Returns the number of feature values written. When the per-app
  // watermarks show nothing new and the app's features are already in the
  // database, the call is a cheap no-op. Safe to run concurrently for
  // *different* apps: row sets and accumulator states are disjoint per
  // app, and each call's stats accumulate into `sink` — a caller-owned,
  // per-app cell — instead of a shared total, so concurrent calls never
  // contend. The caller folds the sinks back in app order via MergeStats()
  // after its barrier (Server::ProcessAllData does); a null sink (the
  // serial/standalone case) accumulates straight into stats().
  Result<int> ProcessApp(const ApplicationRecord& app, SimTime now,
                         DataProcessorStats* sink = nullptr);

  // Fold one ProcessApp call's sink into the aggregate stats(). Driver
  // thread only, after all concurrent ProcessApp calls completed.
  void MergeStats(const DataProcessorStats& sink) { stats_ += sink; }

  // Upload-store-time hook: the server calls this when a raw row for `app`
  // is inserted, advancing the app's stored watermark so ProcessApp can
  // detect new work without probing the raw table at all.
  void NoteUploadStored(AppId app, std::int64_t raw_id);

  // Rebuild one app's watermarks after a snapshot restore (the server scans
  // the restored raw table once and reports the high-water marks).
  void RestoreProgress(AppId app, std::int64_t stored_max,
                       std::int64_t processed_max);

  // Drop all in-memory watermarks and cached accumulator states. Called on
  // snapshot restore, before RestoreProgress repopulates; persisted
  // accumulator state reloads lazily from the processor_state table.
  void ResetRuntimeState();

  // Fetch one computed feature value (for tests/visualization).
  [[nodiscard]] Result<double> FeatureValue(AppId app,
                                            const std::string& feature) const;

  // Assemble H for the given applications (same category, identical
  // feature lists). Row order follows `apps`; column order follows
  // `feature_specs`.
  [[nodiscard]] Result<rank::FeatureMatrix> BuildFeatureMatrix(
      const std::vector<ApplicationRecord>& apps,
      const std::vector<rank::FeatureSpec>& feature_specs) const;

  [[nodiscard]] const DataProcessorStats& stats() const { return stats_; }

  // Hook into the shared telemetry: "processor.*" counters are per-thread
  // sharded (ProcessApp runs concurrently across apps); trace events land
  // on one stream per app. Those streams MUST be pre-registered serially
  // (StreamNameForApp) before any parallel ProcessApp — the server facade
  // does this in ProcessAllData — so stream ids are thread-count invariant.
  void AttachObservability(obs::MetricsRegistry* registry,
                           obs::Tracer* tracer);
  [[nodiscard]] static std::string StreamNameForApp(AppId app) {
    return "processor:app:" + std::to_string(app.value());
  }

 private:
  // Stored vs processed raw_id high-water marks of one app. stored advances
  // at upload time (NoteUploadStored), processed after a ProcessApp pass;
  // stored > processed means there is new work.
  struct AppProgress {
    std::int64_t stored = 0;
    std::int64_t processed = 0;
  };

  Result<int> ProcessAppIncremental(const ApplicationRecord& app, SimTime now,
                                    db::Table* raw, db::Table* features,
                                    obs::StreamId stream, bool tracing,
                                    DataProcessorStats* sink);
  Result<int> ProcessAppFull(const ApplicationRecord& app, SimTime now,
                             db::Table* raw, db::Table* features,
                             obs::StreamId stream, bool tracing,
                             DataProcessorStats* sink);

  // Fetch the app's cached accumulator state, loading it from the
  // processor_state table (or creating it fresh) on first touch.
  AppAccumulatorState* GetOrLoadState(AppId app, std::size_t n_features);

  // Add one ProcessApp call's local stats to the registry counters.
  void FlushCounters(const DataProcessorStats& local);
  // Settle one call's local stats: registry counters (per-thread sharded),
  // then the caller's sink — or, with no sink, the aggregate directly (the
  // serial case; concurrent callers must pass a sink).
  void Accumulate(const DataProcessorStats& local, DataProcessorStats* sink);

  db::Database& db_;
  DataProcessorOptions options_;
  DataProcessorStats stats_;  // aggregate; written by serial contexts only

  // Guards progress_ and the acc_ *map* (each mapped state is only touched
  // by the one ProcessApp call owning that app).
  std::mutex state_mu_;
  std::map<std::uint64_t, AppProgress> progress_;
  std::map<std::uint64_t, std::unique_ptr<AppAccumulatorState>> acc_;

  // Shared-telemetry handles (null until AttachObservability).
  obs::Tracer* tracer_ = nullptr;
  struct ProcessorCounters {
    obs::Counter* blobs_decoded = nullptr;
    obs::Counter* blobs_rejected = nullptr;
    obs::Counter* tuples_processed = nullptr;
    obs::Counter* features_written = nullptr;
    obs::Counter* apps_skipped = nullptr;
  };
  ProcessorCounters obs_;
};

}  // namespace sor::server

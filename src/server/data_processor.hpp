// Data Processor (§II-B / §IV-A).
//
// "The Data Processor periodically checks if there are any binary sensed
// data in the database, and if any, it decodes the data and stores useful
// information into corresponding tables ... it also processes raw data to
// generate more meaningful data for various sensing features (temperature,
// humidity, roughness of road surface, etc), which will then be stored into
// the database to serve as input for the Personalizable Ranker."
//
// ProcessApp() decodes every raw upload blob of an application, runs the
// app's FeatureDef extraction methods, and upserts one feature_data row per
// feature. BuildFeatureMatrix() assembles the ranker's H matrix from those
// rows across the applications of one category.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "db/database.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rank/personalizable_ranker.hpp"
#include "server/managers.hpp"

namespace sor::server {

struct DataProcessorStats {
  std::uint64_t blobs_decoded = 0;
  std::uint64_t blobs_rejected = 0;  // malformed bodies (decode failures)
  std::uint64_t tuples_processed = 0;
  std::uint64_t features_written = 0;
  // Periodic checks that found nothing new for an app and skipped it (the
  // processed-column index makes this O(unprocessed), not O(all blobs)).
  std::uint64_t apps_skipped = 0;

  DataProcessorStats& operator+=(const DataProcessorStats& o) {
    blobs_decoded += o.blobs_decoded;
    blobs_rejected += o.blobs_rejected;
    tuples_processed += o.tuples_processed;
    features_written += o.features_written;
    apps_skipped += o.apps_skipped;
    return *this;
  }
};

struct DataProcessorOptions {
  // Robust extraction for mean-type features: readings whose modified
  // z-score exceeds the threshold are excluded, so one phone with a
  // broken or miscalibrated sensor cannot drag a place's feature value.
  bool reject_outliers = true;
  double outlier_z_threshold = 6.0;
};

class DataProcessor {
 public:
  explicit DataProcessor(db::Database& database,
                         DataProcessorOptions options = {})
      : db_(database), options_(options) {}

  [[nodiscard]] const DataProcessorOptions& options() const {
    return options_;
  }
  void set_options(const DataProcessorOptions& o) { options_ = o; }

  // Decode + process the raw data of `app`; write feature_data rows.
  // Returns the number of feature values written. Incremental: when the
  // processed-column index shows nothing new for the app and its features
  // are already in the database, the call is a cheap no-op. Safe to run
  // concurrently for *different* apps (stats merge under a mutex; row sets
  // are disjoint per app).
  Result<int> ProcessApp(const ApplicationRecord& app, SimTime now);

  // Fetch one computed feature value (for tests/visualization).
  [[nodiscard]] Result<double> FeatureValue(AppId app,
                                            const std::string& feature) const;

  // Assemble H for the given applications (same category, identical
  // feature lists). Row order follows `apps`; column order follows
  // `feature_specs`.
  [[nodiscard]] Result<rank::FeatureMatrix> BuildFeatureMatrix(
      const std::vector<ApplicationRecord>& apps,
      const std::vector<rank::FeatureSpec>& feature_specs) const;

  [[nodiscard]] const DataProcessorStats& stats() const { return stats_; }

  // Hook into the shared telemetry: "processor.*" counters are per-thread
  // sharded (ProcessApp runs concurrently across apps); trace events land
  // on one stream per app. Those streams MUST be pre-registered serially
  // (StreamNameForApp) before any parallel ProcessApp — the server facade
  // does this in ProcessAllData — so stream ids are thread-count invariant.
  void AttachObservability(obs::MetricsRegistry* registry,
                           obs::Tracer* tracer);
  [[nodiscard]] static std::string StreamNameForApp(AppId app) {
    return "processor:app:" + std::to_string(app.value());
  }

 private:
  // Add one ProcessApp call's local stats to the registry counters.
  void FlushCounters(const DataProcessorStats& local);

  db::Database& db_;
  DataProcessorOptions options_;
  DataProcessorStats stats_;
  std::mutex stats_mu_;  // guards stats_ during parallel ProcessApp calls

  // Shared-telemetry handles (null until AttachObservability).
  obs::Tracer* tracer_ = nullptr;
  struct ProcessorCounters {
    obs::Counter* blobs_decoded = nullptr;
    obs::Counter* blobs_rejected = nullptr;
    obs::Counter* tuples_processed = nullptr;
    obs::Counter* features_written = nullptr;
    obs::Counter* apps_skipped = nullptr;
  };
  ProcessorCounters obs_;
};

}  // namespace sor::server

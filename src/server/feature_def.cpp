#include "server/feature_def.hpp"

#include <sstream>

#include "common/features.hpp"

namespace sor::server {

const char* to_string(ExtractMethod m) {
  switch (m) {
    case ExtractMethod::kMeanOfAll: return "mean";
    case ExtractMethod::kMeanOfWindowStddev: return "window_stddev_mean";
    case ExtractMethod::kStddevOfWindowMeans: return "window_mean_stddev";
    case ExtractMethod::kGpsCurvature: return "gps_curvature";
  }
  return "?";
}

Result<ExtractMethod> ExtractMethodFromString(const std::string& s) {
  if (s == "mean") return ExtractMethod::kMeanOfAll;
  if (s == "window_stddev_mean") return ExtractMethod::kMeanOfWindowStddev;
  if (s == "window_mean_stddev") return ExtractMethod::kStddevOfWindowMeans;
  if (s == "gps_curvature") return ExtractMethod::kGpsCurvature;
  return Error{Errc::kDecodeError, "unknown extract method '" + s + "'"};
}

std::string EncodeFeatureDefs(const std::vector<FeatureDef>& defs) {
  std::string out;
  for (const FeatureDef& d : defs) {
    if (!out.empty()) out += ';';
    out += d.name;
    out += ':';
    out += to_string(d.sensor);
    out += ':';
    out += to_string(d.method);
  }
  return out;
}

Result<std::vector<FeatureDef>> DecodeFeatureDefs(const std::string& encoded) {
  std::vector<FeatureDef> defs;
  std::istringstream stream(encoded);
  std::string entry;
  while (std::getline(stream, entry, ';')) {
    if (entry.empty()) continue;
    const std::size_t c1 = entry.find(':');
    const std::size_t c2 = entry.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos)
      return Error{Errc::kDecodeError, "malformed feature def '" + entry + "'"};
    FeatureDef d;
    d.name = entry.substr(0, c1);
    const std::string sensor = entry.substr(c1 + 1, c2 - c1 - 1);
    const auto kind = SensorKindFromString(sensor);
    if (!kind.has_value())
      return Error{Errc::kDecodeError, "unknown sensor '" + sensor + "'"};
    d.sensor = *kind;
    Result<ExtractMethod> method =
        ExtractMethodFromString(entry.substr(c2 + 1));
    if (!method.ok()) return method.error();
    d.method = method.value();
    defs.push_back(std::move(d));
  }
  if (defs.empty())
    return Error{Errc::kDecodeError, "no feature definitions"};
  return defs;
}

std::vector<FeatureDef> HikingTrailFeatures() {
  return {
      {features::kTemperature, SensorKind::kDroneTemperature,
       ExtractMethod::kMeanOfAll},
      {features::kHumidity, SensorKind::kDroneHumidity,
       ExtractMethod::kMeanOfAll},
      {features::kRoughness, SensorKind::kAccelerometer,
       ExtractMethod::kMeanOfWindowStddev},
      {features::kCurvature, SensorKind::kGps, ExtractMethod::kGpsCurvature},
      {features::kAltitudeChange, SensorKind::kBarometer,
       ExtractMethod::kStddevOfWindowMeans},
  };
}

std::vector<FeatureDef> CoffeeShopFeatures() {
  return {
      {features::kTemperature, SensorKind::kDroneTemperature,
       ExtractMethod::kMeanOfAll},
      {features::kBrightness, SensorKind::kDroneLight,
       ExtractMethod::kMeanOfAll},
      {features::kNoise, SensorKind::kMicrophone, ExtractMethod::kMeanOfAll},
      {features::kWifi, SensorKind::kWifi, ExtractMethod::kMeanOfAll},
  };
}

}  // namespace sor::server

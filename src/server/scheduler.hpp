// SensingScheduler (§II-B): bridges the Participation Manager's runtime
// state to the scheduling algorithm of §III, then distributes the computed
// schedules (with the app's SenseScript) to the participating phones and
// stores them in the database.
//
// "For each application, the Sensing Scheduler applies an online algorithm
// to calculate a sensing schedule ... based on runtime participation
// information (such as current participating users, their sensing budgets)
// ... The Sensing Scheduler will also distribute the calculated schedules
// along with the corresponding Lua scripts to participating mobile phones,
// and store them into the database."
//
// Incremental replanning (docs/performance.md): the scheduler keeps one
// IncrementalPlanner per app ALIVE across reschedules. A reschedule diffs
// the active participation set against the planner's member set — users
// seen for the first time are joins (placed against the residual coverage
// in one warm-started greedy run), members no longer active are leaves
// (their unexecuted picks die, their durable schedule row is pruned to the
// executed prefix). Since placed picks never move, only the CHANGED tasks
// are re-sent: a join pushes O(1) schedules instead of O(fleet), and the
// schedules table holds one row per task instead of one per (task, replan).
// `SchedulerOptions::incremental = false` keeps the cold-replan oracle:
// every delta rebuilds the planner's derived state from its durable commit
// log — identical picks and identical distribution by construction.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "db/database.hpp"
#include "net/transport.hpp"
#include "sched/incremental.hpp"
#include "server/managers.hpp"

namespace sor::server {

enum class SchedulerAlgorithm {
  kGreedy,       // Algorithm 1 (incremental-gain implementation)
  kLazyGreedy,   // Minoux variant — same picks, fewer evaluations (default)
  kPeriodic,     // §V-C baseline, for head-to-head system experiments
};

struct SchedulerOptions {
  // false = cold-replan oracle: rebuild all derived planning state from the
  // commit log on every reschedule. Bit-identical plans, O(fleet) work.
  bool incremental = true;
};

struct SchedulerStats {
  std::uint64_t reschedules = 0;
  std::uint64_t schedules_distributed = 0;
  std::uint64_t distribution_failures = 0;
  std::uint64_t gain_evaluations = 0;  // marginal-gain probes, all replans
  double last_objective = 0.0;         // coverage ADDED by the last delta
  double last_average_coverage = 0.0;  // total locked-in coverage / instants
};

// The output of one reschedule delta for one app: everything the
// distribution stage needs, with no references into scheduler state. Plans
// for different apps can be computed concurrently (their planner states are
// disjoint; the owner creates them serially via EnsurePlanState first).
struct SchedulePlan {
  struct Dispatch {
    ParticipationRecord rec;
    // The task's full current plan (instant index + commit seq, ascending
    // by instant) — new joins and tasks marked unsent get this pushed.
    std::vector<sched::IncrementalPlanner::Pick> picks;
  };
  std::vector<Dispatch> dispatches;  // ascending task id
  // Departed tasks whose durable schedule row shrinks to the picks that
  // were executed before the leave. Nothing is sent — the phone is gone.
  std::vector<std::pair<std::uint64_t, std::vector<sched::IncrementalPlanner::Pick>>>
      pruned;
  std::vector<SimTime> grid;
  std::size_t active_count = 0;
  double objective_delta = 0.0;   // coverage added by this delta's joins
  double total_coverage = 0.0;    // Σ(1 − q) after the delta
  std::uint64_t gain_evaluations = 0;
  bool empty = false;  // no membership change and nothing unsent
};

class SensingScheduler {
 public:
  // `origin` names the sending endpoint so per-link fault rules and
  // transport stats can attribute schedule distributions to this server.
  SensingScheduler(db::Database& database, net::LoopbackNetwork& network,
                   const SimClock& clock, std::string origin = "server")
      : db_(database), network_(network), clock_(clock),
        origin_(std::move(origin)) {}

  // Algorithm/options are latched into an app's planner when its state is
  // first created — set them before the campaign starts.
  void set_algorithm(SchedulerAlgorithm a) { algorithm_ = a; }
  [[nodiscard]] SchedulerAlgorithm algorithm() const { return algorithm_; }
  void set_options(const SchedulerOptions& o) { options_ = o; }
  [[nodiscard]] const SchedulerOptions& options() const { return options_; }

  // Online-aware re-planning (default on): a join's presence window is
  // clipped to the future, so its budget is spent where coverage is still
  // missing. Off reproduces the naive full-period window (ablation).
  void set_online_aware(bool v) { online_aware_ = v; }
  [[nodiscard]] bool online_aware() const { return online_aware_; }

  // Recompute the app's schedule delta from current participation state and
  // push schedules to the CHANGED participants. Called whenever a user
  // joins or leaves (the "online" behaviour). In deferred mode the app is
  // only marked dirty; the owner later drains TakeDirtyApps() and runs
  // Plan/Distribute itself (see Server::FlushReschedules).
  Status RescheduleApp(const ApplicationRecord& app,
                       ParticipationManager& participations,
                       SimDuration sample_window, int samples_per_window);

  // Create the app's planner state if absent. Must run serially (it
  // mutates the state map); FlushReschedules calls it for every dirty app
  // before fanning PlanApp out to worker threads.
  void EnsurePlanState(const ApplicationRecord& app);

  // Stage 1: diff participation against the planner's members and apply
  // the delta. Safe to call concurrently for DIFFERENT apps once their
  // states exist — it only touches this app's planner plus shared database
  // reads.
  [[nodiscard]] Result<SchedulePlan> PlanApp(
      const ApplicationRecord& app,
      const ParticipationManager& participations);

  // Stage 2 (serial): persist the changed schedules, push them to the
  // phones, update stats. Must run on one thread at a time; callers flush
  // plans in ascending app-id order to keep the send stream deterministic.
  // In a running campaign this executes inside the epoch merge pass (a
  // join/leave delivered by the merge triggers the reschedule) or between
  // ticks — either way the phones are idle, so the synchronous push into
  // each phone is always admitted.
  Status DistributePlan(const ApplicationRecord& app, const SchedulePlan& plan,
                        ParticipationManager& participations,
                        SimDuration sample_window, int samples_per_window);

  // Force a re-send of `task`'s current plan at the next reschedule even if
  // its picks did not change — a crashed-and-restarted phone that rejoins
  // via a new scan holds no schedule anymore.
  void MarkTaskUnsent(const ApplicationRecord& app, TaskId task);

  // Deferred mode: RescheduleApp only records the app id. Used to batch the
  // O(joins) reschedule storm during field-test setup into one plan per app.
  void set_deferred(bool v) { deferred_ = v; }
  [[nodiscard]] bool deferred() const { return deferred_; }
  // Drain the dirty set (ascending app id).
  [[nodiscard]] std::vector<std::uint64_t> TakeDirtyApps();

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }

  // Hook into the shared telemetry: "sched.*" counters/gauges plus plan/
  // commit/distribute events on the owning server's stream. DistributePlan
  // is the only emitting path and it always runs serially, so single-cell
  // counters and one shared stream are safe and deterministic.
  void AttachObservability(obs::MetricsRegistry* registry, obs::Tracer* tracer,
                           obs::StreamId stream);

  // After a snapshot restore, skip schedule ids already in the table.
  void ResyncIds();

  // Snapshot restore: rebuild every app's planner from the schedules table
  // (the durable commit log — each row holds a task's surviving picks with
  // their seqs) and the active participation set. Replaying the rows in seq
  // order reproduces bitwise the planner state the snapshotted process held.
  void RebuildFromDb(const std::vector<ApplicationRecord>& apps,
                     const ParticipationManager& participations);

 private:
  // Per-app persistent planning state.
  struct PlanState {
    std::unique_ptr<sched::IncrementalPlanner> planner;
    std::set<std::uint64_t> unsent;  // tasks whose plan must be (re)pushed
    std::map<std::uint64_t, std::uint64_t> row_of;  // task → schedules row pk
  };

  [[nodiscard]] sched::PlacementAlgorithm placement_algorithm() const;
  void PersistTaskRow(PlanState& st, std::uint64_t task, std::uint64_t app,
                      const std::vector<sched::IncrementalPlanner::Pick>& picks,
                      const std::vector<SimTime>& grid);

  db::Database& db_;
  net::LoopbackNetwork& network_;
  const SimClock& clock_;
  std::string origin_;

  SchedulerAlgorithm algorithm_ = SchedulerAlgorithm::kLazyGreedy;
  SchedulerOptions options_;
  bool online_aware_ = true;
  bool deferred_ = false;
  std::set<std::uint64_t> dirty_;  // apps awaiting a deferred reschedule
  std::map<std::uint64_t, PlanState> plan_states_;
  SchedulerStats stats_;
  IdGenerator<ScheduleId> schedule_ids_;

  // Shared-telemetry handles (null until AttachObservability).
  obs::Tracer* tracer_ = nullptr;
  obs::StreamId stream_ = 0;
  struct SchedCounters {
    obs::Counter* reschedules = nullptr;
    obs::Counter* schedules_distributed = nullptr;
    obs::Counter* distribution_failures = nullptr;
    obs::Counter* gain_evaluations = nullptr;
    obs::Gauge* last_objective = nullptr;
    obs::Gauge* last_average_coverage = nullptr;
  };
  SchedCounters obs_;
};

}  // namespace sor::server

// SensingScheduler (§II-B): bridges the Participation Manager's runtime
// state to the scheduling algorithm of §III, then distributes the computed
// schedules (with the app's SenseScript) to the participating phones and
// stores them in the database.
//
// "For each application, the Sensing Scheduler applies an online algorithm
// to calculate a sensing schedule ... based on runtime participation
// information (such as current participating users, their sensing budgets)
// ... The Sensing Scheduler will also distribute the calculated schedules
// along with the corresponding Lua scripts to participating mobile phones,
// and store them into the database."
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "db/database.hpp"
#include "net/transport.hpp"
#include "sched/greedy.hpp"
#include "server/managers.hpp"

namespace sor::server {

enum class SchedulerAlgorithm {
  kGreedy,       // Algorithm 1 (incremental-gain implementation)
  kLazyGreedy,   // Minoux variant — same objective, fewer evaluations
  kPeriodic,     // §V-C baseline, for head-to-head system experiments
};

struct SchedulerStats {
  std::uint64_t reschedules = 0;
  std::uint64_t schedules_distributed = 0;
  std::uint64_t distribution_failures = 0;
  double last_objective = 0.0;
  double last_average_coverage = 0.0;
};

// The pure output of the §III optimization for one app: everything the
// distribution stage needs, with no references into scheduler state. Plans
// for different apps can be computed concurrently (PlanApp is const and
// only reads the database).
struct SchedulePlan {
  std::vector<ParticipationRecord> active;  // row k ↔ result.per_user[k]
  std::vector<SimTime> grid;
  sched::ScheduleResult result;
  bool empty = false;  // no active participants: nothing to distribute
};

class SensingScheduler {
 public:
  // `origin` names the sending endpoint so per-link fault rules and
  // transport stats can attribute schedule distributions to this server.
  SensingScheduler(db::Database& database, net::LoopbackNetwork& network,
                   const SimClock& clock, std::string origin = "server")
      : db_(database), network_(network), clock_(clock),
        origin_(std::move(origin)) {}

  void set_algorithm(SchedulerAlgorithm a) { algorithm_ = a; }
  [[nodiscard]] SchedulerAlgorithm algorithm() const { return algorithm_; }

  // Online-aware re-planning (default on): a mid-period reschedule only
  // places measurements at future instants, and seeds the coverage state
  // with the measurements already uploaded for this app — so budget is
  // spent where coverage is still missing, not on re-covering the past.
  // Turning it off reproduces the naive full-period recompute (ablation).
  void set_online_aware(bool v) { online_aware_ = v; }
  [[nodiscard]] bool online_aware() const { return online_aware_; }

  // Recompute the app's schedule from current participation state and push
  // a ScheduleDistribution to every active participant. Called whenever a
  // user joins or leaves (the "online" behaviour). In deferred mode the
  // app is only marked dirty; the owner later drains TakeDirtyApps() and
  // runs Plan/Distribute itself (see Server::FlushReschedules).
  Status RescheduleApp(const ApplicationRecord& app,
                       ParticipationManager& participations,
                       SimDuration sample_window, int samples_per_window);

  // Stage 1 (thread-safe, const): build the §III problem from current
  // participation state and solve it. Safe to call concurrently for
  // different apps — it only takes shared database reads.
  [[nodiscard]] Result<SchedulePlan> PlanApp(
      const ApplicationRecord& app,
      const ParticipationManager& participations) const;

  // Stage 2 (serial): persist the plan's schedules, push them to the
  // phones, update stats. Must run on one thread at a time; callers flush
  // plans in ascending app-id order to keep the send stream deterministic.
  // In a running campaign this executes inside the epoch merge pass (a
  // join/leave delivered by the merge triggers the reschedule) or between
  // ticks — either way the phones are idle, so the synchronous push into
  // each phone is always admitted.
  Status DistributePlan(const ApplicationRecord& app, const SchedulePlan& plan,
                        ParticipationManager& participations,
                        SimDuration sample_window, int samples_per_window);

  // Deferred mode: RescheduleApp only records the app id. Used to batch the
  // O(joins) reschedule storm during field-test setup into one plan per app.
  void set_deferred(bool v) { deferred_ = v; }
  [[nodiscard]] bool deferred() const { return deferred_; }
  // Drain the dirty set (ascending app id).
  [[nodiscard]] std::vector<std::uint64_t> TakeDirtyApps();

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }

  // Hook into the shared telemetry: "sched.*" counters/gauges plus plan/
  // commit/distribute events on the owning server's stream. DistributePlan
  // is the only emitting path and it always runs serially, so single-cell
  // counters and one shared stream are safe and deterministic.
  void AttachObservability(obs::MetricsRegistry* registry, obs::Tracer* tracer,
                           obs::StreamId stream);

  // After a snapshot restore, skip schedule ids already in the table.
  void ResyncIds();

 private:
  db::Database& db_;
  net::LoopbackNetwork& network_;
  const SimClock& clock_;
  std::string origin_;
  // Grid indices of measurements already uploaded for an app.
  [[nodiscard]] std::vector<int> ExecutedInstants(
      const ApplicationRecord& app,
      const std::vector<SimTime>& grid) const;

  SchedulerAlgorithm algorithm_ = SchedulerAlgorithm::kGreedy;
  bool online_aware_ = true;
  bool deferred_ = false;
  std::set<std::uint64_t> dirty_;  // apps awaiting a deferred reschedule
  SchedulerStats stats_;
  IdGenerator<ScheduleId> schedule_ids_;

  // Shared-telemetry handles (null until AttachObservability).
  obs::Tracer* tracer_ = nullptr;
  obs::StreamId stream_ = 0;
  struct SchedCounters {
    obs::Counter* reschedules = nullptr;
    obs::Counter* schedules_distributed = nullptr;
    obs::Counter* distribution_failures = nullptr;
    obs::Gauge* last_objective = nullptr;
    obs::Gauge* last_average_coverage = nullptr;
  };
  SchedCounters obs_;
};

}  // namespace sor::server

// Coverage reporting: what sensing actually happened for an application.
//
// The scheduler plans coverage; this module measures it, straight from the
// raw uploads in the database — per-task executed instants, the combined
// average coverage probability achieved so far, and an ASCII timeline
// (the operator's view of "is my place being sensed enough?").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "db/database.hpp"
#include "server/managers.hpp"

namespace sor::server {

// Grid indices of the measurements each task actually uploaded (snapped
// to the nearest instant; one entry per distinct tuple time).
[[nodiscard]] std::map<TaskId, std::vector<int>> ExecutedInstantsByTask(
    const db::Database& db, AppId app, const std::vector<SimTime>& grid);

struct CoverageReport {
  int executed_measurements = 0;
  double average_coverage = 0.0;  // Eq. 1 over executed, / N
  std::string timeline;           // per-participant rows + coverage footer
};

[[nodiscard]] Result<CoverageReport> ReportCoverage(
    const db::Database& db, const ApplicationRecord& app,
    const ParticipationManager& participations);

}  // namespace sor::server

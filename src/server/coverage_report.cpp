#include "server/coverage_report.hpp"

#include <algorithm>
#include <limits>

#include "sched/coverage.hpp"
#include "sched/timeline.hpp"

namespace sor::server {

std::map<TaskId, std::vector<int>> ExecutedInstantsByTask(
    const db::Database& db, AppId app, const std::vector<SimTime>& grid) {
  std::map<TaskId, std::vector<int>> executed;
  const db::Table* raw = db.table(db::tables::kRawData);
  if (raw == nullptr || grid.empty()) return executed;
  // Visitor (not FindWhereEq) so the blob bodies decode in place without
  // copying every row; this runs on the scheduler's plan path, possibly
  // from several planner threads at once (shared table lock).
  raw->ForEachWhereEq(
      "app_id", db::Value(app.value()), [&](const db::Row& row) {
    Result<Message> decoded =
        DecodeBody(MessageType::kSensedDataUpload, row[3].as_blob());
    if (!decoded.ok()) return true;
    const auto& upload = std::get<SensedDataUpload>(decoded.value());
    auto& instants = executed[upload.task];
    std::int64_t prev_ms = std::numeric_limits<std::int64_t>::min();
    for (const ReadingTuple& t : upload.batches) {
      if (t.t.ms == prev_ms) continue;  // one measurement per tuple time
      prev_ms = t.t.ms;
      const auto it = std::lower_bound(grid.begin(), grid.end(), t.t);
      int idx = static_cast<int>(it - grid.begin());
      if (idx > 0 &&
          (idx == static_cast<int>(grid.size()) ||
           (grid[static_cast<std::size_t>(idx)] - t.t).ms >
               (t.t - grid[static_cast<std::size_t>(idx - 1)]).ms)) {
        --idx;
      }
      if (idx >= 0 && idx < static_cast<int>(grid.size()))
        instants.push_back(idx);
    }
    return true;
  });
  return executed;
}

Result<CoverageReport> ReportCoverage(
    const db::Database& db, const ApplicationRecord& app,
    const ParticipationManager& participations) {
  sched::Problem problem;
  problem.grid = MakeInstantGrid(app.spec.period, app.spec.n_instants);
  problem.sigma_s = app.spec.sigma_s;

  const std::vector<ParticipationRecord> all =
      participations.AllForApp(app.id);
  const std::map<TaskId, std::vector<int>> executed =
      ExecutedInstantsByTask(db, app.id, problem.grid);

  sched::Schedule schedule = sched::Schedule::Empty(
      static_cast<int>(all.size()));
  CoverageReport report;
  for (std::size_t k = 0; k < all.size(); ++k) {
    const ParticipationRecord& rec = all[k];
    problem.users.push_back(sched::UserWindow{
        SimInterval{rec.arrive, rec.leave.value_or(app.spec.period.end)}
            .intersect(app.spec.period),
        rec.budget});
    if (auto it = executed.find(rec.task); it != executed.end()) {
      schedule.per_user[k] = it->second;
      std::sort(schedule.per_user[k].begin(), schedule.per_user[k].end());
      report.executed_measurements +=
          static_cast<int>(it->second.size());
    }
  }

  const sched::CoverageEvaluator eval(problem);
  report.average_coverage = eval.AverageCoverage(schedule);
  report.timeline = RenderScheduleTimeline(problem, schedule);
  return report;
}

}  // namespace sor::server

#include "server/data_processor.hpp"

#include <algorithm>
#include <map>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace sor::server {

namespace {

using db::Row;
using db::Table;
using db::Value;

// raw_data column positions (MakeSorSchema).
constexpr int kRawIdCol = 0;
constexpr int kRawBodyCol = 3;
constexpr int kRawProcessedCol = 5;

// Decoded raw data of one application, grouped for feature extraction
// (the full-recompute oracle path).
struct AppRawData {
  // Per sensor kind: every tuple uploaded for this app.
  std::map<SensorKind, std::vector<ReadingTuple>> by_kind;
  // GPS fixes grouped per task (each task is one phone walking the trail;
  // curvature must be computed along one phone's track, not a shuffle of
  // all phones).
  std::map<std::uint64_t, std::vector<ReadingTuple>> gps_by_task;
};

double ExtractFeature(const FeatureDef& def, const AppRawData& data,
                      const DataProcessorOptions& options,
                      std::size_t* n_samples) {
  *n_samples = 0;
  const auto it = data.by_kind.find(def.sensor);
  switch (def.method) {
    case ExtractMethod::kMeanOfAll: {
      if (it == data.by_kind.end()) return 0.0;
      std::vector<double> all;
      for (const ReadingTuple& t : it->second)
        all.insert(all.end(), t.values.begin(), t.values.end());
      *n_samples = all.size();
      if (options.reject_outliers)
        return RobustMean(all, options.outlier_z_threshold);
      return Mean(all);
    }
    case ExtractMethod::kMeanOfWindowStddev: {
      // §V-A: "an average of the standard deviations of all accelerometer's
      // readings within Δt".
      if (it == data.by_kind.end()) return 0.0;
      RunningStats outer;
      for (const ReadingTuple& t : it->second) {
        if (t.values.size() < 2) continue;
        outer.add(StdDev(t.values));
        *n_samples += t.values.size();
      }
      return outer.mean();
    }
    case ExtractMethod::kStddevOfWindowMeans: {
      // §V-A: "the standard deviation of averages of all altitude sensor
      // readings within Δt".
      if (it == data.by_kind.end()) return 0.0;
      RunningStats outer;
      for (const ReadingTuple& t : it->second) {
        if (t.values.empty()) continue;
        outer.add(Mean(t.values));
        *n_samples += t.values.size();
      }
      return outer.stddev();
    }
    case ExtractMethod::kGpsCurvature:
      // §V-A: method of [17]; the shared implementation is also the
      // incremental finalize, so the two paths are arithmetically one.
      return GpsCurvatureOfTracks(data.gps_by_task, n_samples);
  }
  return 0.0;
}

}  // namespace

void DataProcessor::AttachObservability(obs::MetricsRegistry* registry,
                                        obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    obs_ = ProcessorCounters{};
    return;
  }
  const auto per_thread = obs::Sharding::kPerThread;
  obs_.blobs_decoded =
      &registry->counter("processor.blobs_decoded", per_thread);
  obs_.blobs_rejected =
      &registry->counter("processor.blobs_rejected", per_thread);
  obs_.tuples_processed =
      &registry->counter("processor.tuples_processed", per_thread);
  obs_.features_written =
      &registry->counter("processor.features_written", per_thread);
  obs_.apps_skipped = &registry->counter("processor.apps_skipped", per_thread);
}

void DataProcessor::NoteUploadStored(AppId app, std::int64_t raw_id) {
  std::lock_guard lock(state_mu_);
  AppProgress& p = progress_[app.value()];
  p.stored = std::max(p.stored, raw_id);
}

void DataProcessor::RestoreProgress(AppId app, std::int64_t stored_max,
                                    std::int64_t processed_max) {
  std::lock_guard lock(state_mu_);
  AppProgress& p = progress_[app.value()];
  p.stored = stored_max;
  p.processed = processed_max;
}

void DataProcessor::ResetRuntimeState() {
  std::lock_guard lock(state_mu_);
  progress_.clear();
  acc_.clear();
}

AppAccumulatorState* DataProcessor::GetOrLoadState(AppId app,
                                                   std::size_t n_features) {
  std::lock_guard lock(state_mu_);
  auto it = acc_.find(app.value());
  if (it != acc_.end()) return it->second.get();

  auto state = std::make_unique<AppAccumulatorState>();
  if (const Table* persisted = db_.table(db::tables::kProcessorState)) {
    const std::int64_t app_key = static_cast<std::int64_t>(app.value());
    if (std::optional<Row> row = persisted->FindByKey(Value(app_key))) {
      Result<AppAccumulatorState> decoded =
          AppAccumulatorState::Decode((*row)[2].as_blob(), n_features);
      if (decoded.ok()) {
        *state = std::move(decoded).value();
      } else {
        // A stale/mismatched snapshot blob: fall back to an empty state with
        // cursor 0, which re-ingests the full history exactly once.
        SOR_LOG(kWarn, "processor",
                "discarding persisted state for app "
                    << app.value() << ": " << decoded.error().str());
      }
    }
  }
  AppAccumulatorState* ptr = state.get();
  acc_.emplace(app.value(), std::move(state));
  return ptr;
}

Result<int> DataProcessor::ProcessApp(const ApplicationRecord& app,
                                      SimTime now,
                                      DataProcessorStats* sink) {
  Table* raw = db_.table(db::tables::kRawData);
  Table* features = db_.table(db::tables::kFeatureData);
  if (!raw || !features)
    return Error{Errc::kInternal, "raw/feature tables missing"};

  // "Periodically checks if there are any binary sensed data" (§II-B):
  // compare the app's stored/processed watermarks — an O(1) probe that
  // never touches the raw table. If nothing new arrived since the last
  // pass AND the app's features are already in the database, the whole
  // pass is a no-op.
  bool has_unprocessed = false;
  {
    std::lock_guard lock(state_mu_);
    if (auto it = progress_.find(app.id.value()); it != progress_.end())
      has_unprocessed = it->second.stored > it->second.processed;
  }
  if (!has_unprocessed) {
    bool features_exist = false;
    features->ForEachWhereEq("app_id", Value(app.id.value()),
                             [&](const Row&) {
                               features_exist = true;
                               return false;
                             });
    if (features_exist) {
      DataProcessorStats local;
      ++local.apps_skipped;
      Accumulate(local, sink);
      return 0;
    }
    // No uploads yet but no features either: fall through and write the
    // zero-valued feature rows the ranker's matrix assembly expects.
  }

  // This app's stream was pre-registered serially (ProcessAllData), so the
  // find-by-name here is deterministic even on a worker thread.
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  const obs::StreamId stream =
      tracing ? tracer_->RegisterStream(StreamNameForApp(app.id)) : 0;

  return options_.incremental
             ? ProcessAppIncremental(app, now, raw, features, stream, tracing,
                                     sink)
             : ProcessAppFull(app, now, raw, features, stream, tracing, sink);
}

Result<int> DataProcessor::ProcessAppIncremental(const ApplicationRecord& app,
                                                 SimTime now, Table* raw,
                                                 Table* features,
                                                 obs::StreamId stream,
                                                 bool tracing,
                                                 DataProcessorStats* sink) {
  const std::vector<FeatureDef>& defs = app.spec.features;
  AppAccumulatorState* state = GetOrLoadState(app.id, defs.size());

  // Fold in only the blobs past the cursor, in raw_id (arrival) order —
  // the same order the full recompute decodes them, so order-dependent
  // accumulators (Welford) match it bit-for-bit. Stats accumulate locally
  // and settle once at the end (into the caller's per-app sink when
  // running concurrently) so per-app calls never contend.
  DataProcessorStats local;
  std::vector<std::int64_t> new_ids;
  raw->ForEachWhereEqFromPk(
      "app_id", Value(app.id.value()), Value(state->cursor),
      [&](const Row& row) {
        new_ids.push_back(row[kRawIdCol].as_int());
        const db::Blob& body = row[kRawBodyCol].as_blob();
        Result<Message> decoded =
            DecodeBody(MessageType::kSensedDataUpload, body);
        if (!decoded.ok()) {
          ++local.blobs_rejected;
          SOR_LOG(kWarn, "processor",
                  "rejecting malformed upload blob: "
                      << decoded.error().str());
          return true;
        }
        ++local.blobs_decoded;
        const auto& upload = std::get<SensedDataUpload>(decoded.value());
        if (tracing) {
          tracer_->Emit(stream, now, obs::EventKind::kBlobProcessed,
                        upload.task.value(), upload.seq, app.id.value());
        }
        for (const ReadingTuple& t : upload.batches) {
          ++local.tuples_processed;
          state->Ingest(defs, upload.task.value(), t);
        }
        return true;
      });
  if (!new_ids.empty()) state->cursor = new_ids.back();

  int written = 0;
  for (std::size_t j = 0; j < defs.size(); ++j) {
    std::size_t n_samples = 0;
    const double value =
        state->Finalize(j, defs[j], options_.reject_outliers,
                        options_.outlier_z_threshold, &n_samples);
    // Deterministic key per (app, feature): recomputation upserts.
    const std::uint64_t feature_id = app.id.value() * 1000 + j + 1;
    Result<db::RowId> r = features->Upsert(
        {Value(feature_id), Value(app.id.value()),
         Value(app.spec.place.value()), Value(defs[j].name), Value(value),
         Value(static_cast<std::int64_t>(n_samples)), Value(now.ms)});
    if (!r.ok()) {
      Accumulate(local, sink);
      return r.error();
    }
    ++local.features_written;
    ++written;
  }

  // Flag the consumed raw rows as processed — point in-place flips, no row
  // copies, no re-indexing — and persist the accumulator state so a crash
  // (or snapshot/restore) resumes from the cursor instead of re-ingesting.
  for (std::int64_t raw_id : new_ids)
    (void)raw->UpdateInPlace(Value(raw_id), kRawProcessedCol, Value(true));
  if (!new_ids.empty()) {
    if (Table* persisted = db_.table(db::tables::kProcessorState)) {
      const std::int64_t app_key = static_cast<std::int64_t>(app.id.value());
      (void)persisted->Upsert(
          {Value(app_key), Value(state->cursor), Value(state->Encode())});
    }
  }

  {
    std::lock_guard lock(state_mu_);
    AppProgress& p = progress_[app.id.value()];
    p.processed = std::max(p.processed, state->cursor);
  }

  if (tracing) {
    tracer_->Emit(stream, now, obs::EventKind::kAppProcessed, app.id.value(),
                  static_cast<std::uint64_t>(written));
  }
  Accumulate(local, sink);
  return written;
}

Result<int> DataProcessor::ProcessAppFull(const ApplicationRecord& app,
                                          SimTime now, Table* raw,
                                          Table* features,
                                          obs::StreamId stream, bool tracing,
                                          DataProcessorStats* sink) {
  // Decode every upload body for this app (the stored bodies are the exact
  // binary message payloads as received, §II-B).
  DataProcessorStats local;
  AppRawData data;
  std::int64_t max_raw_id = 0;
  raw->ForEachWhereEq("app_id", Value(app.id.value()), [&](const Row& row) {
    max_raw_id = std::max(max_raw_id, row[kRawIdCol].as_int());
    const db::Blob& body = row[kRawBodyCol].as_blob();
    Result<Message> decoded = DecodeBody(MessageType::kSensedDataUpload, body);
    if (!decoded.ok()) {
      ++local.blobs_rejected;
      SOR_LOG(kWarn, "processor",
              "rejecting malformed upload blob: " << decoded.error().str());
      return true;
    }
    ++local.blobs_decoded;
    const auto& upload = std::get<SensedDataUpload>(decoded.value());
    if (tracing) {
      tracer_->Emit(stream, now, obs::EventKind::kBlobProcessed,
                    upload.task.value(), upload.seq, app.id.value());
    }
    for (const ReadingTuple& t : upload.batches) {
      ++local.tuples_processed;
      data.by_kind[t.kind].push_back(t);
      if (t.kind == SensorKind::kGps && !t.locations.empty())
        data.gps_by_task[upload.task.value()].push_back(t);
    }
    return true;
  });

  int written = 0;
  for (std::size_t j = 0; j < app.spec.features.size(); ++j) {
    const FeatureDef& def = app.spec.features[j];
    std::size_t n_samples = 0;
    const double value = ExtractFeature(def, data, options_, &n_samples);
    // Deterministic key per (app, feature): recomputation upserts.
    const std::uint64_t feature_id = app.id.value() * 1000 + j + 1;
    Result<db::RowId> r = features->Upsert(
        {Value(feature_id), Value(app.id.value()),
         Value(app.spec.place.value()), Value(def.name), Value(value),
         Value(static_cast<std::int64_t>(n_samples)), Value(now.ms)});
    if (!r.ok()) {
      Accumulate(local, sink);
      return r.error();
    }
    ++local.features_written;
    ++written;
  }

  // Flag the consumed raw rows as processed — candidates via the app_id
  // index rather than a full-table walk.
  (void)raw->UpdateWhereEq(
      "app_id", Value(app.id.value()),
      [](const Row& row) { return !row[kRawProcessedCol].as_bool(); },
      [](Row& row) { row[kRawProcessedCol] = Value(true); });

  // The full path invalidates any incremental state: drop the cached
  // accumulators and the persisted blob so a later incremental pass
  // re-primes from cursor 0 (re-ingesting the history exactly once)
  // instead of resuming from a cursor behind the processed watermark.
  {
    std::lock_guard lock(state_mu_);
    AppProgress& p = progress_[app.id.value()];
    p.processed = std::max(p.processed, max_raw_id);
    acc_.erase(app.id.value());
  }
  if (Table* persisted = db_.table(db::tables::kProcessorState)) {
    const std::int64_t app_key = static_cast<std::int64_t>(app.id.value());
    (void)persisted->EraseByKey(Value(app_key));
  }

  if (tracing) {
    tracer_->Emit(stream, now, obs::EventKind::kAppProcessed, app.id.value(),
                  static_cast<std::uint64_t>(written));
  }
  Accumulate(local, sink);
  return written;
}

void DataProcessor::Accumulate(const DataProcessorStats& local,
                               DataProcessorStats* sink) {
  FlushCounters(local);
  if (sink != nullptr) {
    *sink += local;  // caller-owned cell; folded in later via MergeStats
  } else {
    stats_ += local;  // serial context: no other writer exists
  }
}

void DataProcessor::FlushCounters(const DataProcessorStats& local) {
  if (obs_.blobs_decoded == nullptr) return;
  if (local.blobs_decoded > 0) obs_.blobs_decoded->Inc(local.blobs_decoded);
  if (local.blobs_rejected > 0) obs_.blobs_rejected->Inc(local.blobs_rejected);
  if (local.tuples_processed > 0)
    obs_.tuples_processed->Inc(local.tuples_processed);
  if (local.features_written > 0)
    obs_.features_written->Inc(local.features_written);
  if (local.apps_skipped > 0) obs_.apps_skipped->Inc(local.apps_skipped);
}

Result<double> DataProcessor::FeatureValue(AppId app,
                                           const std::string& feature) const {
  const Table* features = db_.table(db::tables::kFeatureData);
  Result<double> out = Error{
      Errc::kNotFound, "no feature '" + feature + "' for app " + app.str()};
  features->ForEachWhereEq("app_id", Value(app.value()), [&](const Row& row) {
    if (row[3].as_text() != feature) return true;
    out = row[4].as_double();
    return false;
  });
  return out;
}

Result<rank::FeatureMatrix> DataProcessor::BuildFeatureMatrix(
    const std::vector<ApplicationRecord>& apps,
    const std::vector<rank::FeatureSpec>& feature_specs) const {
  if (apps.empty())
    return Error{Errc::kInvalidArgument, "no applications"};
  std::vector<std::string> names;
  names.reserve(apps.size());
  for (const ApplicationRecord& a : apps) names.push_back(a.spec.place_name);

  rank::FeatureMatrix m(std::move(names), feature_specs);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    for (std::size_t j = 0; j < feature_specs.size(); ++j) {
      Result<double> v = FeatureValue(apps[i].id, feature_specs[j].name);
      if (!v.ok()) return v.error();
      m.set(static_cast<int>(i), static_cast<int>(j), v.value());
    }
  }
  return m;
}

}  // namespace sor::server

#include "server/data_processor.hpp"

#include <algorithm>
#include <map>

#include "common/log.hpp"
#include "common/stats.hpp"

namespace sor::server {

namespace {

using db::Row;
using db::Table;
using db::Value;

// Decoded raw data of one application, grouped for feature extraction.
struct AppRawData {
  // Per sensor kind: every tuple uploaded for this app.
  std::map<SensorKind, std::vector<ReadingTuple>> by_kind;
  // GPS fixes grouped per task (each task is one phone walking the trail;
  // curvature must be computed along one phone's track, not a shuffle of
  // all phones).
  std::map<std::uint64_t, std::vector<ReadingTuple>> gps_by_task;
};

double ExtractFeature(const FeatureDef& def, const AppRawData& data,
                      const DataProcessorOptions& options,
                      std::size_t* n_samples) {
  *n_samples = 0;
  const auto it = data.by_kind.find(def.sensor);
  switch (def.method) {
    case ExtractMethod::kMeanOfAll: {
      if (it == data.by_kind.end()) return 0.0;
      std::vector<double> all;
      for (const ReadingTuple& t : it->second)
        all.insert(all.end(), t.values.begin(), t.values.end());
      *n_samples = all.size();
      if (options.reject_outliers)
        return RobustMean(all, options.outlier_z_threshold);
      return Mean(all);
    }
    case ExtractMethod::kMeanOfWindowStddev: {
      // §V-A: "an average of the standard deviations of all accelerometer's
      // readings within Δt".
      if (it == data.by_kind.end()) return 0.0;
      RunningStats outer;
      for (const ReadingTuple& t : it->second) {
        if (t.values.size() < 2) continue;
        outer.add(StdDev(t.values));
        *n_samples += t.values.size();
      }
      return outer.mean();
    }
    case ExtractMethod::kStddevOfWindowMeans: {
      // §V-A: "the standard deviation of averages of all altitude sensor
      // readings within Δt".
      if (it == data.by_kind.end()) return 0.0;
      RunningStats outer;
      for (const ReadingTuple& t : it->second) {
        if (t.values.empty()) continue;
        outer.add(Mean(t.values));
        *n_samples += t.values.size();
      }
      return outer.stddev();
    }
    case ExtractMethod::kGpsCurvature: {
      // §V-A: "calculated based on GPS locations using the method presented
      // in [17]" — polyline turn density along each phone's track, averaged
      // across phones; reported in mrad/m. Fixes within a tuple carry no
      // individual timestamps on the wire, but they are evenly spread over
      // [t, t+Δt], so their times are reconstructed, the whole track is
      // sorted, lightly smoothed (3-point moving average) against GPS
      // noise, and near-stationary segments are dropped.
      RunningStats per_track;
      for (const auto& [task, tuples] : data.gps_by_task) {
        std::vector<std::pair<std::int64_t, GeoPoint>> timed;
        for (const ReadingTuple& t : tuples) {
          const std::size_t n = t.locations.size();
          for (std::size_t i = 0; i < n; ++i) {
            const std::int64_t offset =
                n > 1 ? t.dt.ms * static_cast<std::int64_t>(i) /
                            static_cast<std::int64_t>(n - 1)
                      : 0;
            timed.emplace_back(t.t.ms + offset, t.locations[i]);
          }
        }
        std::stable_sort(timed.begin(), timed.end(),
                         [](const auto& a, const auto& b) {
                           return a.first < b.first;
                         });
        std::vector<GeoPoint> fixes;
        fixes.reserve(timed.size());
        for (const auto& [ms, p] : timed) fixes.push_back(p);
        if (fixes.size() < 5) continue;

        // 3-point moving-average smoothing.
        std::vector<GeoPoint> smooth(fixes.size());
        smooth.front() = fixes.front();
        smooth.back() = fixes.back();
        for (std::size_t i = 1; i + 1 < fixes.size(); ++i) {
          smooth[i].lat_deg = (fixes[i - 1].lat_deg + fixes[i].lat_deg +
                               fixes[i + 1].lat_deg) / 3.0;
          smooth[i].lon_deg = (fixes[i - 1].lon_deg + fixes[i].lon_deg +
                               fixes[i + 1].lon_deg) / 3.0;
          smooth[i].alt_m = (fixes[i - 1].alt_m + fixes[i].alt_m +
                             fixes[i + 1].alt_m) / 3.0;
        }

        RunningStats curv;
        for (std::size_t i = 1; i + 1 < smooth.size(); ++i) {
          // Skip near-stationary vertices: angle is undefined noise there.
          if (HaversineMeters(smooth[i - 1], smooth[i]) < 5.0 ||
              HaversineMeters(smooth[i], smooth[i + 1]) < 5.0)
            continue;
          curv.add(PolylineCurvature(smooth[i - 1], smooth[i],
                                     smooth[i + 1]));
        }
        if (curv.count() == 0) continue;
        *n_samples += fixes.size();
        per_track.add(curv.mean() * 1000.0);
      }
      return per_track.mean();
    }
  }
  return 0.0;
}

}  // namespace

void DataProcessor::AttachObservability(obs::MetricsRegistry* registry,
                                        obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    obs_ = ProcessorCounters{};
    return;
  }
  const auto per_thread = obs::Sharding::kPerThread;
  obs_.blobs_decoded =
      &registry->counter("processor.blobs_decoded", per_thread);
  obs_.blobs_rejected =
      &registry->counter("processor.blobs_rejected", per_thread);
  obs_.tuples_processed =
      &registry->counter("processor.tuples_processed", per_thread);
  obs_.features_written =
      &registry->counter("processor.features_written", per_thread);
  obs_.apps_skipped = &registry->counter("processor.apps_skipped", per_thread);
}

Result<int> DataProcessor::ProcessApp(const ApplicationRecord& app,
                                      SimTime now) {
  Table* raw = db_.table(db::tables::kRawData);
  Table* features = db_.table(db::tables::kFeatureData);
  if (!raw || !features)
    return Error{Errc::kInternal, "raw/feature tables missing"};

  const std::int64_t app_key = static_cast<std::int64_t>(app.id.value());

  // "Periodically checks if there are any binary sensed data" (§II-B):
  // consult the processed-column index instead of walking every blob. If
  // nothing new arrived since the last pass AND the app's features are
  // already in the database, the whole pass is a no-op. (Features are
  // aggregates over the app's *full* history, so any new blob forces a
  // recompute over all of its rows, not just the new ones.)
  bool has_unprocessed = false;
  raw->ForEachWhereEq("processed", Value(false), [&](const Row& r) {
    if (r[2].as_int() == app_key) {
      has_unprocessed = true;
      return false;  // stop: one hit is enough
    }
    return true;
  });
  if (!has_unprocessed) {
    bool features_exist = false;
    features->ForEachWhereEq("app_id", Value(app.id.value()),
                             [&](const Row&) {
                               features_exist = true;
                               return false;
                             });
    if (features_exist) {
      if (obs_.apps_skipped != nullptr) obs_.apps_skipped->Inc();
      std::lock_guard lock(stats_mu_);
      ++stats_.apps_skipped;
      return 0;
    }
    // No uploads yet but no features either: fall through and write the
    // zero-valued feature rows the ranker's matrix assembly expects.
  }

  // Decode every upload body for this app (the stored bodies are the exact
  // binary message payloads as received, §II-B). Stats accumulate locally
  // and merge once at the end so concurrent per-app calls never contend.
  DataProcessorStats local;
  AppRawData data;
  // This app's stream was pre-registered serially (ProcessAllData), so the
  // find-by-name here is deterministic even on a worker thread.
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  const obs::StreamId stream =
      tracing ? tracer_->RegisterStream(StreamNameForApp(app.id)) : 0;
  raw->ForEachWhereEq("app_id", Value(app.id.value()), [&](const Row& row) {
    const db::Blob& body = row[3].as_blob();
    Result<Message> decoded = DecodeBody(MessageType::kSensedDataUpload, body);
    if (!decoded.ok()) {
      ++local.blobs_rejected;
      SOR_LOG(kWarn, "processor",
              "rejecting malformed upload blob: " << decoded.error().str());
      return true;
    }
    ++local.blobs_decoded;
    const auto& upload = std::get<SensedDataUpload>(decoded.value());
    if (tracing) {
      tracer_->Emit(stream, now, obs::EventKind::kBlobProcessed,
                    upload.task.value(), upload.seq, app.id.value());
    }
    for (const ReadingTuple& t : upload.batches) {
      ++local.tuples_processed;
      data.by_kind[t.kind].push_back(t);
      if (t.kind == SensorKind::kGps && !t.locations.empty())
        data.gps_by_task[upload.task.value()].push_back(t);
    }
    return true;
  });

  // Sort GPS tuples per task by time so curvature follows the walk order.
  for (auto& [task, tuples] : data.gps_by_task) {
    std::stable_sort(tuples.begin(), tuples.end(),
                     [](const ReadingTuple& a, const ReadingTuple& b) {
                       return a.t < b.t;
                     });
  }

  int written = 0;
  for (std::size_t j = 0; j < app.spec.features.size(); ++j) {
    const FeatureDef& def = app.spec.features[j];
    std::size_t n_samples = 0;
    const double value = ExtractFeature(def, data, options_, &n_samples);
    // Deterministic key per (app, feature): recomputation upserts.
    const std::uint64_t feature_id = app.id.value() * 1000 + j + 1;
    Result<db::RowId> r = features->Upsert(
        {Value(feature_id), Value(app.id.value()),
         Value(app.spec.place.value()), Value(def.name), Value(value),
         Value(static_cast<std::int64_t>(n_samples)), Value(now.ms)});
    if (!r.ok()) {
      FlushCounters(local);
      std::lock_guard lock(stats_mu_);
      stats_ += local;
      return r.error();
    }
    ++local.features_written;
    ++written;
  }

  // Flag the consumed raw rows as processed — candidates via the app_id
  // index rather than a full-table walk.
  (void)raw->UpdateWhereEq(
      "app_id", Value(app.id.value()),
      [](const Row& row) { return !row[5].as_bool(); },
      [](Row& row) { row[5] = Value(true); });

  if (tracing) {
    tracer_->Emit(stream, now, obs::EventKind::kAppProcessed, app.id.value(),
                  static_cast<std::uint64_t>(written));
  }
  FlushCounters(local);
  std::lock_guard lock(stats_mu_);
  stats_ += local;
  return written;
}

void DataProcessor::FlushCounters(const DataProcessorStats& local) {
  if (obs_.blobs_decoded == nullptr) return;
  if (local.blobs_decoded > 0) obs_.blobs_decoded->Inc(local.blobs_decoded);
  if (local.blobs_rejected > 0) obs_.blobs_rejected->Inc(local.blobs_rejected);
  if (local.tuples_processed > 0)
    obs_.tuples_processed->Inc(local.tuples_processed);
  if (local.features_written > 0)
    obs_.features_written->Inc(local.features_written);
  if (local.apps_skipped > 0) obs_.apps_skipped->Inc(local.apps_skipped);
}

Result<double> DataProcessor::FeatureValue(AppId app,
                                           const std::string& feature) const {
  const Table* features = db_.table(db::tables::kFeatureData);
  Result<double> out = Error{
      Errc::kNotFound, "no feature '" + feature + "' for app " + app.str()};
  features->ForEachWhereEq("app_id", Value(app.value()), [&](const Row& row) {
    if (row[3].as_text() != feature) return true;
    out = row[4].as_double();
    return false;
  });
  return out;
}

Result<rank::FeatureMatrix> DataProcessor::BuildFeatureMatrix(
    const std::vector<ApplicationRecord>& apps,
    const std::vector<rank::FeatureSpec>& feature_specs) const {
  if (apps.empty())
    return Error{Errc::kInvalidArgument, "no applications"};
  std::vector<std::string> names;
  names.reserve(apps.size());
  for (const ApplicationRecord& a : apps) names.push_back(a.spec.place_name);

  rank::FeatureMatrix m(std::move(names), feature_specs);
  for (std::size_t i = 0; i < apps.size(); ++i) {
    for (std::size_t j = 0; j < feature_specs.size(); ++j) {
      Result<double> v = FeatureValue(apps[i].id, feature_specs[j].name);
      if (!v.ok()) return v.error();
      m.set(static_cast<int>(i), static_cast<int>(j), v.value());
    }
  }
  return m;
}

}  // namespace sor::server

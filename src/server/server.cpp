#include "server/server.hpp"

#include <set>

#include "common/log.hpp"

namespace sor::server {

SensingServer::SensingServer(ServerConfig config,
                             net::LoopbackNetwork& network,
                             const SimClock& clock)
    : config_(std::move(config)),
      network_(network),
      clock_(clock),
      users_(db_),
      apps_(db_),
      parts_(db_, clock_),
      scheduler_(db_, network_, clock_),
      processor_(db_) {
  db::MakeSorSchema(db_);
  network_.Register(config_.endpoint_name, this);
}

SensingServer::~SensingServer() { network_.Unregister(config_.endpoint_name); }

Result<BarcodePayload> SensingServer::DeployApplication(
    const ApplicationSpec& spec) {
  Result<AppId> id = apps_.CreateApplication(spec);
  if (!id.ok()) return id.error();
  return apps_.BarcodeFor(id.value(), config_.endpoint_name);
}

Result<int> SensingServer::ProcessAllData() {
  int total = 0;
  for (const ApplicationRecord& app : apps_.All()) {
    Result<int> n = processor_.ProcessApp(app, clock_.now());
    if (!n.ok()) return n;
    total += n.value();
  }
  return total;
}

Result<rank::RankingOutcome> SensingServer::RankPlaces(
    const std::vector<AppId>& app_ids,
    const std::vector<rank::FeatureSpec>& feature_specs,
    const rank::UserProfile& profile, rank::AggregationMethod method) const {
  std::vector<ApplicationRecord> records;
  records.reserve(app_ids.size());
  for (AppId id : app_ids) {
    Result<ApplicationRecord> rec = apps_.Get(id);
    if (!rec.ok()) return rec.error();
    records.push_back(std::move(rec).value());
  }
  Result<rank::FeatureMatrix> matrix =
      processor_.BuildFeatureMatrix(records, feature_specs);
  if (!matrix.ok()) return matrix.error();
  const rank::PersonalizableRanker ranker(std::move(matrix).value());
  return ranker.Rank(profile, method);
}

Result<PingReply> SensingServer::PingPhone(const Token& token) {
  Result<Message> reply =
      network_.Send("phone:" + token.value, Ping{PhoneId{1}});
  if (!reply.ok()) return reply.error();
  const auto* pong = std::get_if<PingReply>(&reply.value());
  if (pong == nullptr)
    return Error{Errc::kDecodeError, "unexpected reply to ping"};
  return *pong;
}

Result<int> SensingServer::VerifyParticipants(AppId app_id) {
  Result<ApplicationRecord> app = apps_.Get(app_id);
  if (!app.ok()) return app.error();

  int removed = 0;
  for (const ParticipationRecord& rec : parts_.ActiveForApp(app_id)) {
    Result<PingReply> pong = PingPhone(rec.token);
    if (!pong.ok()) {
      // Lost track of the phone entirely: the task can make no progress.
      (void)parts_.MarkError(rec.task, "unreachable: " +
                                           pong.error().str());
      ++removed;
      continue;
    }
    const double dist =
        HaversineMeters(pong.value().location, app.value().spec.location);
    if (dist > app.value().spec.radius_m) {
      SOR_LOG(kInfo, "server",
              "user " << rec.user.str() << " left "
                      << app.value().spec.place_name << " ("
                      << static_cast<int>(dist) << "m away)");
      (void)parts_.MarkFinished(rec.task, clock_.now());
      ++removed;
    }
  }
  if (removed > 0) {
    (void)scheduler_.RescheduleApp(app.value(), parts_,
                                   config_.sample_window,
                                   config_.samples_per_window);
  }
  return removed;
}

Bytes SensingServer::HandleFrame(std::span<const std::uint8_t> frame) {
  ++stats_.requests_handled;
  Result<Message> decoded = DecodeFrame(frame);
  if (!decoded.ok()) {
    ++stats_.decode_failures;
    return EncodeFrame(
        ErrorReply{static_cast<std::uint8_t>(decoded.error().code),
                   decoded.error().message});
  }
  return EncodeFrame(HandleMessage(decoded.value()));
}

Message SensingServer::HandleMessage(const Message& m) {
  if (const auto* req = std::get_if<ParticipationRequest>(&m))
    return OnParticipation(*req);
  if (const auto* upload = std::get_if<SensedDataUpload>(&m))
    return OnUpload(*upload);
  if (const auto* note = std::get_if<LeaveNotification>(&m))
    return OnLeave(*note);
  if (std::get_if<PingReply>(&m) != nullptr) return Ack{};
  return ErrorReply{static_cast<std::uint8_t>(Errc::kInvalidArgument),
                    "server cannot handle this message type"};
}

Message SensingServer::OnParticipation(const ParticipationRequest& req) {
  Result<ApplicationRecord> app = apps_.Get(req.app);
  if (!app.ok()) {
    ++stats_.participations_rejected;
    return ParticipationReply{TaskId{}, false, app.error().str()};
  }
  Result<TaskId> task = parts_.HandleRequest(req, app.value(), users_);
  if (!task.ok()) {
    ++stats_.participations_rejected;
    SOR_LOG(kInfo, "server",
            "participation rejected: " << task.error().str());
    return ParticipationReply{TaskId{}, false, task.error().str()};
  }
  ++stats_.participations_accepted;

  // Online scheduling: every join re-plans the app's remaining period and
  // redistributes schedules to all of its active phones.
  Status sched = scheduler_.RescheduleApp(app.value(), parts_,
                                          config_.sample_window,
                                          config_.samples_per_window);
  if (!sched.ok()) {
    SOR_LOG(kWarn, "server",
            "reschedule after join failed: " << sched.str());
  }
  return ParticipationReply{task.value(), true, ""};
}

Message SensingServer::OnUpload(const SensedDataUpload& upload) {
  Result<ParticipationRecord> rec = parts_.Get(upload.task);
  if (!rec.ok())
    return ErrorReply{static_cast<std::uint8_t>(Errc::kNotFound),
                      "unknown task " + upload.task.str()};
  if (rec.value().user != upload.user)
    return ErrorReply{static_cast<std::uint8_t>(Errc::kPermissionDenied),
                      "upload user does not own task"};

  // "it will directly store the binary message body into the database,
  // which will be processed later by the Data Processor."
  ByteWriter body;
  EncodeBody(Message(upload), body);
  db::Table* raw = db_.table(db::tables::kRawData);
  Result<db::RowId> stored = raw->Insert(
      {db::Value(raw_ids_.next().value()), db::Value(upload.task.value()),
       db::Value(rec.value().app.value()), db::Value(body.take()),
       db::Value(clock_.now().ms), db::Value(false)});
  if (!stored.ok())
    return ErrorReply{static_cast<std::uint8_t>(stored.error().code),
                      stored.error().message};
  ++stats_.uploads_stored;

  // Budget bookkeeping: one acquisition per distinct scheduled instant in
  // the batch ("Initially, it is set to the maximum number of times the
  // mobile user is willing to acquire data ... updated at runtime").
  std::set<std::int64_t> instants;
  for (const ReadingTuple& t : upload.batches) instants.insert(t.t.ms);
  (void)parts_.ConsumeBudget(upload.task,
                             static_cast<int>(instants.size()));
  return Ack{upload.task.value()};
}

Message SensingServer::OnLeave(const LeaveNotification& note) {
  Result<ParticipationRecord> rec = parts_.Get(note.task);
  if (!rec.ok())
    return ErrorReply{static_cast<std::uint8_t>(Errc::kNotFound),
                      "unknown task " + note.task.str()};
  (void)parts_.MarkFinished(note.task, note.time);

  // Re-plan for the remaining participants.
  Result<ApplicationRecord> app = apps_.Get(rec.value().app);
  if (app.ok()) {
    (void)scheduler_.RescheduleApp(app.value(), parts_, config_.sample_window,
                                   config_.samples_per_window);
  }
  return Ack{note.task.value()};
}

}  // namespace sor::server

#include "server/server.hpp"

#include <optional>
#include <set>

#include "codec/bytes.hpp"
#include "common/log.hpp"
#include "common/sharded_executor.hpp"
#include "db/snapshot.hpp"

namespace sor::server {

SensingServer::SensingServer(ServerConfig config,
                             net::LoopbackNetwork& network,
                             const SimClock& clock)
    : config_(std::move(config)),
      network_(network),
      clock_(clock),
      users_(db_),
      apps_(db_),
      parts_(db_, clock_),
      scheduler_(db_, network_, clock_, config_.endpoint_name),
      processor_(db_) {
  db::MakeSorSchema(db_);
  health_.set_config(config_.overload);
  network_.Register(config_.endpoint_name, this);
}

SensingServer::~SensingServer() { network_.Unregister(config_.endpoint_name); }

void SensingServer::AttachObservability(obs::MetricsRegistry* registry,
                                        obs::Tracer* tracer) {
  registry_ = registry;
  tracer_ = tracer;
  if (tracer_ != nullptr)
    stream_ = tracer_->RegisterStream(config_.endpoint_name);
  scheduler_.AttachObservability(registry, tracer, stream_);
  processor_.AttachObservability(registry, tracer);
  health_.AttachObservability(registry, tracer, stream_);
  db_.AttachObservability(registry);
  if (registry == nullptr) {
    obs_ = ServerCounters{};
    return;
  }
  obs_.requests_handled = &registry->counter("server.requests_handled");
  obs_.decode_failures = &registry->counter("server.decode_failures");
  obs_.uploads_stored = &registry->counter("server.uploads_stored");
  obs_.uploads_deduped = &registry->counter("server.uploads_deduped");
  obs_.participations_accepted =
      &registry->counter("server.participations_accepted");
  obs_.participations_rejected =
      &registry->counter("server.participations_rejected");
  obs_.recoveries = &registry->counter("server.recoveries");
  obs_.resyncs_triggered = &registry->counter("server.resyncs_triggered");
  obs_.upload_batch_tuples = &registry->histogram(
      "server.upload_batch_tuples", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
}

void SensingServer::Trace(obs::EventKind kind, std::uint64_t a,
                          std::uint64_t b, std::uint64_t c) {
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->Emit(stream_, clock_.now(), kind, a, b, c);
}

Result<BarcodePayload> SensingServer::DeployApplication(
    const ApplicationSpec& spec) {
  Result<AppId> id = apps_.CreateApplication(spec);
  if (!id.ok()) return id.error();
  return apps_.BarcodeFor(id.value(), config_.endpoint_name);
}

Result<int> SensingServer::ProcessAllData() {
  const std::vector<ApplicationRecord> all = apps_.All();
  // Pre-register the processor's per-app streams here — serially, in app
  // order — so the parallel path below assigns the same stream ids as the
  // serial one (ProcessApp only looks the names up).
  if (tracer_ != nullptr && tracer_->enabled()) {
    for (const ApplicationRecord& app : all)
      (void)tracer_->RegisterStream(DataProcessor::StreamNameForApp(app.id));
  }
  if (executor_ == nullptr || executor_->threads() <= 1) {
    int total = 0;
    for (const ApplicationRecord& app : all) {
      Result<int> n = processor_.ProcessApp(app, clock_.now());
      if (!n.ok()) return n;
      total += n.value();
    }
    return total;
  }

  // Parallel path: one ProcessApp per app; per-app row sets are disjoint,
  // and each call fills its own stats sink — no shared mutable state, no
  // mutex. The serial loop stops at the first failure; here every app
  // runs, then the first error *in app order* is reported — same error,
  // same total when everything succeeds (integer sum is order-independent).
  // The sinks merge after the barrier in app order, so the aggregate
  // matches the serial accumulation exactly.
  std::vector<std::optional<Result<int>>> results(all.size());
  std::vector<DataProcessorStats> sinks(all.size());
  const SimTime now = clock_.now();
  executor_->ParallelFor(all.size(), [&](std::size_t i) {
    results[i] = processor_.ProcessApp(all[i], now, &sinks[i]);
  });
  for (const DataProcessorStats& sink : sinks) processor_.MergeStats(sink);
  int total = 0;
  for (const std::optional<Result<int>>& r : results) {
    if (!r.has_value()) continue;
    if (!r->ok()) return *r;
    total += r->value();
  }
  return total;
}

Status SensingServer::FlushReschedules() {
  const std::vector<std::uint64_t> dirty = scheduler_.TakeDirtyApps();
  if (dirty.empty()) return Status::Ok();

  std::vector<ApplicationRecord> records;
  records.reserve(dirty.size());
  for (std::uint64_t id : dirty) {
    Result<ApplicationRecord> rec = apps_.Get(AppId{id});
    if (!rec.ok()) return rec.error();
    records.push_back(std::move(rec).value());
  }

  // Plan in parallel, distribute serially in ascending app-id order —
  // `dirty` is already sorted. Planner states are created serially first:
  // after that each PlanApp touches only its own app's state (plus shared
  // database reads), so the fan-out stays race-free.
  for (const ApplicationRecord& rec : records) scheduler_.EnsurePlanState(rec);
  std::vector<std::optional<Result<SchedulePlan>>> plans(records.size());
  if (executor_ != nullptr && executor_->threads() > 1) {
    executor_->ParallelFor(records.size(), [&](std::size_t i) {
      plans[i] = scheduler_.PlanApp(records[i], parts_);
    });
  } else {
    for (std::size_t i = 0; i < records.size(); ++i)
      plans[i] = scheduler_.PlanApp(records[i], parts_);
  }

  Status overall = Status::Ok();
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!plans[i].has_value()) continue;
    if (!plans[i]->ok()) return plans[i]->error();
    Status s = scheduler_.DistributePlan(records[i], plans[i]->value(), parts_,
                                         config_.sample_window,
                                         config_.samples_per_window);
    if (!s.ok()) overall = s;
  }
  return overall;
}

Result<rank::RankingOutcome> SensingServer::RankPlaces(
    const std::vector<AppId>& app_ids,
    const std::vector<rank::FeatureSpec>& feature_specs,
    const rank::UserProfile& profile, rank::AggregationMethod method) const {
  std::vector<ApplicationRecord> records;
  records.reserve(app_ids.size());
  for (AppId id : app_ids) {
    Result<ApplicationRecord> rec = apps_.Get(id);
    if (!rec.ok()) return rec.error();
    records.push_back(std::move(rec).value());
  }
  Result<rank::FeatureMatrix> matrix =
      processor_.BuildFeatureMatrix(records, feature_specs);
  if (!matrix.ok()) return matrix.error();
  const rank::PersonalizableRanker ranker(std::move(matrix).value());
  return ranker.Rank(profile, method);
}

Result<PingReply> SensingServer::PingPhone(const Token& token) {
  Result<Message> reply = network_.Send(config_.endpoint_name,
                                        "phone:" + token.value,
                                        Ping{PhoneId{1}});
  if (!reply.ok()) return reply.error();
  const auto* pong = std::get_if<PingReply>(&reply.value());
  if (pong == nullptr)
    return Error{Errc::kDecodeError, "unexpected reply to ping"};
  return *pong;
}

Result<int> SensingServer::VerifyParticipants(AppId app_id) {
  Result<ApplicationRecord> app = apps_.Get(app_id);
  if (!app.ok()) return app.error();

  int removed = 0;
  for (const ParticipationRecord& rec : parts_.ActiveForApp(app_id)) {
    Result<PingReply> pong = PingPhone(rec.token);
    if (!pong.ok()) {
      // Lost track of the phone entirely: the task can make no progress.
      (void)parts_.MarkError(rec.task, "unreachable: " +
                                           pong.error().str());
      ++removed;
      continue;
    }
    const double dist =
        HaversineMeters(pong.value().location, app.value().spec.location);
    if (dist > app.value().spec.radius_m) {
      SOR_LOG(kInfo, "server",
              "user " << rec.user.str() << " left "
                      << app.value().spec.place_name << " ("
                      << static_cast<int>(dist) << "m away)");
      (void)parts_.MarkFinished(rec.task, clock_.now());
      ++removed;
    }
  }
  if (removed > 0) {
    (void)scheduler_.RescheduleApp(app.value(), parts_,
                                   config_.sample_window,
                                   config_.samples_per_window);
  }
  return removed;
}

Bytes SensingServer::HandleFrame(std::span<const std::uint8_t> frame) {
  ++stats_.requests_handled;
  if (obs_.requests_handled != nullptr) obs_.requests_handled->Inc();
  Result<Message> decoded = DecodeFrame(frame);
  if (!decoded.ok()) {
    ++stats_.decode_failures;
    if (obs_.decode_failures != nullptr) obs_.decode_failures->Inc();
    return EncodeFrame(
        ErrorReply{static_cast<std::uint8_t>(decoded.error().code),
                   decoded.error().message});
  }
  return EncodeFrame(HandleMessage(decoded.value()));
}

Message SensingServer::HandleMessage(const Message& m) {
  if (const auto* req = std::get_if<ParticipationRequest>(&m))
    return OnParticipation(*req);
  if (const auto* upload = std::get_if<SensedDataUpload>(&m))
    return OnUpload(*upload);
  if (const auto* note = std::get_if<LeaveNotification>(&m))
    return OnLeave(*note);
  if (std::get_if<PingReply>(&m) != nullptr) return Ack{};
  return ErrorReply{static_cast<std::uint8_t>(Errc::kInvalidArgument),
                    "server cannot handle this message type"};
}

Message SensingServer::OnParticipation(const ParticipationRequest& req) {
  Result<ApplicationRecord> app = apps_.Get(req.app);
  if (!app.ok()) {
    ++stats_.participations_rejected;
    if (obs_.participations_rejected != nullptr)
      obs_.participations_rejected->Inc();
    Trace(obs::EventKind::kParticipationRejected, req.app.value());
    return ParticipationReply{TaskId{}, false, app.error().str()};
  }
  Result<TaskId> task = parts_.HandleRequest(req, app.value(), users_);
  if (!task.ok()) {
    ++stats_.participations_rejected;
    if (obs_.participations_rejected != nullptr)
      obs_.participations_rejected->Inc();
    Trace(obs::EventKind::kParticipationRejected, req.app.value());
    SOR_LOG(kInfo, "server",
            "participation rejected: " << task.error().str());
    return ParticipationReply{TaskId{}, false, task.error().str()};
  }
  ++stats_.participations_accepted;
  if (obs_.participations_accepted != nullptr)
    obs_.participations_accepted->Inc();
  Trace(obs::EventKind::kParticipationAccepted, task.value().value(),
        req.app.value());

  // Online scheduling: a join plans the new participant against the app's
  // residual coverage and pushes only the changed schedules. The accepted
  // task is explicitly marked unsent first: a crashed-and-restarted phone
  // that re-scans gets its EXISTING task back (same incarnation), and its
  // unchanged plan must be re-pushed because the phone lost it.
  scheduler_.MarkTaskUnsent(app.value(), task.value());
  Status sched = scheduler_.RescheduleApp(app.value(), parts_,
                                          config_.sample_window,
                                          config_.samples_per_window);
  if (!sched.ok()) {
    SOR_LOG(kWarn, "server",
            "reschedule after join failed: " << sched.str());
  }
  return ParticipationReply{task.value(), true, ""};
}

Message SensingServer::OnUpload(const SensedDataUpload& upload) {
  Result<ParticipationRecord> rec = parts_.Get(upload.task);
  if (!rec.ok())
    return ErrorReply{static_cast<std::uint8_t>(Errc::kNotFound),
                      "unknown task " + upload.task.str()};
  if (rec.value().user != upload.user)
    return ErrorReply{static_cast<std::uint8_t>(Errc::kPermissionDenied),
                      "upload user does not own task"};

  MaybeResyncAfterRestart(upload.task);
  health_.NoteContact(upload.task.value(), clock_.now());

  // At-least-once dedup: a retry after a lost Ack (or a duplicated frame)
  // carries the seq the server already stored. Acknowledge it again —
  // that is the answer the phone never received — but store nothing and
  // consume no budget. seq 0 marks a legacy sender with no dedup key.
  // Dedup runs BEFORE admission control: a retry of data already on disk
  // costs one hash probe, so re-acking it is free even under overload.
  if (upload.seq != 0) {
    const auto it = seen_upload_seqs_.find(upload.task.value());
    if (it != seen_upload_seqs_.end() && it->second.contains(upload.seq)) {
      ++stats_.duplicate_uploads_ignored;
      if (obs_.uploads_deduped != nullptr) obs_.uploads_deduped->Inc();
      Trace(obs::EventKind::kUploadDeduped, upload.task.value(), upload.seq,
            rec.value().app.value());
      return Ack{upload.task.value(), upload.seq};
    }
  }

  // Admission control (docs/robustness.md): only NEW bytes are billed
  // against the tick's ingest budget. Staleness comes from the upload's
  // own sense ticks — the newest reading dates the batch.
  SimTime sensed_at{0};
  for (const ReadingTuple& t : upload.batches)
    sensed_at = std::max(sensed_at, t.t);
  const AdmitDecision adm = health_.AdmitUpload(clock_.now(), sensed_at);
  if (!adm.admit) {
    ++stats_.uploads_throttled;
    if (adm.stale && adm.mode == ServerMode::kThrottling)
      ++stats_.uploads_shed_stale;
    Trace(adm.stale ? obs::EventKind::kUploadShed
                    : obs::EventKind::kUploadThrottled,
          upload.task.value(), upload.seq,
          static_cast<std::uint64_t>(static_cast<std::uint8_t>(adm.mode)));
    return ThrottleReply{upload.task.value(), upload.seq, adm.retry_after,
                         static_cast<std::uint8_t>(adm.mode)};
  }

  // "it will directly store the binary message body into the database,
  // which will be processed later by the Data Processor."
  ByteWriter body;
  EncodeBody(Message(upload), body);
  db::Table* raw = db_.table(db::tables::kRawData);
  const std::uint64_t raw_id = raw_ids_.next().value();
  Result<db::RowId> stored = raw->Insert(
      {db::Value(raw_id), db::Value(upload.task.value()),
       db::Value(rec.value().app.value()), db::Value(body.take()),
       db::Value(clock_.now().ms), db::Value(false),
       db::Value(static_cast<std::int64_t>(upload.seq))});
  if (!stored.ok()) {
    // Storage fault: the row did NOT land. Answer with a throttle — the
    // data is intact on the phone and a later retry may find the store
    // healthy again — and let the watchdog decide whether the pile-up
    // warrants quarantine-and-reprime.
    ++stats_.storage_write_failures;
    health_.NoteStorageFailure(clock_.now());
    Trace(obs::EventKind::kStorageWriteFailed, upload.task.value(),
          upload.seq);
    SOR_LOG(kWarn, "server",
            "raw_data write failed (task " << upload.task.str() << " seq "
                << upload.seq << "): " << stored.error().str());
    if (health_.ShouldReprime()) Reprime();
    const SimDuration hint =
        health_.config().retry_after + health_.config().retry_after;
    return ThrottleReply{upload.task.value(), upload.seq, hint,
                         static_cast<std::uint8_t>(health_.mode())};
  }
  // Advance the app's stored watermark so the Data Processor's next pass
  // sees new work without probing the raw table.
  processor_.NoteUploadStored(rec.value().app,
                              static_cast<std::int64_t>(raw_id));
  ++stats_.uploads_stored;
  if (obs_.uploads_stored != nullptr) {
    obs_.uploads_stored->Inc();
    obs_.upload_batch_tuples->Observe(
        static_cast<double>(upload.batches.size()));
  }
  // The db-commit milestone of the upload span: the raw_data row exists.
  Trace(obs::EventKind::kUploadStored, upload.task.value(), upload.seq,
        rec.value().app.value());
  if (upload.seq != 0)
    seen_upload_seqs_[upload.task.value()].insert(upload.seq);

  // Budget bookkeeping: one acquisition per distinct scheduled instant in
  // the batch ("Initially, it is set to the maximum number of times the
  // mobile user is willing to acquire data ... updated at runtime").
  std::set<std::int64_t> instants;
  for (const ReadingTuple& t : upload.batches) instants.insert(t.t.ms);
  (void)parts_.ConsumeBudget(upload.task,
                             static_cast<int>(instants.size()));
  return Ack{upload.task.value(), upload.seq};
}

Message SensingServer::OnLeave(const LeaveNotification& note) {
  Result<ParticipationRecord> rec = parts_.Get(note.task);
  if (!rec.ok())
    return ErrorReply{static_cast<std::uint8_t>(Errc::kNotFound),
                      "unknown task " + note.task.str()};
  needs_resync_.erase(note.task);  // leaving; no schedule to re-push
  health_.NoteContact(note.task.value(), clock_.now());
  (void)parts_.MarkFinished(note.task, note.time);
  Trace(obs::EventKind::kTaskFinished, note.task.value());

  // Re-plan for the remaining participants.
  Result<ApplicationRecord> app = apps_.Get(rec.value().app);
  if (app.ok()) {
    (void)scheduler_.RescheduleApp(app.value(), parts_, config_.sample_window,
                                   config_.samples_per_window);
  }
  return Ack{note.task.value()};
}

void SensingServer::MaybeResyncAfterRestart(TaskId task) {
  if (!needs_resync_.contains(task)) return;
  Result<ParticipationRecord> rec = parts_.Get(task);
  if (!rec.ok()) {
    needs_resync_.erase(task);
    return;
  }
  Result<ApplicationRecord> app = apps_.Get(rec.value().app);
  if (!app.ok()) {
    needs_resync_.erase(task);
    return;
  }

  // Re-push the task's latest STORED schedule verbatim rather than
  // re-planning: the phone already holds this exact schedule (the store
  // happens before distribution), so a restart never perturbs sensing —
  // the restored campaign stays byte-identical to an uninterrupted one
  // (docs/deployment.md). Re-planning here would commit a schedule the
  // original timeline never produced.
  const db::Table* schedules = db_.table(db::tables::kSchedules);
  std::optional<db::Row> latest;
  schedules->ForEachWhereEq(
      "task_id", db::Value(task.value()), [&latest](const db::Row& row) {
        // One row per task holds its current plan (kept assigned in place
        // by the scheduler); tolerate extras from older layouts by taking
        // the newest.
        latest = row;
        return true;
      });
  if (!latest.has_value()) {
    // Planned-but-never-scheduled task (or pre-schedule crash): nothing
    // stored to re-push; the next reschedule covers it.
    needs_resync_.erase(task);
    return;
  }

  ScheduleDistribution msg;
  msg.task = task;
  msg.app = app.value().id;
  msg.script = app.value().spec.script;
  msg.sample_window = config_.sample_window;
  msg.samples_per_window = config_.samples_per_window;
  msg.required_sensors = app.value().required_sensors;
  msg.flow_manifest = app.value().flow_manifest;
  ByteReader instants(latest->at(3).as_blob());
  const std::uint64_t count = instants.varint();
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < count && instants.ok(); ++i) {
    prev += instants.svarint();
    msg.instants.push_back(SimTime{prev});
  }
  // The blob's trailing section (per-pick grid index + commit seq) feeds
  // the planner rebuild, not the phone; skip past it before finish().
  for (std::uint64_t i = 0; i < 2 * count && instants.ok(); ++i)
    (void)instants.varint();
  if (!instants.finish().ok()) {
    SOR_LOG(kWarn, "server",
            "post-restart resync: stored schedule for task "
                << task.str() << " is corrupt; dropping resync");
    needs_resync_.erase(task);
    return;
  }

  Result<Message> reply = network_.Send(
      config_.endpoint_name, "phone:" + rec.value().token.value, msg);
  if (!reply.ok()) {
    // The phone did not get its schedule (e.g. the link dropped it); keep
    // the task marked so the next contact retries the push.
    SOR_LOG(kWarn, "server",
            "post-restart resync incomplete: " << reply.error().str());
    return;
  }
  (void)parts_.MarkRunning(task);
  ++stats_.resyncs_triggered;
  if (obs_.resyncs_triggered != nullptr) obs_.resyncs_triggered->Inc();
  needs_resync_.erase(task);
}

void SensingServer::RebuildDerivedState() {
  // Id generators are process state, not database state: re-sync each one
  // past the ids already issued.
  users_.ResyncIds();
  apps_.ResyncIds();
  parts_.ResyncIds();
  scheduler_.ResyncIds();

  // Rebuild the upload dedup index, the raw-row id source, and the Data
  // Processor's per-app watermarks from raw_data. The id source needs only
  // the max primary key (O(1)); the dedup/watermark scan goes app by app
  // through the app_id index — every raw row belongs to a registered app,
  // so this covers the table without a full walk.
  db::Table* raw = db_.table(db::tables::kRawData);
  if (std::optional<db::Value> max_id = raw->MaxPrimaryKey())
    raw_ids_.advance_past(static_cast<std::uint64_t>(max_id->as_int()));
  seen_upload_seqs_.clear();
  processor_.ResetRuntimeState();
  for (const ApplicationRecord& app : apps_.All()) {
    std::int64_t stored_max = 0;
    std::int64_t processed_max = 0;
    raw->ForEachWhereEq(
        "app_id", db::Value(app.id.value()), [&](const db::Row& r) {
          const std::int64_t id = r[0].as_int();
          stored_max = std::max(stored_max, id);
          if (r[5].as_bool()) processed_max = std::max(processed_max, id);
          const std::int64_t seq = r[6].as_int();
          if (seq != 0) {
            seen_upload_seqs_[static_cast<std::uint64_t>(r[1].as_int())]
                .insert(static_cast<std::uint64_t>(seq));
          }
          return true;
        });
    processor_.RestoreProgress(app.id, stored_max, processed_max);
  }
}

void SensingServer::Reprime() {
  // The storage layer failed writes but every committed row is intact
  // (Insert is all-or-nothing). Quarantine the suspect PROCESS state — the
  // dedup index, id sources and watermarks that were built alongside the
  // failed writes — and rebuild all of it from the current tables, the
  // same walk a snapshot restore does, minus the restore.
  RebuildDerivedState();
  ++stats_.reprimes;
  health_.NoteReprimed(clock_.now());
  Trace(obs::EventKind::kServerReprimed,
        db_.table(db::tables::kRawData)->size());
  SOR_LOG(kWarn, "server",
          "reprimed after storage write failures: "
              << db_.table(db::tables::kRawData)->size()
              << " raw rows re-indexed; refusing uploads until next tick");
}

Bytes SensingServer::SnapshotState() const { return db::SnapshotDatabase(db_); }

Status SensingServer::RestoreFromSnapshot(
    std::span<const std::uint8_t> snapshot) {
  // RestoreDatabase is all-or-nothing and refuses a non-empty target, so
  // stage into a fresh database and commit by move. Managers hold a
  // reference to db_ (whose address is stable), so they see the restored
  // tables immediately.
  db::Database fresh;
  if (Status s = db::RestoreDatabase(snapshot, fresh); !s.ok()) return s;
  db_ = std::move(fresh);
  // db_ was replaced wholesale; re-wire its full-scan counter.
  db_.AttachObservability(registry_);

  RebuildDerivedState();

  // Rebuild the scheduler's per-app incremental planners from the durable
  // schedule rows (each row is a task's surviving commit log). Replayed in
  // seq order this is bitwise the planning state the snapshotted process
  // held, so post-restore reschedules continue the same greedy trajectory.
  scheduler_.RebuildFromDb(apps_.All(), parts_);

  // Phones still hold pre-crash schedules; re-push each app's schedule the
  // first time any of its participants makes contact.
  needs_resync_.clear();
  for (const ApplicationRecord& app : apps_.All()) {
    for (const ParticipationRecord& rec : parts_.ActiveForApp(app.id))
      needs_resync_.insert(rec.task);
  }

  ++stats_.recoveries;
  if (obs_.recoveries != nullptr) obs_.recoveries->Inc();
  Trace(obs::EventKind::kServerRestored,
        db_.table(db::tables::kRawData)->size());
  SOR_LOG(kInfo, "server",
          "recovered from snapshot: " << db_.table(db::tables::kRawData)->size()
                                      << " raw rows, " << needs_resync_.size()
                                      << " tasks awaiting resync");
  return Status::Ok();
}

}  // namespace sor::server

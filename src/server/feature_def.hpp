// Feature definitions: how the Data Processor turns raw readings into one
// "humanly understandable feature" value per place (§IV-A).
//
// "The methods for calculating these values from raw data may vary with
// features. For example, for temperature, we take an average over all
// temperature sensors' readings; however, for roughness of road surface, we
// take an average of standard deviations of accelerometers' readings within
// Δt."  The §V-A/§V-B recipes map onto four extraction methods:
//
//   kMeanOfAll            — mean over every reading (temperature, humidity,
//                           brightness, noise, WiFi)
//   kMeanOfWindowStddev   — mean over tuples of stddev within Δt (roughness)
//   kStddevOfWindowMeans  — stddev over tuples of mean within Δt
//                           (altitude change)
//   kGpsCurvature         — polyline curvature from ordered GPS fixes,
//                           mrad/m (curvature, method of [17])
//
// An application's feature list is stored in the database as text
// ("name:sensor:method;..."), so the Data Processor is fully table-driven.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/sensor_kind.hpp"

namespace sor::server {

enum class ExtractMethod {
  kMeanOfAll,
  kMeanOfWindowStddev,
  kStddevOfWindowMeans,
  kGpsCurvature,
};

[[nodiscard]] const char* to_string(ExtractMethod m);
[[nodiscard]] Result<ExtractMethod> ExtractMethodFromString(
    const std::string& s);

struct FeatureDef {
  std::string name;          // canonical feature name (common/features.hpp)
  SensorKind sensor = SensorKind::kDroneTemperature;
  ExtractMethod method = ExtractMethod::kMeanOfAll;

  friend bool operator==(const FeatureDef&, const FeatureDef&) = default;
};

[[nodiscard]] std::string EncodeFeatureDefs(
    const std::vector<FeatureDef>& defs);
[[nodiscard]] Result<std::vector<FeatureDef>> DecodeFeatureDefs(
    const std::string& encoded);

// The paper's two evaluation categories, ready-made.
[[nodiscard]] std::vector<FeatureDef> HikingTrailFeatures();
[[nodiscard]] std::vector<FeatureDef> CoffeeShopFeatures();

}  // namespace sor::server

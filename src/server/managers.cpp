#include "server/managers.hpp"

#include <functional>

#include "phone/task_instance.hpp"

namespace sor::server {

namespace {

using db::Row;
using db::Table;
using db::Value;

}  // namespace

// --- UserInfoManager ------------------------------------------------------

Result<UserId> UserInfoManager::RegisterUser(const std::string& name,
                                             const Token& token) {
  Table* users = db_.table(db::tables::kUsers);
  if (!users) return Error{Errc::kInternal, "users table missing"};
  if (!users->FindWhereEq("token", Value(token.value)).empty())
    return Error{Errc::kAlreadyExists,
                 "token already registered: " + token.value};
  const UserId id = ids_.next();
  Result<db::RowId> r = users->Insert(
      {Value(id.value()), Value(name), Value(token.value)});
  if (!r.ok()) return r.error();
  return id;
}

std::optional<UserId> UserInfoManager::FindByToken(const Token& token) const {
  const Table* users = db_.table(db::tables::kUsers);
  const auto rows = users->FindWhereEq("token", Value(token.value));
  if (rows.empty()) return std::nullopt;
  return UserId{static_cast<std::uint64_t>(rows[0][0].as_int())};
}

Status UserInfoManager::VerifyUser(UserId user, const Token& token) const {
  const Table* users = db_.table(db::tables::kUsers);
  const auto row = users->FindByKey(Value(user.value()));
  if (!row.has_value())
    return Status(Errc::kNotFound, "unknown user " + user.str());
  if ((*row)[2].as_text() != token.value)
    return Status(Errc::kPermissionDenied, "token mismatch for user " +
                                               user.str());
  return Status::Ok();
}

std::size_t UserInfoManager::count() const {
  return db_.table(db::tables::kUsers)->size();
}

void UserInfoManager::ResyncIds() {
  if (auto max = db_.table(db::tables::kUsers)->MaxPrimaryKey())
    ids_.advance_past(static_cast<std::uint64_t>(max->as_int()));
}

// --- ApplicationManager -----------------------------------------------------

Result<AppId> ApplicationManager::CreateApplication(
    const ApplicationSpec& spec, script::analysis::AnalysisReport* report) {
  if (spec.n_instants < 1)
    return Error{Errc::kInvalidArgument, "n_instants must be >= 1"};
  if (spec.sigma_s <= 0.0)
    return Error{Errc::kInvalidArgument, "sigma must be positive"};
  if (spec.period.empty())
    return Error{Errc::kInvalidArgument, "empty scheduling period"};
  if (spec.features.empty())
    return Error{Errc::kInvalidArgument, "application needs features"};

  // Script validation: full static analysis, not just a parse. A script with
  // scope/type errors, calls outside the acquisition whitelist, unboundable
  // loops or an over-budget worst-case energy estimate is rejected here with
  // line-addressed diagnostics — the server never distributes a script
  // phones would reject or could not afford to run.
  script::analysis::AnalyzerOptions options;
  options.energy_budget_mj = spec.energy_budget_mj;
  script::analysis::AnalysisReport analysis =
      script::analysis::AnalyzeSource(spec.script, options);
  if (report) *report = analysis;
  if (!analysis.ok()) {
    const auto errors = analysis.errors();
    return Error{Errc::kScriptError, analysis.RenderErrors(),
                 errors.empty() ? 0 : errors.front().line};
  }

  Table* apps = db_.table(db::tables::kApplications);
  const AppId id = ids_.next();
  Result<db::RowId> r = apps->Insert(
      {Value(id.value()), Value(spec.creator), Value(spec.place.value()),
       Value(spec.place_name), Value(spec.location.lat_deg),
       Value(spec.location.lon_deg), Value(spec.location.alt_m),
       Value(spec.radius_m), Value(spec.script),
       Value(EncodeFeatureDefs(spec.features)),
       Value(spec.period.begin.ms), Value(spec.period.end.ms),
       Value(static_cast<std::int64_t>(spec.n_instants)),
       Value(spec.sigma_s),
       Value(script::analysis::EncodeSensorList(
           analysis.manifest.required_sensors)),
       Value(spec.energy_budget_mj),
       Value(script::analysis::EncodeFlowManifest(analysis.flow))});
  if (!r.ok()) return r.error();
  return id;
}

Result<ApplicationRecord> ApplicationManager::Get(AppId id) const {
  const Table* apps = db_.table(db::tables::kApplications);
  const auto row = apps->FindByKey(Value(id.value()));
  if (!row.has_value())
    return Error{Errc::kNotFound, "unknown application " + id.str()};
  const Row& r = *row;
  ApplicationRecord rec;
  rec.id = id;
  rec.spec.creator = r[1].as_text();
  rec.spec.place = PlaceId{static_cast<std::uint64_t>(r[2].as_int())};
  rec.spec.place_name = r[3].as_text();
  rec.spec.location = GeoPoint{r[4].as_double(), r[5].as_double(),
                               r[6].as_double()};
  rec.spec.radius_m = r[7].as_double();
  rec.spec.script = r[8].as_text();
  Result<std::vector<FeatureDef>> defs = DecodeFeatureDefs(r[9].as_text());
  if (!defs.ok()) return defs.error();
  rec.spec.features = std::move(defs).value();
  rec.spec.period = SimInterval{SimTime{r[10].as_int()},
                                SimTime{r[11].as_int()}};
  rec.spec.n_instants = static_cast<int>(r[12].as_int());
  rec.spec.sigma_s = r[13].as_double();
  Result<std::vector<SensorKind>> sensors =
      script::analysis::DecodeSensorList(r[14].as_text());
  if (!sensors.ok()) return sensors.error();
  rec.required_sensors = std::move(sensors).value();
  rec.spec.energy_budget_mj = r[15].as_double();
  rec.flow_manifest = r[16].as_text();
  return rec;
}

std::vector<ApplicationRecord> ApplicationManager::All() const {
  std::vector<ApplicationRecord> out;
  const Table* apps = db_.table(db::tables::kApplications);
  for (const Row& row : apps->ScanOrderedBy("app_id")) {
    Result<ApplicationRecord> rec =
        Get(AppId{static_cast<std::uint64_t>(row[0].as_int())});
    if (rec.ok()) out.push_back(std::move(rec).value());
  }
  return out;
}

Result<BarcodePayload> ApplicationManager::BarcodeFor(
    AppId id, const std::string& server_endpoint) const {
  Result<ApplicationRecord> rec = Get(id);
  if (!rec.ok()) return rec.error();
  BarcodePayload p;
  p.app = id;
  p.place = rec.value().spec.place;
  p.place_name = rec.value().spec.place_name;
  p.location = rec.value().spec.location;
  p.server = server_endpoint;
  p.radius_m = rec.value().spec.radius_m;
  return p;
}

void ApplicationManager::ResyncIds() {
  if (auto max = db_.table(db::tables::kApplications)->MaxPrimaryKey())
    ids_.advance_past(static_cast<std::uint64_t>(max->as_int()));
}

// --- ParticipationManager ----------------------------------------------------

namespace {

ParticipationRecord RecordFromRow(const Row& r) {
  ParticipationRecord rec;
  rec.task = TaskId{static_cast<std::uint64_t>(r[0].as_int())};
  rec.user = UserId{static_cast<std::uint64_t>(r[1].as_int())};
  rec.app = AppId{static_cast<std::uint64_t>(r[2].as_int())};
  rec.token = Token{r[3].as_text()};
  rec.budget = static_cast<int>(r[4].as_int());
  rec.budget_left = static_cast<int>(r[5].as_int());
  rec.status = r[6].as_text();
  rec.arrive = SimTime{r[7].as_int()};
  if (!r[8].is_null()) rec.leave = SimTime{r[8].as_int()};
  if (r.size() > 9)
    rec.incarnation = static_cast<std::uint32_t>(r[9].as_int());
  return rec;
}

}  // namespace

Result<TaskId> ParticipationManager::HandleRequest(
    const ParticipationRequest& req, const ApplicationRecord& app,
    const UserInfoManager& users) {
  if (Status s = users.VerifyUser(req.user, req.token); !s.ok())
    return s.error();
  if (req.budget <= 0)
    return Error{Errc::kInvalidArgument, "budget must be positive"};

  // Truthfulness check: claimed location must be inside the place radius.
  const double dist = HaversineMeters(req.location, app.spec.location);
  if (dist > app.spec.radius_m) {
    return Error{Errc::kNotInPlace,
                 "location is " + std::to_string(static_cast<int>(dist)) +
                     "m from " + app.spec.place_name + " (radius " +
                     std::to_string(static_cast<int>(app.spec.radius_m)) +
                     "m)"};
  }

  // One active participation per (user, app). A re-scan from the SAME
  // install (equal incarnation) is idempotent and returns the existing task
  // — this is how a crashed-and-restarted phone rejoins without losing its
  // dedup seq space. A HIGHER incarnation is a reinstalled phone: its
  // upload seqs restart at 1, so reusing the old task would let the dedup
  // index silently swallow every new upload. Finish the old participation
  // and fall through to open a fresh task. A LOWER incarnation is a stale
  // install (e.g. a delayed duplicate) and is refused.
  for (const ParticipationRecord& rec : ActiveForApp(app.id)) {
    if (rec.user != req.user) continue;
    if (req.incarnation == rec.incarnation) return rec.task;
    if (req.incarnation < rec.incarnation)
      return Error{Errc::kPermissionDenied,
                   "stale incarnation " + std::to_string(req.incarnation) +
                       " for task " + rec.task.str()};
    if (Status s = MarkFinished(rec.task, req.scan_time); !s.ok())
      return s.error();
    break;
  }

  Table* parts = db_.table(db::tables::kParticipations);
  const TaskId task = ids_.next();
  Result<db::RowId> r = parts->Insert(
      {Value(task.value()), Value(req.user.value()), Value(app.id.value()),
       Value(req.token.value), Value(static_cast<std::int64_t>(req.budget)),
       Value(static_cast<std::int64_t>(req.budget)),
       Value("waiting_for_schedule"), Value(req.scan_time.ms), Value(db::Null{}),
       Value(static_cast<std::int64_t>(req.incarnation))});
  if (!r.ok()) return r.error();
  return task;
}

Status ParticipationManager::MarkRunning(TaskId task) {
  Table* parts = db_.table(db::tables::kParticipations);
  return parts->UpdateByKey(Value(task.value()),
                            [](Row& row) { row[6] = Value("running"); });
}

Status ParticipationManager::MarkFinished(TaskId task, SimTime when) {
  Table* parts = db_.table(db::tables::kParticipations);
  return parts->UpdateByKey(Value(task.value()), [&](Row& row) {
    row[6] = Value("finished");
    row[8] = Value(when.ms);
  });
}

Status ParticipationManager::MarkError(TaskId task, const std::string& why) {
  Table* parts = db_.table(db::tables::kParticipations);
  return parts->UpdateByKey(Value(task.value()), [&](Row& row) {
    row[6] = Value("error:" + why);
  });
}

Status ParticipationManager::ConsumeBudget(TaskId task, int executions) {
  if (executions < 0)
    return Status(Errc::kInvalidArgument, "negative executions");
  // Per-upload hot path: budget_left is non-key and unindexed, so read the
  // one cell and write it back in place — no row copy, no re-index. The
  // read-modify-write is not atomic, but upload handling runs only inside
  // the epoch merge pass (driver thread), so no interleaving can occur.
  Table* parts = db_.table(db::tables::kParticipations);
  constexpr int kBudgetLeftCol = 5;
  Result<Value> left = parts->ReadCell(Value(task.value()), kBudgetLeftCol);
  if (!left.ok()) return Status(left.error());
  const std::int64_t next =
      std::max<std::int64_t>(0, left.value().as_int() - executions);
  return parts->UpdateInPlace(Value(task.value()), kBudgetLeftCol,
                              Value(next));
}

Result<ParticipationRecord> ParticipationManager::Get(TaskId task) const {
  const Table* parts = db_.table(db::tables::kParticipations);
  const auto row = parts->FindByKey(Value(task.value()));
  if (!row.has_value())
    return Error{Errc::kNotFound, "unknown task " + task.str()};
  return RecordFromRow(*row);
}

std::vector<ParticipationRecord> ParticipationManager::ActiveForApp(
    AppId app) const {
  std::vector<ParticipationRecord> out;
  for (const ParticipationRecord& rec : AllForApp(app)) {
    if (rec.status == "waiting_for_schedule" || rec.status == "running")
      out.push_back(rec);
  }
  return out;
}

std::vector<ParticipationRecord> ParticipationManager::AllForApp(
    AppId app) const {
  const Table* parts = db_.table(db::tables::kParticipations);
  std::vector<ParticipationRecord> out;
  for (const Row& row : parts->FindWhereEq("app_id", Value(app.value())))
    out.push_back(RecordFromRow(row));
  return out;
}

std::size_t ParticipationManager::TotalCount() const {
  return db_.table(db::tables::kParticipations)->size();
}

std::size_t ParticipationManager::ActiveCount() const {
  const Table* parts = db_.table(db::tables::kParticipations);
  // Both open statuses are indexed; counting two index hits beats a scan.
  return parts->FindWhereEq("status", Value("waiting_for_schedule")).size() +
         parts->FindWhereEq("status", Value("running")).size();
}

void ParticipationManager::ResyncIds() {
  if (auto max = db_.table(db::tables::kParticipations)->MaxPrimaryKey())
    ids_.advance_past(static_cast<std::uint64_t>(max->as_int()));
}

}  // namespace sor::server

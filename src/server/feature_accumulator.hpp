// Streaming feature accumulators for the incremental Data Processor path.
//
// The paper's Data Processor "periodically checks if there are any binary
// sensed data" (§II-B) — an incremental contract. Instead of re-decoding an
// app's entire blob history every pass, AppAccumulatorState keeps the
// sufficient statistics of each feature between passes and is fed only the
// blobs past a per-app raw_id cursor:
//
//   kMeanOfAll           — the exact reading list (RobustMean needs the full
//                          sample for its median/MAD outlier gate, so this is
//                          a faithful reservoir, not an approximation);
//   kMeanOfWindowStddev  — a Welford accumulator over per-window stddevs;
//   kStddevOfWindowMeans — a Welford accumulator over per-window means;
//   kGpsCurvature        — per-task time-ordered GPS tails (curvature is a
//                          whole-track property, so the fixes are kept and
//                          the polyline is re-derived at finalize).
//
// Equivalence contract: ingesting blobs one at a time in raw_id order and
// then finalizing yields bit-for-bit the value the full recompute produces —
// every accumulator consumes readings in the same arrival order the
// decode-everything loop would, and Welford state round-trips exactly via
// RunningStats::FromMoments. tests/test_perf.cpp holds both paths side by
// side to enforce this.
//
// State is serializable (Encode/Decode) and stored in the processor_state
// table, so db snapshot/restore (PR 1 crash recovery) resumes the
// incremental path mid-campaign instead of silently re-ingesting history.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "codec/bytes.hpp"
#include "codec/messages.hpp"
#include "common/result.hpp"
#include "common/stats.hpp"
#include "server/feature_def.hpp"

namespace sor::server {

// Whole-track curvature (mrad/m) averaged across tasks, the method of the
// paper's [17]. Shared by the incremental finalize and the full-recompute
// oracle so both paths run literally the same arithmetic: tuples are sorted
// per task by window start (on a copy — stable, hence idempotent when the
// caller already sorted), fix times are reconstructed evenly over [t, t+Δt],
// the track is 3-point smoothed, and near-stationary vertices are skipped.
// `n_samples` accumulates the fix count of every track that contributed.
[[nodiscard]] double GpsCurvatureOfTracks(
    const std::map<std::uint64_t, std::vector<ReadingTuple>>& gps_by_task,
    std::size_t* n_samples);

// Per-(app, feature) streaming state.
struct FeatureAccState {
  // kMeanOfAll: every matching reading, in arrival order.
  std::vector<double> values;
  // Window methods: Welford over per-window statistics, in arrival order.
  RunningStats window;
  // Sample count reported alongside window-method features (the full path
  // counts readings of *contributing* windows only, so it is tracked here
  // rather than derived from `window`).
  std::uint64_t n_samples = 0;
};

// All streaming state of one application: the raw_id cursor plus one
// FeatureAccState per feature definition (positional — features[j] belongs
// to defs[j]) plus the shared per-task GPS tails.
struct AppAccumulatorState {
  std::int64_t cursor = 0;  // highest raw_id already ingested
  std::vector<FeatureAccState> features;
  std::map<std::uint64_t, std::vector<ReadingTuple>> gps_by_task;

  // Fold one decoded reading tuple (from the upload of `task`) into every
  // feature accumulator. Must be called in raw_id order; `defs` must be the
  // same list (same order) on every call and at Finalize.
  void Ingest(const std::vector<FeatureDef>& defs, std::uint64_t task,
              const ReadingTuple& tuple);

  // Produce the value of feature `j` exactly as the full recompute would.
  [[nodiscard]] double Finalize(std::size_t j, const FeatureDef& def,
                                bool reject_outliers, double z_threshold,
                                std::size_t* n_samples) const;

  // Deterministic binary round-trip; Decode fails (kDecodeError) on version
  // or shape mismatch, e.g. a snapshot taken under a different feature list.
  [[nodiscard]] Bytes Encode() const;
  [[nodiscard]] static Result<AppAccumulatorState> Decode(
      std::span<const std::uint8_t> bytes, std::size_t expected_features);
};

}  // namespace sor::server

// Visualization module (§II-B): "a simple Visualization module, which can
// generate figures for feature data in the database such that users can
// view them easily". Renders ASCII bar charts (the terminal's Fig. 6 /
// Fig. 10) and CSV exports of the feature matrix.
#pragma once

#include <string>
#include <vector>

#include "rank/personalizable_ranker.hpp"

namespace sor::server {

// One horizontal bar chart per feature, places as rows:
//   temperature [degF]
//     Green Lake Trail  |############............|  38.02
//     ...
struct ChartOptions {
  int bar_width = 40;
  bool include_units = true;
};

[[nodiscard]] std::string RenderFeatureBars(const rank::FeatureMatrix& m,
                                            const ChartOptions& opts = {});

// CSV: header "place,<f1>,<f2>,..." then one row per place.
[[nodiscard]] std::string RenderFeatureCsv(const rank::FeatureMatrix& m);

// Render a ranking table like Table I / Table II:
//   User     No. 1          No. 2        No. 3
//   Alice    Cliff Trail    Long Trail   Green Lake Trail
[[nodiscard]] std::string RenderRankingTable(
    const rank::FeatureMatrix& m,
    const std::vector<std::pair<std::string, rank::Ranking>>& user_rankings);

// Explain one user's ranking: per-feature individual rankings (Step 2 of
// Algorithm 2) with their weights, then the aggregated result — the "why"
// behind a recommendation.
//
//   roughness (weight 5): Cliff Trail > Long Trail > Green Lake Trail
//   ...
//   => final: Cliff Trail > Long Trail > Green Lake Trail
[[nodiscard]] std::string RenderRankingExplanation(
    const rank::FeatureMatrix& m, const rank::RankingOutcome& outcome);

}  // namespace sor::server

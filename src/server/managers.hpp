// User Info Manager, Application Manager, Participation Manager (§II-B).
//
// All three are thin, table-backed managers over the shared Database —
// mirroring the prototype, where they are PostgreSQL-backed components of
// the sensing server.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "codec/barcode.hpp"
#include "codec/messages.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "db/database.hpp"
#include "script/analysis/analyzer.hpp"
#include "server/feature_def.hpp"

namespace sor::server {

// --- User Info Manager ----------------------------------------------------
// "maintains user information, including userID, name, token (used to
// uniquely identify a mobile device)".
class UserInfoManager {
 public:
  explicit UserInfoManager(db::Database& database) : db_(database) {}

  Result<UserId> RegisterUser(const std::string& name, const Token& token);
  [[nodiscard]] std::optional<UserId> FindByToken(const Token& token) const;
  [[nodiscard]] Status VerifyUser(UserId user, const Token& token) const;
  [[nodiscard]] std::size_t count() const;

  // After a snapshot restore the id generator must skip every id already in
  // the table (generators are process state, not database state).
  void ResyncIds();

 private:
  db::Database& db_;
  IdGenerator<UserId> ids_;
};

// --- Application Manager ----------------------------------------------------
// "an application is defined as a procedure of acquiring data from sensors
// for a target place ... AppID, its creator (which could be the
// owner/manager/operator of the corresponding target place), and the Lua
// scripts defining the corresponding data acquisition procedure."
struct ApplicationSpec {
  std::string creator;
  PlaceId place;
  std::string place_name;
  GeoPoint location;
  double radius_m = 75.0;
  std::string script;               // SenseScript source
  std::vector<FeatureDef> features; // what the Data Processor computes
  SimInterval period;               // scheduling period [tS, tE]
  int n_instants = 1080;            // N
  double sigma_s = 10.0;            // coverage kernel σ
  // Per-run energy ceiling the static analyzer enforces at registration
  // (SA403). <= 0 disables the check. The default admits every script a
  // 2013-era phone could reasonably run once per scheduled instant.
  double energy_budget_mj = 5000.0;
};

struct ApplicationRecord {
  AppId id;
  ApplicationSpec spec;
  // Statically derived at registration: the sensors the script acquires
  // from. Shipped inside every ScheduleDistribution so phones can refuse
  // tasks their hardware cannot serve.
  std::vector<SensorKind> required_sensors;
  // Encoded information-flow manifest from the same analysis: which sensor
  // kinds flow into each upload site of the script. Shipped verbatim in
  // ScheduleDistribution.
  std::string flow_manifest;
};

class ApplicationManager {
 public:
  explicit ApplicationManager(db::Database& database) : db_(database) {}

  // Validates the script with the full static analyzer before storing:
  // scope/type errors, non-whitelisted calls, unboundable loops and
  // over-budget energy estimates are all rejected here, so a bad script
  // never reaches a phone. On rejection the returned Error carries
  // Errc::kScriptError, the rendered error diagnostics as its message and
  // the first offending line; pass `report` to receive every structured
  // diagnostic (including warnings) from the registration response.
  Result<AppId> CreateApplication(
      const ApplicationSpec& spec,
      script::analysis::AnalysisReport* report = nullptr);
  [[nodiscard]] Result<ApplicationRecord> Get(AppId id) const;
  [[nodiscard]] std::vector<ApplicationRecord> All() const;

  // The 2D barcode deployed at the target place (§II).
  [[nodiscard]] Result<BarcodePayload> BarcodeFor(
      AppId id, const std::string& server_endpoint) const;

  // See UserInfoManager::ResyncIds.
  void ResyncIds();

 private:
  db::Database& db_;
  IdGenerator<AppId> ids_;
};

// --- Participation Manager --------------------------------------------------
// "keeps track of a list of sensing tasks and their information, including
// participating userID, the corresponding token, the corresponding
// application, the location of the target place, the sensing budget and its
// status". Status transitions: waiting_for_schedule → running → finished
// (or error). Budget is decremented as uploads arrive.
struct ParticipationRecord {
  TaskId task;
  UserId user;
  AppId app;
  Token token;
  int budget = 0;
  int budget_left = 0;
  std::string status;
  SimTime arrive;
  std::optional<SimTime> leave;
  // Install generation of the phone that opened this task; see
  // ParticipationRequest::incarnation.
  std::uint32_t incarnation = 1;
};

class ParticipationManager {
 public:
  ParticipationManager(db::Database& database, const SimClock& clock)
      : db_(database), clock_(clock) {}

  // Handle a barcode-triggered request: verify the user's identity and that
  // the claimed location lies within the app's participation radius
  // ("verify whether the user is actually in the target place ... create a
  // task for it if the user is considered as a truthful user").
  Result<TaskId> HandleRequest(const ParticipationRequest& req,
                               const ApplicationRecord& app,
                               const UserInfoManager& users);

  Status MarkRunning(TaskId task);
  Status MarkFinished(TaskId task, SimTime when);
  Status MarkError(TaskId task, const std::string& why);

  // Deduct `executions` acquisitions from the task's remaining budget.
  Status ConsumeBudget(TaskId task, int executions);

  [[nodiscard]] Result<ParticipationRecord> Get(TaskId task) const;
  // Active (not finished/error) participations of one application.
  [[nodiscard]] std::vector<ParticipationRecord> ActiveForApp(AppId app) const;
  [[nodiscard]] std::vector<ParticipationRecord> AllForApp(AppId app) const;

  // Campaign-completion probes across ALL applications, used by hosts that
  // must decide when a campaign is over from traffic alone (the `sor serve`
  // daemon finalizes when every opened participation has closed).
  [[nodiscard]] std::size_t TotalCount() const;
  [[nodiscard]] std::size_t ActiveCount() const;

  // See UserInfoManager::ResyncIds.
  void ResyncIds();

 private:
  db::Database& db_;
  const SimClock& clock_;
  IdGenerator<TaskId> ids_;
};

}  // namespace sor::server

#include "server/visualization.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sor::server {

std::string RenderFeatureBars(const rank::FeatureMatrix& m,
                              const ChartOptions& opts) {
  std::ostringstream out;
  const int n = m.num_places();
  std::size_t name_width = 0;
  for (const std::string& p : m.place_names())
    name_width = std::max(name_width, p.size());

  for (int j = 0; j < m.num_features(); ++j) {
    const auto& spec = m.features()[static_cast<std::size_t>(j)];
    out << spec.name << "\n";
    double lo = 0.0;
    double hi = 0.0;
    for (int i = 0; i < n; ++i) {
      lo = std::min(lo, m.at(i, j));
      hi = std::max(hi, m.at(i, j));
    }
    const double span = hi - lo;
    for (int i = 0; i < n; ++i) {
      const double v = m.at(i, j);
      const double frac = span > 0 ? (v - lo) / span : 1.0;
      const int filled = static_cast<int>(
          std::lround(frac * opts.bar_width));
      out << "  ";
      const std::string& name = m.place_names()[static_cast<std::size_t>(i)];
      out << name << std::string(name_width - name.size() + 2, ' ');
      out << '|';
      for (int b = 0; b < opts.bar_width; ++b)
        out << (b < filled ? '#' : '.');
      char buf[32];
      std::snprintf(buf, sizeof(buf), "| %10.3f", v);
      out << buf << "\n";
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderFeatureCsv(const rank::FeatureMatrix& m) {
  std::ostringstream out;
  out << "place";
  for (const auto& f : m.features()) out << ',' << f.name;
  out << "\n";
  for (int i = 0; i < m.num_places(); ++i) {
    out << m.place_names()[static_cast<std::size_t>(i)];
    for (int j = 0; j < m.num_features(); ++j) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ",%.6g", m.at(i, j));
      out << buf;
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderRankingTable(
    const rank::FeatureMatrix& m,
    const std::vector<std::pair<std::string, rank::Ranking>>& user_rankings) {
  std::ostringstream out;
  std::size_t col = 6;
  for (const std::string& p : m.place_names()) col = std::max(col, p.size());
  for (const auto& [user, _] : user_rankings) col = std::max(col, user.size());
  col += 2;

  auto pad = [&](const std::string& s) {
    return s + std::string(col - s.size(), ' ');
  };

  out << pad("User");
  for (int i = 0; i < m.num_places(); ++i)
    out << pad("No. " + std::to_string(i + 1));
  out << "\n";
  for (const auto& [user, ranking] : user_rankings) {
    out << pad(user);
    for (int pos = 0; pos < ranking.size(); ++pos) {
      out << pad(m.place_names()[static_cast<std::size_t>(
          ranking.item_at(pos))]);
    }
    out << "\n";
  }
  return out.str();
}

std::string RenderRankingExplanation(const rank::FeatureMatrix& m,
                                     const rank::RankingOutcome& outcome) {
  std::ostringstream out;
  auto join = [&](const rank::Ranking& r) {
    std::string s;
    for (int pos = 0; pos < r.size(); ++pos) {
      if (pos) s += " > ";
      s += m.place_names()[static_cast<std::size_t>(r.item_at(pos))];
    }
    return s;
  };
  for (std::size_t j = 0; j < outcome.individual.size(); ++j) {
    const std::string name =
        j < static_cast<std::size_t>(m.num_features())
            ? m.features()[j].name
            : "subjective";  // hybrid ranking appends the community column
    char head[64];
    std::snprintf(head, sizeof(head), "%-16s (weight %g): ", name.c_str(),
                  outcome.weights[j]);
    out << head << join(outcome.individual[j]) << "\n";
  }
  out << "=> final: " << join(outcome.final_ranking) << "\n";
  return out.str();
}

}  // namespace sor::server

#include "world/trail.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sor::world {

Trail Trail::Generate(const TrailSpec& spec) {
  assert(spec.segment_m > 0 && spec.length_m >= spec.segment_m);
  Trail trail;
  Rng rng(spec.seed);

  const int segments =
      std::max(1, static_cast<int>(spec.length_m / spec.segment_m));
  // Per-vertex turn magnitude that realizes the curvature-density target:
  // curvature at a vertex = turn / segment_m, so turn = target * segment.
  const double turn_rad =
      spec.curvature_mrad_per_m / 1000.0 * spec.segment_m;

  double heading = rng.uniform(0.0, 2.0 * kPi);
  double x = 0.0;
  double y = 0.0;
  // Direction of turning flips randomly but with inertia, giving winding
  // paths rather than circles.
  double turn_sign = rng.chance(0.5) ? 1.0 : -1.0;

  trail.points_.reserve(static_cast<std::size_t>(segments) + 1);
  trail.cum_length_m_.reserve(static_cast<std::size_t>(segments) + 1);

  auto append = [&](double dist_along) {
    GeoPoint p = OffsetMeters(spec.start, x, y);
    p.alt_m = spec.altitude_base_m +
              spec.altitude_amplitude_m *
                  std::sin(2.0 * kPi * dist_along / spec.altitude_period_m);
    trail.points_.push_back(p);
    trail.cum_length_m_.push_back(dist_along);
  };

  append(0.0);
  for (int i = 1; i <= segments; ++i) {
    if (rng.chance(0.15)) turn_sign = -turn_sign;
    heading += turn_sign * turn_rad;
    x += spec.segment_m * std::cos(heading);
    y += spec.segment_m * std::sin(heading);
    append(static_cast<double>(i) * spec.segment_m);
  }
  trail.length_m_ = trail.cum_length_m_.back();
  return trail;
}

GeoPoint Trail::PositionAt(double s_m) const {
  assert(!points_.empty());
  if (points_.size() == 1) return points_[0];
  // Ping-pong: reflect s into [0, L].
  const double L = length_m_;
  double s = std::fmod(std::fabs(s_m), 2.0 * L);
  if (s > L) s = 2.0 * L - s;

  const auto it =
      std::upper_bound(cum_length_m_.begin(), cum_length_m_.end(), s);
  const std::size_t hi = std::min<std::size_t>(
      static_cast<std::size_t>(it - cum_length_m_.begin()),
      points_.size() - 1);
  const std::size_t lo = hi - 1;
  const double seg = cum_length_m_[hi] - cum_length_m_[lo];
  const double frac = seg > 0 ? (s - cum_length_m_[lo]) / seg : 0.0;

  const GeoPoint& a = points_[lo];
  const GeoPoint& b = points_[hi];
  GeoPoint p;
  p.lat_deg = a.lat_deg + (b.lat_deg - a.lat_deg) * frac;
  p.lon_deg = a.lon_deg + (b.lon_deg - a.lon_deg) * frac;
  p.alt_m = a.alt_m + (b.alt_m - a.alt_m) * frac;
  return p;
}

double Trail::MeanCurvatureMradPerM() const {
  if (points_.size() < 3) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i + 1 < points_.size(); ++i)
    total += PolylineCurvature(points_[i - 1], points_[i], points_[i + 1]);
  return total / static_cast<double>(points_.size() - 2) * 1000.0;
}

}  // namespace sor::world

// The paper's two field-test scenarios, rebuilt synthetically:
//
//   * three hiking trails in/around Syracuse (§V-A): Green Lake Trail,
//     Long Trail, Cliff Trail — 7 phones each, 11:00–14:00, 5 features;
//   * three coffee shops in Syracuse (§V-B): Tim Hortons, B&N Cafe,
//     Starbucks — 12 phones each, 4 features.
//
// Ground-truth signal parameters are set from the paper's qualitative
// descriptions and reported feature plots (Fig. 6 / Fig. 10): the Cliff
// Trail is rocky and steep, the Green Lake Trail flat, humid and cooler;
// Starbucks is crowded/noisy/dark, Tim Hortons very bright and a little
// colder than the B&N Cafe. The virtual user profiles (Fig. 7 / Fig. 11 —
// Alice, Bob, Chris, David, Emma) are encoded from the §V prose; pushing
// the synthetic field-test data through the real pipeline reproduces the
// Table I / Table II rankings.
#pragma once

#include <vector>

#include "rank/personalizable_ranker.hpp"
#include "world/place.hpp"

namespace sor::world {

struct Scenario {
  PlaceCategory category;
  std::vector<PlaceModel> places;
  std::vector<rank::FeatureSpec> features;       // column order of H
  std::vector<rank::UserProfile> profiles;       // the virtual users
  int phones_per_place = 7;
  double period_s = 10'800.0;                    // 11:00AM–2:00PM
};

[[nodiscard]] Scenario MakeHikingTrailScenario();
[[nodiscard]] Scenario MakeCoffeeShopScenario();

// The ground-truth per-place feature values each scenario is built to
// produce (row-major: places × features, same order as the Scenario
// vectors). Used by tests to check the sensing pipeline's output and by
// EXPERIMENTS.md as the Fig. 6 / Fig. 10 reference series.
[[nodiscard]] std::vector<double> GroundTruthFeatures(const Scenario& s);

}  // namespace sor::world

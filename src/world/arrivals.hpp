// Arrival/leave process for the scheduling simulation (§V-C).
//
// "The arrival (leaving) times of mobile users were randomly generated,
// following a uniform distribution between 0 (the corresponding arrival
// time) and 10800 s": arrival_k ~ U(0, period), leave_k ~ U(arrival_k,
// period).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "sched/coverage.hpp"

namespace sor::world {

enum class ArrivalModel {
  // The paper's model: arrival ~ U(0, period), leave ~ U(arrival, period).
  kUniform,
  // Churn model: arrivals ~ U(0, period) with exponential dwell times
  // (mean `mean_dwell_s`, clipped to the period) — shorter, more
  // realistic visits for robustness checks of the §V-C conclusions.
  kExponentialDwell,
};

struct ArrivalConfig {
  int num_users = 40;
  double period_s = 10'800.0;  // 3 hours
  int budget = 17;             // N^B_k, identical across users as in §V-C
  ArrivalModel model = ArrivalModel::kUniform;
  double mean_dwell_s = 1'800.0;  // kExponentialDwell only
};

// Generate the K user windows for one simulation run.
[[nodiscard]] std::vector<sched::UserWindow> GenerateArrivals(
    const ArrivalConfig& config, Rng& rng);

}  // namespace sor::world

// Ground-truth environmental signals.
//
// Each target place owns one Signal per sensing channel: a base value, a
// slow sinusoidal drift (weather/sunlight over the 3-hour field-test
// window), and a per-reading Gaussian noise level applied by the phone
// when sampling. The per-place *statistics* (what Fig. 6 / Fig. 10 report)
// equal the base values by construction, so the reproduction feeds the
// data-processing and ranking pipeline inputs of the paper's shape.
#pragma once

#include <cmath>

#include "common/geo.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace sor::world {

struct Signal {
  double base = 0.0;
  double drift_amp = 0.0;      // amplitude of the slow sinusoidal drift
  double drift_period_s = 3600.0;
  double drift_phase = 0.0;    // radians
  double noise_stddev = 0.0;   // per-reading sampling noise

  // Smooth (noise-free) ground truth at time t.
  [[nodiscard]] double Truth(SimTime t) const {
    if (drift_amp == 0.0) return base;
    return base + drift_amp * std::sin(2.0 * kPi * t.seconds() /
                                           drift_period_s +
                                       drift_phase);
  }

  // One noisy observation (what a phone's sensor reports).
  [[nodiscard]] double Observe(SimTime t, Rng& rng) const {
    return Truth(t) + (noise_stddev > 0.0 ? rng.gaussian(0.0, noise_stddev)
                                          : 0.0);
  }
};

}  // namespace sor::world

// PlaceModel: the ground truth of one target place.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/ids.hpp"
#include "common/sensor_kind.hpp"
#include "world/signal.hpp"
#include "world/trail.hpp"

namespace sor::world {

enum class PlaceCategory { kCoffeeShop, kHikingTrail };

struct PlaceModel {
  PlaceId id;
  std::string name;
  PlaceCategory category = PlaceCategory::kCoffeeShop;
  GeoPoint center;
  double radius_m = 75.0;  // participation-verification radius

  // Per-channel ground-truth signals (temperature, light, noise, ...).
  std::map<SensorKind, Signal> signals;

  // Accelerometer fluctuation magnitude — the "roughness of road surface"
  // ground truth: phones walking here observe accel readings with this
  // standard deviation inside each Δt window (§V-A method 3).
  double surface_roughness = 0.05;

  // Hiking trails carry geometry (GPS track, altitude profile, curvature).
  std::optional<Trail> trail;

  [[nodiscard]] const Signal* signal(SensorKind kind) const {
    auto it = signals.find(kind);
    return it == signals.end() ? nullptr : &it->second;
  }
};

}  // namespace sor::world

#include "world/scenarios.hpp"

#include "common/features.hpp"

namespace sor::world {

namespace {

using rank::FeaturePreference;
using rank::FeatureSpec;
using rank::PrefDirection;
using rank::UserProfile;

// Syracuse, NY-ish coordinates for flavor; distances are what matter.
constexpr GeoPoint kGreenLake{43.053, -75.970, 150.0};
constexpr GeoPoint kClarkLong{42.996, -76.091, 180.0};
constexpr GeoPoint kClarkCliff{42.994, -76.085, 190.0};
constexpr GeoPoint kTimHortons{43.017, -76.137, 120.0};
constexpr GeoPoint kBnCafe{43.045, -76.073, 130.0};
constexpr GeoPoint kStarbucks{43.041, -76.135, 125.0};

Signal Env(double base, double drift, double noise) {
  Signal s;
  s.base = base;
  s.drift_amp = drift;
  s.drift_period_s = 5400.0;  // slow weather/sunlight swing over the test
  s.noise_stddev = noise;
  return s;
}

// Ground-truth feature targets. Trails (Fig. 6): temperature °F, humidity
// %RH, roughness m/s², curvature mrad/m, altitude-change m. A mid-November
// day in Syracuse: all three cold; Green Lake by the water — most humid and
// a bit cooler; Cliff rocky, twisty and steep; Green Lake "almost entirely
// flat".
struct TrailTruth {
  const char* name;
  GeoPoint center;
  double temp_f, humidity, roughness, curvature, alt_change;
};
constexpr TrailTruth kTrails[] = {
    {"Green Lake Trail", kGreenLake, 38.0, 65.0, 0.15, 18.0, 4.0},
    {"Long Trail", kClarkLong, 43.0, 45.0, 0.35, 38.0, 22.0},
    {"Cliff Trail", kClarkCliff, 45.0, 50.0, 0.60, 55.0, 45.0},
};

// Coffee shops (Fig. 10): temperature °F, brightness lux, noise
// (normalized SPL 0..1), WiFi RSSI dBm. Starbucks crowded/noisy/dark;
// Tim Hortons very bright (big window) but a little colder than B&N.
struct ShopTruth {
  const char* name;
  GeoPoint center;
  double temp_f, brightness, noise, wifi_dbm;
};
constexpr ShopTruth kShops[] = {
    {"Tim Hortons", kTimHortons, 68.0, 900.0, 0.25, -75.0},
    {"B&N Cafe", kBnCafe, 72.0, 500.0, 0.20, -65.0},
    {"Starbucks", kStarbucks, 74.0, 200.0, 0.55, -55.0},
};

}  // namespace

Scenario MakeHikingTrailScenario() {
  Scenario s;
  s.category = PlaceCategory::kHikingTrail;
  s.phones_per_place = 7;  // §V-A: 7 participating Nexus4 phones

  s.features = {
      {features::kTemperature, PrefDirection::kTarget, 73.0},
      {features::kHumidity, PrefDirection::kTarget, 45.0},
      {features::kRoughness, PrefDirection::kMinimize, 0.0},
      {features::kCurvature, PrefDirection::kMinimize, 0.0},
      {features::kAltitudeChange, PrefDirection::kMinimize, 0.0},
  };

  std::uint64_t place_id = 1;
  for (const TrailTruth& t : kTrails) {
    PlaceModel p;
    p.id = PlaceId{place_id};
    p.name = t.name;
    p.category = PlaceCategory::kHikingTrail;
    p.center = t.center;
    p.radius_m = 400.0;  // trails are long; generous verification radius
    p.surface_roughness = t.roughness;
    p.signals[SensorKind::kDroneTemperature] = Env(t.temp_f, 1.0, 0.6);
    p.signals[SensorKind::kDroneHumidity] = Env(t.humidity, 2.0, 1.5);
    // Trails also have ambient channels nobody ranks on; present so the
    // provider stack is exercised uniformly.
    p.signals[SensorKind::kLight] = Env(5000.0, 1500.0, 400.0);
    p.signals[SensorKind::kMicrophone] = Env(0.08, 0.02, 0.02);
    p.signals[SensorKind::kWifi] = Env(-92.0, 1.0, 2.0);

    TrailSpec spec;
    spec.start = t.center;
    spec.length_m = 2500.0;
    spec.curvature_mrad_per_m = t.curvature;
    spec.altitude_base_m = t.center.alt_m;
    // The altitude-change feature is the stddev of windowed altitude means;
    // a sinusoid of amplitude A has stddev A/√2, so scale the target up.
    spec.altitude_amplitude_m = t.alt_change * 1.4142135623730951;
    spec.altitude_period_m = 700.0;
    spec.seed = place_id * 97;
    p.trail = Trail::Generate(spec);

    s.places.push_back(std::move(p));
    ++place_id;
  }

  // Fig. 7 profiles, from the §V-A prose. Feature order matches s.features.
  UserProfile alice;  // experienced hiker who prefers difficult trails
  alice.name = "Alice";
  alice.prefs = {
      FeaturePreference::DontCare(),        // temperature
      FeaturePreference::DontCare(),        // humidity
      FeaturePreference::PreferMax(5),      // roughness: MAX, weight 5
      FeaturePreference::PreferMax(5),      // curvature: MAX, weight 5
      FeaturePreference::PreferMax(5),      // altitude change: MAX, weight 5
  };
  UserProfile bob;  // beginner who likes dry and even trails; humidity
                    // outweighs difficulty ("cares more about humidity")
  bob.name = "Bob";
  bob.prefs = {
      FeaturePreference::DontCare(),
      FeaturePreference::PreferMin(5),  // dry: low humidity, dominant weight
      FeaturePreference::PreferMin(1),  // even/easy, light weights
      FeaturePreference::PreferMin(1),
      FeaturePreference::PreferMin(1),
  };
  UserProfile chris;  // beginner who likes jogging near a lake/sea/river
  chris.name = "Chris";
  chris.prefs = {
      FeaturePreference::DontCare(),
      FeaturePreference::PreferMax(3),  // near water → humid microclimate
      FeaturePreference::PreferMin(2),  // still a beginner: easy trail
      FeaturePreference::PreferMin(2),
      FeaturePreference::PreferMin(2),
  };
  s.profiles = {alice, bob, chris};
  return s;
}

Scenario MakeCoffeeShopScenario() {
  Scenario s;
  s.category = PlaceCategory::kCoffeeShop;
  s.phones_per_place = 12;  // §V-B: 12 participating phones

  s.features = {
      {features::kTemperature, PrefDirection::kTarget, 73.0},
      {features::kBrightness, PrefDirection::kMaximize, 0.0},
      {features::kNoise, PrefDirection::kMinimize, 0.0},
      {features::kWifi, PrefDirection::kMaximize, 0.0},
  };

  std::uint64_t place_id = 101;
  for (const ShopTruth& t : kShops) {
    PlaceModel p;
    p.id = PlaceId{place_id};
    p.name = t.name;
    p.category = PlaceCategory::kCoffeeShop;
    p.center = t.center;
    p.radius_m = 60.0;
    p.surface_roughness = 0.02;  // phones sit on tables
    p.signals[SensorKind::kDroneTemperature] = Env(t.temp_f, 0.5, 0.4);
    p.signals[SensorKind::kDroneLight] = Env(t.brightness, 40.0, 25.0);
    p.signals[SensorKind::kMicrophone] = Env(t.noise, 0.03, 0.03);
    p.signals[SensorKind::kWifi] = Env(t.wifi_dbm, 1.0, 2.5);
    p.signals[SensorKind::kDroneHumidity] = Env(35.0, 2.0, 1.5);
    s.places.push_back(std::move(p));
    ++place_id;
  }

  // Fig. 11 profiles, from the §V-B prose.
  UserProfile david;  // social; prefers not-so-bright and warm; noise: meh
  david.name = "David";
  david.prefs = {
      FeaturePreference::Prefer(75.0, 4),  // warm
      FeaturePreference::PreferMin(4),     // not-so-bright
      FeaturePreference::DontCare(),       // doesn't care about noise
      FeaturePreference::PreferMax(2),     // good WiFi never hurts
  };
  UserProfile emma;  // student; reads/studies in relatively warm shops
  emma.name = "Emma";
  emma.prefs = {
      FeaturePreference::Prefer(72.0, 4),  // relatively warm
      FeaturePreference::PreferMax(3),     // bright enough to read
      FeaturePreference::PreferMin(5),     // quiet above all
      FeaturePreference::PreferMax(2),     // WiFi for studying
  };
  s.profiles = {david, emma};
  return s;
}

std::vector<double> GroundTruthFeatures(const Scenario& s) {
  std::vector<double> out;
  if (s.category == PlaceCategory::kHikingTrail) {
    for (const TrailTruth& t : kTrails) {
      out.insert(out.end(),
                 {t.temp_f, t.humidity, t.roughness, t.curvature,
                  t.alt_change});
    }
  } else {
    for (const ShopTruth& t : kShops) {
      out.insert(out.end(), {t.temp_f, t.brightness, t.noise, t.wifi_dbm});
    }
  }
  return out;
}

}  // namespace sor::world

// Trail geometry: a polyline a hiker walks along.
//
// Built generatively from three target characteristics so that the features
// the Data Processor later computes from GPS fixes land on the intended
// values (the §V-A methods):
//   * curvature  — computed from GPS locations: here, mean turn angle per
//     meter (reported in mrad/m);
//   * altitude profile — sinusoidal elevation along the path; the paper's
//     "altitude change" feature is the standard deviation of windowed
//     altitude means over the hike;
//   * length — total path length in meters.
#pragma once

#include <vector>

#include "common/geo.hpp"
#include "common/rng.hpp"

namespace sor::world {

struct TrailSpec {
  GeoPoint start;
  double length_m = 2000.0;
  double segment_m = 10.0;          // polyline resolution
  double curvature_mrad_per_m = 20; // mean |turn| density target
  double altitude_base_m = 150.0;
  double altitude_amplitude_m = 10.0;  // elevation swing along the trail
  double altitude_period_m = 800.0;    // wavelength of the elevation swing
  std::uint64_t seed = 1;              // turn-direction randomness
};

class Trail {
 public:
  [[nodiscard]] static Trail Generate(const TrailSpec& spec);

  [[nodiscard]] const std::vector<GeoPoint>& points() const { return points_; }
  [[nodiscard]] double length_m() const { return length_m_; }

  // Position at arc-length s from the start; s beyond the end ping-pongs
  // (the hiker turns around), so any s >= 0 is valid.
  [[nodiscard]] GeoPoint PositionAt(double s_m) const;

  // Mean discrete curvature over all interior vertices, mrad/m — the
  // ground-truth value the GPS-derived feature should approximate.
  [[nodiscard]] double MeanCurvatureMradPerM() const;

 private:
  std::vector<GeoPoint> points_;
  std::vector<double> cum_length_m_;  // arc length at each vertex
  double length_m_ = 0.0;
};

}  // namespace sor::world

// PhoneAgent: one simulated smartphone inside a target place.
//
// Implements sensors::SensorEnvironment — the bridge between the Provider
// layer and the physical world. A phone has a mobility model (sitting in a
// coffee shop at a fixed offset, or hiking along the trail at walking
// speed), a small per-device calibration bias per channel, and its own
// deterministic noise stream.
#pragma once

#include <array>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sensors/reading.hpp"
#include "world/place.hpp"

namespace sor::world {

enum class Mobility {
  kStatic,     // seated customer: fixed offset within the place
  kTrailWalk,  // hiker: follows the trail polyline at constant speed
};

struct PhoneAgentConfig {
  PhoneId id;
  Mobility mobility = Mobility::kStatic;
  double walk_speed_mps = 1.3;  // typical hiking pace
  SimTime enter_time;           // when the phone arrived at the place
  std::uint64_t seed = 7;
  // Calibration spread: per-channel constant bias drawn once per phone as
  // N(0, bias_stddev * channel_noise).
  double bias_factor = 0.5;
};

class PhoneAgent final : public sensors::SensorEnvironment {
 public:
  PhoneAgent(const PlaceModel& place, PhoneAgentConfig config);

  [[nodiscard]] double Sample(SensorKind kind, SimTime t) override;
  [[nodiscard]] GeoPoint Position(SimTime t) override;

  [[nodiscard]] PhoneId id() const { return config_.id; }
  [[nodiscard]] const PlaceModel& place() const { return place_; }

 private:
  const PlaceModel& place_;
  PhoneAgentConfig config_;
  Rng rng_;
  GeoPoint static_offset_;  // for kStatic mobility
  std::array<double, kSensorKindCount> bias_{};
};

}  // namespace sor::world

#include "world/arrivals.hpp"

namespace sor::world {

std::vector<sched::UserWindow> GenerateArrivals(const ArrivalConfig& config,
                                                Rng& rng) {
  std::vector<sched::UserWindow> users;
  users.reserve(static_cast<std::size_t>(config.num_users));
  for (int k = 0; k < config.num_users; ++k) {
    const double arrive = rng.uniform(0.0, config.period_s);
    double leave;
    if (config.model == ArrivalModel::kExponentialDwell) {
      // Inverse-CDF exponential dwell, clipped to the period end.
      const double u = rng.uniform(1e-12, 1.0);
      leave = std::min(config.period_s,
                       arrive - config.mean_dwell_s * std::log(u));
    } else {
      leave = rng.uniform(arrive, config.period_s);
    }
    users.push_back(sched::UserWindow{
        SimInterval{SimTime::FromSeconds(arrive), SimTime::FromSeconds(leave)},
        config.budget});
  }
  return users;
}

}  // namespace sor::world

#include "world/phone_agent.hpp"

#include <cmath>

namespace sor::world {

PhoneAgent::PhoneAgent(const PlaceModel& place, PhoneAgentConfig config)
    : place_(place), config_(config), rng_(config.seed) {
  // Fixed seat: uniform offset within half the participation radius.
  const double r = rng_.uniform(0.0, place_.radius_m * 0.5);
  const double theta = rng_.uniform(0.0, 2.0 * kPi);
  static_offset_ = OffsetMeters(place_.center, r * std::cos(theta),
                                r * std::sin(theta));
  static_offset_.alt_m = place_.center.alt_m;

  // Per-device calibration bias, proportional to each channel's noise.
  for (int k = 0; k < kSensorKindCount; ++k) {
    const Signal* sig = place_.signal(static_cast<SensorKind>(k));
    const double spread =
        sig != nullptr ? sig->noise_stddev * config_.bias_factor : 0.0;
    bias_[static_cast<std::size_t>(k)] =
        spread > 0.0 ? rng_.gaussian(0.0, spread) : 0.0;
  }
}

GeoPoint PhoneAgent::Position(SimTime t) {
  if (config_.mobility == Mobility::kTrailWalk && place_.trail.has_value()) {
    const double elapsed_s = (t - config_.enter_time).seconds();
    const double s = std::max(0.0, elapsed_s) * config_.walk_speed_mps;
    GeoPoint p = place_.trail->PositionAt(s);
    // GPS fix noise: ~1.5 m horizontal (modern receivers), ~1 m vertical.
    return GeoPoint{
        p.lat_deg + rng_.gaussian(0.0, 1.5 / kEarthRadiusMeters) * 180.0 / kPi,
        p.lon_deg + rng_.gaussian(0.0, 1.5 / kEarthRadiusMeters) * 180.0 / kPi,
        p.alt_m + rng_.gaussian(0.0, 1.0)};
  }
  return static_offset_;
}

double PhoneAgent::Sample(SensorKind kind, SimTime t) {
  switch (kind) {
    case SensorKind::kAccelerometer:
      // Gravity plus surface-roughness vibration: the paper's roughness
      // feature is the std-dev of these readings within Δt, which equals
      // surface_roughness by construction.
      return 9.81 + rng_.gaussian(0.0, place_.surface_roughness);
    case SensorKind::kGyroscope:
      return rng_.gaussian(0.0, 0.1 + place_.surface_roughness);
    case SensorKind::kCompass:
      return rng_.uniform(0.0, 360.0);
    case SensorKind::kBarometer: {
      // Reported as altitude (m); providers of "altitude" features read it.
      return Position(t).alt_m + rng_.gaussian(0.0, 0.4);
    }
    case SensorKind::kGps:
      return Position(t).alt_m;
    default: {
      const Signal* sig = place_.signal(kind);
      if (sig == nullptr) return 0.0;
      return sig->Observe(t, rng_) +
             bias_[static_cast<std::size_t>(kind)];
    }
  }
}

}  // namespace sor::world

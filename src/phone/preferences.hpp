// Local Preference Manager (§II-A).
//
// "SOR also allows a user to specify how sensors on his/her phone can be
// used to participate in sensing activities. For example, a user may not
// want to expose his/her exact locations to our system, then he/she can
// disallow the phone to return locations provided by GPS."
#pragma once

#include <array>

#include "common/sensor_kind.hpp"

namespace sor::phone {

class LocalPreferenceManager {
 public:
  LocalPreferenceManager() { allowed_.fill(true); }

  void Allow(SensorKind kind, bool allowed) {
    allowed_[static_cast<std::size_t>(kind)] = allowed;
  }
  [[nodiscard]] bool Allows(SensorKind kind) const {
    return allowed_[static_cast<std::size_t>(kind)];
  }

  // Coarse-location mode: GPS fixes are snapped to a ~1 km grid before
  // leaving the phone, so the server can verify presence without learning
  // the exact position.
  void set_coarse_location(bool coarse) { coarse_location_ = coarse; }
  [[nodiscard]] bool coarse_location() const { return coarse_location_; }

 private:
  std::array<bool, kSensorKindCount> allowed_{};
  bool coarse_location_ = false;
};

}  // namespace sor::phone

#include "phone/task_instance.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "script/analysis/analyzer.hpp"
#include "script/analysis/host_api.hpp"
#include "script/parser.hpp"

namespace sor::phone {

// The acquisition vocabulary lives in the analyzer's host-API table
// (script/analysis/host_api.cpp) — one shared row per sensor, so the
// server-side checker and the phone-side registrations can never drift.
std::optional<SensorKind> AcquisitionFunctionSensor(
    const std::string& fn_name) {
  return script::analysis::AcquisitionSensor(fn_name);
}

std::vector<std::string> AcquisitionFunctionNames() {
  std::vector<std::string> names;
  for (const script::analysis::HostSignature& sig :
       script::analysis::HostSignatures()) {
    if (sig.sensor.has_value()) names.emplace_back(sig.name);
  }
  return names;
}

TaskInstance::TaskInstance(TaskId id, AppId app, const std::string& script,
                           std::vector<SimTime> schedule,
                           SimDuration sample_window, int samples_per_window)
    : id_(id),
      app_(app),
      schedule_(std::move(schedule)),
      sample_window_(sample_window),
      samples_per_window_(std::max(1, samples_per_window)) {
  std::sort(schedule_.begin(), schedule_.end());
  // Compile = parse + static analysis. The phone re-checks what the server
  // should already have verified — a defense against a stale or hostile
  // server build — so a script that would crash or never terminate is
  // refused before its first scheduled instant. Warnings only get logged.
  script::analysis::AnalyzerOptions options;
  options.default_samples_per_window = samples_per_window_;
  script::analysis::AnalysisReport report =
      script::analysis::AnalyzeSource(script, options);
  for (const script::analysis::Diagnostic& d : report.diagnostics) {
    if (d.severity == script::analysis::Severity::kWarning)
      SOR_LOG(kWarn, "task", id_.str() << ": " << Render(d));
  }
  if (!report.ok()) {
    status_ = TaskStatus::kError;
    last_error_ = report.RenderErrors();
    ++stats_.script_errors;
    return;
  }
  Result<script::Program> parsed = script::Parse(script);
  if (!parsed.ok()) {
    // Unreachable when the analyzer passed (it parses first), kept as a
    // belt-and-braces guard.
    status_ = TaskStatus::kError;
    last_error_ = parsed.error().str();
    ++stats_.script_errors;
    return;
  }
  program_ = std::move(parsed).value();
  status_ = TaskStatus::kRunning;
}

std::vector<ReadingTuple> TaskInstance::RunDue(
    SimTime now, sensors::SensorManager& sensors,
    const LocalPreferenceManager& prefs) {
  std::vector<ReadingTuple> collected;
  if (status_ != TaskStatus::kRunning) return collected;
  while (next_instant_ < schedule_.size() &&
         schedule_[next_instant_] <= now) {
    ExecuteOnce(schedule_[next_instant_], sensors, prefs, collected);
    ++next_instant_;
  }
  if (AllInstantsDone() && status_ == TaskStatus::kRunning)
    status_ = TaskStatus::kFinished;
  return collected;
}

void TaskInstance::ExecuteOnce(SimTime t, sensors::SensorManager& sensors,
                               const LocalPreferenceManager& prefs,
                               std::vector<ReadingTuple>& out) {
  ++stats_.executions;

  // Bind the acquisition vocabulary to this execution: each call acquires
  // `samples_per_window_` readings within [t, t+Δt], records the (t, Δt, d)
  // tuple for upload, and hands the values back to the script.
  script::HostRegistry host;
  script::InstallStdlib(host);

  // Introspection: scripts can adapt to where they are in the task
  // (e.g. take a final long GPS trace on the last scheduled instant).
  host.Register("get_time_s",
                [t](std::span<const script::Value>) -> Result<script::Value> {
                  return script::Value(t.seconds());
                });
  host.Register("get_sample_window_s",
                [this](std::span<const script::Value>)
                    -> Result<script::Value> {
                  return script::Value(sample_window_.seconds());
                });
  host.Register("get_remaining_instants",
                [this](std::span<const script::Value>)
                    -> Result<script::Value> {
                  return script::Value(static_cast<double>(
                      schedule_.size() - next_instant_ - 1));
                });
  for (const script::analysis::HostSignature& sig :
       script::analysis::HostSignatures()) {
    if (!sig.sensor.has_value()) continue;
    const SensorKind kind = *sig.sensor;
    host.Register(
        std::string(sig.name),
        [this, kind, t, &sensors, &prefs,
         &out](std::span<const script::Value> args)
            -> Result<script::Value> {
          int samples = samples_per_window_;
          if (!args.empty() && args[0].is_number())
            samples = std::max(1, static_cast<int>(args[0].as_number()));
          // Optional second argument: a per-call window override in seconds.
          // Trail scripts use it to spread GPS fixes far enough apart that
          // the curvature estimate is geometry- rather than noise-driven.
          SimDuration window = sample_window_;
          if (args.size() >= 2 && args[1].is_number() &&
              args[1].as_number() > 0)
            window = SimDuration::FromSeconds(args[1].as_number());

          if (!prefs.Allows(kind)) {
            ++stats_.denied;
            // Denied sensors yield an empty list rather than aborting the
            // whole script: partial participation is better than none.
            return script::Value::MakeList();
          }
          sensors::AcquireRequest req{t, window, samples};
          Result<std::vector<sensors::Reading>> readings =
              sensors.Acquire(kind, req);
          if (!readings.ok()) {
            ++stats_.failed;
            SOR_LOG(kDebug, "task",
                    "acquisition failed: " << readings.error().str());
            return script::Value::MakeList();
          }
          ++stats_.acquisitions;

          ReadingTuple tuple;
          tuple.kind = kind;
          tuple.t = t;
          tuple.dt = window;
          script::List values;
          for (const sensors::Reading& r : readings.value()) {
            tuple.values.push_back(r.value);
            values.emplace_back(r.value);
            if (r.location.has_value()) {
              GeoPoint loc = *r.location;
              if (prefs.coarse_location()) {
                // Snap to a ~1 km grid (0.01 degrees): coarse mode.
                loc.lat_deg = std::round(loc.lat_deg * 100.0) / 100.0;
                loc.lon_deg = std::round(loc.lon_deg * 100.0) / 100.0;
              }
              tuple.locations.push_back(loc);
            }
          }
          out.push_back(std::move(tuple));
          return script::Value(std::make_shared<script::List>(
              std::move(values)));
        });
  }

  script::Interpreter interp(host);
  Result<script::ExecutionResult> r = interp.Execute(program_);
  if (!r.ok()) {
    ++stats_.script_errors;
    last_error_ = r.error().str();
    status_ = TaskStatus::kError;
    SOR_LOG(kWarn, "task", "script failed: " << last_error_);
  }
}

}  // namespace sor::phone

#include "phone/preferences.hpp"

// Header-only today; the translation unit anchors the library target and
// keeps room for persisted preferences later.

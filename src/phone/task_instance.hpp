// TaskInstance — one running sensing task on the phone (§II-A).
//
// "Each incoming task will be served by a task instance ... A task instance
// is a self-contained component, which maintains its own status (e.g.,
// running, waiting for data, etc), call[s] proper API functions to acquire
// data from sensors, and manages data collected from sensors."
//
// The task owns the parsed SenseScript program and its schedule Φ_k. When
// the simulation clock reaches a scheduled instant, the task executes the
// script with the data-acquisition host functions (get_temperature,
// get_location, ...) bound to the phone's SensorManager; every successful
// acquisition is recorded as a ReadingTuple (t, Δt, d) ready for upload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codec/messages.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "phone/preferences.hpp"
#include "script/interpreter.hpp"
#include "sensors/manager.hpp"

namespace sor::phone {

enum class TaskStatus {
  kWaitingForSchedule,
  kRunning,
  kFinished,
  kError,
};

[[nodiscard]] constexpr const char* to_string(TaskStatus s) {
  switch (s) {
    case TaskStatus::kWaitingForSchedule: return "waiting_for_schedule";
    case TaskStatus::kRunning: return "running";
    case TaskStatus::kFinished: return "finished";
    case TaskStatus::kError: return "error";
  }
  return "?";
}

struct TaskRunStats {
  std::uint64_t executions = 0;        // scheduled instants executed
  std::uint64_t acquisitions = 0;      // successful get_* calls
  std::uint64_t denied = 0;            // blocked by local preferences
  std::uint64_t failed = 0;            // sensor unavailable / timeout
  std::uint64_t script_errors = 0;
};

class TaskInstance {
 public:
  // `script` is compiled immediately (parse + static analysis); a parse
  // failure or any analyzer error puts the task in kError and last_error()
  // carries the rendered diagnostics.
  TaskInstance(TaskId id, AppId app, const std::string& script,
               std::vector<SimTime> schedule, SimDuration sample_window,
               int samples_per_window);

  [[nodiscard]] TaskId id() const { return id_; }
  [[nodiscard]] AppId app() const { return app_; }
  [[nodiscard]] TaskStatus status() const { return status_; }
  [[nodiscard]] const TaskRunStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& last_error() const { return last_error_; }
  [[nodiscard]] const std::vector<SimTime>& schedule() const {
    return schedule_;
  }

  // Execute all scheduled instants with time <= now that have not yet run.
  // Produces the ReadingTuples collected by those executions (the caller —
  // the frontend — uploads them). `sensors` and `prefs` belong to the
  // phone; the task only borrows them per execution.
  [[nodiscard]] std::vector<ReadingTuple> RunDue(
      SimTime now, sensors::SensorManager& sensors,
      const LocalPreferenceManager& prefs);

  // Mark the task finished (user left the place / server said stop).
  void Finish() {
    if (status_ != TaskStatus::kError) status_ = TaskStatus::kFinished;
  }

  [[nodiscard]] bool AllInstantsDone() const {
    return next_instant_ >= schedule_.size();
  }

 private:
  // Run the script once for the instant at `t`, collecting tuples.
  void ExecuteOnce(SimTime t, sensors::SensorManager& sensors,
                   const LocalPreferenceManager& prefs,
                   std::vector<ReadingTuple>& out);

  TaskId id_;
  AppId app_;
  script::Program program_;
  std::vector<SimTime> schedule_;  // sorted
  std::size_t next_instant_ = 0;
  SimDuration sample_window_;
  int samples_per_window_;
  TaskStatus status_ = TaskStatus::kWaitingForSchedule;
  TaskRunStats stats_;
  std::string last_error_;
};

// Maps a data-acquisition function name (as callable from SenseScript, the
// paper's get_light_readings()/get_location() convention) to the sensor it
// reads. Shared with the server side, which validates scripts against the
// supported-sensor list before distributing them.
[[nodiscard]] std::optional<SensorKind> AcquisitionFunctionSensor(
    const std::string& fn_name);
[[nodiscard]] std::vector<std::string> AcquisitionFunctionNames();

}  // namespace sor::phone

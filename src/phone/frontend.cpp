#include "phone/frontend.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.hpp"

namespace sor::phone {

MobileFrontend::MobileFrontend(FrontendConfig config,
                               net::LoopbackNetwork& network,
                               sensors::SensorEnvironment& env,
                               const SimClock& clock)
    : config_(std::move(config)), network_(network), env_(env), clock_(clock),
      retry_rng_(config_.retry_seed) {
  if (config_.has_sensordrone) bluetooth_.Pair();
  // Register a Provider for every supported sensor (§II-A: "Currently, SOR
  // can support all sensors available on a Google Nexus4 smartphone and all
  // sensors available on a Sensordrone").
  for (int k = 0; k < kSensorKindCount; ++k) {
    const auto kind = static_cast<SensorKind>(k);
    sensors_.RegisterProvider(sensors::MakeProvider(kind, env_, bluetooth_));
  }
  network_.Register(EndpointName(), this);
}

MobileFrontend::~MobileFrontend() { network_.Unregister(EndpointName()); }

void MobileFrontend::AttachObservability(obs::MetricsRegistry* registry,
                                         obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ != nullptr) stream_ = tracer_->RegisterStream(EndpointName());
  if (registry == nullptr) {
    obs_ = PhoneCounters{};
    return;
  }
  const auto per_thread = obs::Sharding::kPerThread;
  obs_.uploads_sent = &registry->counter("phone.uploads_sent", per_thread);
  obs_.upload_failures =
      &registry->counter("phone.upload_failures", per_thread);
  obs_.uploads_retried =
      &registry->counter("phone.uploads_retried", per_thread);
  obs_.uploads_evicted =
      &registry->counter("phone.uploads_evicted", per_thread);
  obs_.uploads_throttled =
      &registry->counter("phone.uploads_throttled", per_thread);
  obs_.uploads_abandoned =
      &registry->counter("phone.uploads_abandoned", per_thread);
  obs_.leaves_retried = &registry->counter("phone.leaves_retried", per_thread);
  obs_.schedules_received =
      &registry->counter("phone.schedules_received", per_thread);
  obs_.schedules_refused =
      &registry->counter("phone.schedules_refused", per_thread);
  obs_.pings_answered = &registry->counter("phone.pings_answered", per_thread);
  obs_.decode_failures =
      &registry->counter("phone.decode_failures", per_thread);
  obs_.tuples_collected =
      &registry->counter("phone.tuples_collected", per_thread);
  obs_.upload_attempts = &registry->histogram(
      "phone.upload_attempts", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}, per_thread);
}

void MobileFrontend::Trace(obs::EventKind kind, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) {
  if (tracer_ != nullptr && tracer_->enabled())
    tracer_->Emit(stream_, clock_.now(), kind, a, b, c);
}

GeoPoint MobileFrontend::ReportedLocation() {
  GeoPoint p = env_.Position(clock_.now());
  if (prefs_.coarse_location()) {
    p.lat_deg = std::round(p.lat_deg * 100.0) / 100.0;
    p.lon_deg = std::round(p.lon_deg * 100.0) / 100.0;
  }
  return p;
}

Result<TaskId> MobileFrontend::ScanBarcode(const BarcodePayload& payload,
                                           int budget) {
  if (budget <= 0)
    return Error{Errc::kInvalidArgument, "sensing budget must be positive"};
  if (!prefs_.Allows(SensorKind::kGps))
    return Error{Errc::kPermissionDenied,
                 "participation requires location verification, but GPS is "
                 "disabled in local preferences"};
  server_ = payload.server;

  ParticipationRequest req;
  req.user = config_.user_id;
  req.token = config_.token;
  req.app = payload.app;
  req.location = ReportedLocation();
  req.budget = budget;
  req.scan_time = clock_.now();
  req.incarnation = incarnation_;

  Result<Message> reply = network_.Send(EndpointName(), server_, req);
  if (!reply.ok()) return reply.error();
  const auto* accepted = std::get_if<ParticipationReply>(&reply.value());
  if (accepted == nullptr)
    return Error{Errc::kDecodeError, "unexpected reply to participation"};
  if (!accepted->accepted)
    return Error{Errc::kNotInPlace, accepted->reason};
  last_join_ = JoinInfo{payload, budget};
  SOR_LOG(kInfo, "frontend",
          config_.user_name << " joined app " << payload.app.str()
                            << " as task " << accepted->task.str());
  return accepted->task;
}

void MobileFrontend::Crash() {
  // Volatile state dies with the process; the seq counter, incarnation and
  // the scanned join survive in "app-private storage" (see header).
  tasks_.clear();
  pending_uploads_.clear();
  pending_leaves_.clear();
  retries_spent_.clear();
  pace_until_ = SimTime{};
  Trace(obs::EventKind::kNodeCrashed, incarnation_);
  SOR_LOG(kWarn, "frontend",
          config_.user_name << " crashed (incarnation " << incarnation_
                            << "); queued work lost, seq counter kept");
}

Result<TaskId> MobileFrontend::Restart() {
  Trace(obs::EventKind::kNodeRestarted, incarnation_);
  if (!last_join_.has_value())
    return Error{Errc::kInvalidArgument,
                 "restart without a prior join: nothing to resume"};
  // Same incarnation ⇒ the server treats this as the idempotent rejoin of
  // the existing participation and re-pushes the schedule.
  return ScanBarcode(last_join_->payload, last_join_->budget);
}

void MobileFrontend::Uninstall() {
  tasks_.clear();
  pending_uploads_.clear();
  pending_leaves_.clear();
  retries_spent_.clear();
  pace_until_ = SimTime{};
  next_seq_ = 1;       // seq space restarts: a new install, a new task
  last_join_.reset();  // the new install has never scanned anything
  ++incarnation_;
  SOR_LOG(kWarn, "frontend",
          config_.user_name << " uninstalled; next install is incarnation "
                            << incarnation_);
}

Result<TaskId> MobileFrontend::ScanBarcodeText(const std::string& text,
                                               int budget) {
  Result<BarcodePayload> payload = DecodeBarcodeText(text);
  if (!payload.ok()) return payload.error();
  return ScanBarcode(payload.value(), budget);
}

Result<TaskId> MobileFrontend::ScanBarcodeMatrix(const BitMatrix& matrix,
                                                 int budget) {
  // Qualified call: the member function shadows the codec free function.
  Result<BarcodePayload> payload = sor::ScanBarcodeMatrix(matrix);
  if (!payload.ok()) return payload.error();
  return ScanBarcode(payload.value(), budget);
}

Status MobileFrontend::LeavePlace() {
  if (server_.empty())
    return Status(Errc::kInvalidArgument, "not participating anywhere");
  Status overall = Status::Ok();
  for (auto& [id, task] : tasks_) {
    // Notify the server for every task — including those that already
    // finished locally (all instants executed): the Participation Manager
    // flips its status to "finished" only on this notification.
    LeaveNotification note{id, config_.user_id, clock_.now()};
    Result<Message> reply = network_.Send(EndpointName(), server_, note);
    if (!reply.ok()) {
      // The server may never have heard this; queue it so Tick() keeps
      // retrying until it is acknowledged (OnLeave is idempotent).
      pending_leaves_.push_back(note);
      Trace(obs::EventKind::kLeaveQueued, id.value());
      overall = Status(reply.error());
    } else {
      Trace(obs::EventKind::kLeaveAcked, id.value());
    }
    task.Finish();
  }
  return overall;
}

SimDuration MobileFrontend::Backoff(int attempts) {
  std::int64_t delay = config_.retry_base.ms;
  for (int i = 1; i < attempts && delay < config_.retry_max.ms; ++i)
    delay *= 2;
  delay = std::min(delay, config_.retry_max.ms);
  // Jitter into [50%, 100%] so a fleet of phones that failed together does
  // not retry in lockstep; the stream is seeded, so runs stay replayable.
  const double jittered = static_cast<double>(delay) *
                          retry_rng_.uniform(0.5, 1.0);
  return SimDuration{std::max<std::int64_t>(1,
      static_cast<std::int64_t>(jittered))};
}

void MobileFrontend::SendUploadAsync(TaskId task, std::uint64_t seq,
                                     std::vector<ReadingTuple> batches,
                                     int attempts, bool fresh) {
  SensedDataUpload up{task, config_.user_id, batches, seq};
  // The callback keeps the batch: an upload is settled only when the Ack
  // echoes our seq; anything else (error, wrong type, stale ack) keeps the
  // data phone-side for a retry. A ThrottleReply echoing our seq is the
  // server refusing ADMISSION — the data never landed, but the link works;
  // honor the hint instead of treating it as a loss.
  network_.SendAsync(
      EndpointName(), server_, up,
      [this, task, seq, attempts, fresh,
       batches = std::move(batches)](Result<Message> r) mutable {
        if (r.ok()) {
          if (const auto* ack = std::get_if<Ack>(&r.value());
              ack != nullptr && ack->seq == seq) {
            ++stats_.uploads_sent;
            if (obs_.uploads_sent != nullptr) obs_.uploads_sent->Inc();
            if (obs_.upload_attempts != nullptr)
              obs_.upload_attempts->Observe(
                  static_cast<double>(attempts + 1));
            Trace(obs::EventKind::kUploadAcked, task.value(), seq);
            return;
          }
          if (const auto* throttle = std::get_if<ThrottleReply>(&r.value());
              throttle != nullptr && throttle->seq == seq) {
            // Re-queue at the hinted time with attempts UNCHANGED:
            // throttles count against neither the backoff curve nor the
            // retry budget (the server asked us to wait; we did nothing
            // wrong).
            NoteThrottle(task, seq, throttle->retry_after);
            EnqueueUploadAt(task, seq, std::move(batches), attempts,
                            clock_.now() + throttle->retry_after);
            return;
          }
        }
        ++stats_.upload_failures;
        if (obs_.upload_failures != nullptr) obs_.upload_failures->Inc();
        Trace(obs::EventKind::kUploadFailed, task.value(), seq,
              static_cast<std::uint64_t>(attempts + 1));
        // A fresh batch always earns its first retry; a failed re-send of a
        // QUEUED upload spends campaign budget first.
        if (fresh || SpendRetryBudget(task)) {
          EnqueueUpload(task, seq, std::move(batches), attempts + 1);
        } else {
          // Per-campaign retry budget spent: give the upload up for good
          // rather than let one dead campaign churn the queue forever.
          ++stats_.uploads_abandoned;
          if (obs_.uploads_abandoned != nullptr) obs_.uploads_abandoned->Inc();
          Trace(obs::EventKind::kUploadEvicted, task.value(), seq,
                static_cast<std::uint64_t>(attempts + 1));
          SOR_LOG(kWarn, "frontend",
                  "upload abandoned: phone=" << config_.token.value
                      << " task=" << task.str() << " seq=" << seq
                      << " attempts=" << attempts + 1
                      << " retry_budget=" << config_.retry_budget);
        }
      });
}

void MobileFrontend::NoteThrottle(TaskId task, std::uint64_t seq,
                                  SimDuration retry_after) {
  ++stats_.uploads_throttled;
  if (obs_.uploads_throttled != nullptr) obs_.uploads_throttled->Inc();
  Trace(obs::EventKind::kUploadThrottled, task.value(), seq,
        static_cast<std::uint64_t>(retry_after.ms));
  // Adaptive pacing: one throttle quiets the WHOLE queue until the hinted
  // time — hammering an overloaded server with the other queued uploads
  // would only earn more throttles.
  const SimTime resume = clock_.now() + retry_after;
  if (resume > pace_until_) pace_until_ = resume;
}

bool MobileFrontend::SpendRetryBudget(TaskId task) {
  if (config_.retry_budget <= 0) return true;  // unlimited
  int& spent = retries_spent_[task];
  if (spent >= config_.retry_budget) return false;
  ++spent;
  return true;
}

void MobileFrontend::EnqueueUpload(TaskId task, std::uint64_t seq,
                                   std::vector<ReadingTuple> batches,
                                   int attempts) {
  const SimTime next = clock_.now() + Backoff(attempts);
  EnqueueUploadAt(task, seq, std::move(batches), attempts, next);
}

void MobileFrontend::EnqueueUploadAt(TaskId task, std::uint64_t seq,
                                     std::vector<ReadingTuple> batches,
                                     int attempts, SimTime next_attempt) {
  if (pending_uploads_.size() >= config_.max_pending_uploads &&
      !pending_uploads_.empty()) {
    const PendingUpload& oldest = pending_uploads_.front();
    Trace(obs::EventKind::kUploadEvicted, oldest.task.value(), oldest.seq);
    // Eviction policy (docs/protocol.md): drop the OLDEST queued upload —
    // recent data beats stale data, and the bound keeps a long partition
    // from growing memory without limit.
    SOR_LOG(kWarn, "frontend",
            "upload evicted: phone=" << config_.token.value
                << " task=" << oldest.task.str() << " seq=" << oldest.seq
                << " attempts=" << oldest.attempts
                << " queue_bound=" << config_.max_pending_uploads);
    pending_uploads_.pop_front();  // evict the oldest; the bound holds
    ++stats_.uploads_dropped;
    if (obs_.uploads_evicted != nullptr) obs_.uploads_evicted->Inc();
  }
  PendingUpload p;
  p.task = task;
  p.seq = seq;
  p.batches = std::move(batches);
  p.attempts = attempts;
  p.next_attempt = next_attempt;
  pending_uploads_.push_back(std::move(p));
}

void MobileFrontend::Tick() {
  const SimTime now = clock_.now();

  // Queued leave notifications first: the server needs to know who is gone
  // before it replans anything. The queue is moved out so a failure's
  // re-queue (which may run inline outside an epoch) never mutates the
  // container being walked.
  if (!pending_leaves_.empty()) {
    std::vector<LeaveNotification> leaves;
    leaves.swap(pending_leaves_);
    for (const LeaveNotification& note : leaves) {
      network_.SendAsync(
          EndpointName(), server_, note, [this, note](Result<Message> reply) {
            if (reply.ok()) {
              ++stats_.leaves_retried;
              if (obs_.leaves_retried != nullptr) obs_.leaves_retried->Inc();
              Trace(obs::EventKind::kLeaveAcked, note.task.value());
            } else {
              // Still unheard; keep retrying (OnLeave is idempotent).
              pending_leaves_.push_back(note);
            }
          });
    }
  }

  // Throttle pacing: while the gate is closed the upload queue stays
  // quiet. Leaves (above) still flush — the server always admits them —
  // and sensing (below) still runs, queueing its data for later. In epoch
  // mode a throttle earned THIS tick closes the gate at the merge, so
  // pacing starts from the next tick.
  const bool paced = now < pace_until_;

  // Re-send queued uploads whose backoff has elapsed, oldest first. Each
  // keeps its original seq, so the server recognizes a retry of data it
  // already stored (the lost-Ack case) and just re-acknowledges.
  const std::size_t due = paced ? 0 : pending_uploads_.size();
  // An inline re-enqueue can evict the oldest entry when the queue is
  // full, so the queue may shrink mid-loop; never pop past what is there.
  for (std::size_t i = 0; i < due && !pending_uploads_.empty(); ++i) {
    if (now < pace_until_) break;  // an inline throttle closed the gate
    PendingUpload p = std::move(pending_uploads_.front());
    pending_uploads_.pop_front();
    if (p.next_attempt > now) {
      pending_uploads_.push_back(std::move(p));  // not yet; keep queued
      continue;
    }
    if (p.attempts > 0) {
      ++stats_.uploads_retried;
      if (obs_.uploads_retried != nullptr) obs_.uploads_retried->Inc();
    }
    SendUploadAsync(p.task, p.seq, std::move(p.batches), p.attempts,
                    /*fresh=*/false);
  }

  for (auto& [id, task] : tasks_) {
    std::vector<ReadingTuple> collected = task.RunDue(now, sensors_, prefs_);
    if (collected.empty()) continue;
    const std::uint64_t seq = next_seq_++;
    if (obs_.tuples_collected != nullptr)
      obs_.tuples_collected->Inc(collected.size());
    Trace(obs::EventKind::kSenseBatch, id.value(), seq, collected.size());
    if (now < pace_until_) {
      // Gate closed: don't even try — queue the fresh batch to transmit
      // once the gate reopens.
      EnqueueUploadAt(id, seq, std::move(collected), 0, pace_until_);
      continue;
    }
    SendUploadAsync(id, seq, std::move(collected), 0, /*fresh=*/true);
  }
  last_tick_ = now;
}

const TaskInstance* MobileFrontend::task(TaskId id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

Bytes MobileFrontend::HandleFrame(std::span<const std::uint8_t> frame) {
  Result<Message> decoded = DecodeFrame(frame);
  if (!decoded.ok()) {
    ++stats_.decode_failures;
    if (obs_.decode_failures != nullptr) obs_.decode_failures->Inc();
    return EncodeFrame(ErrorReply{
        static_cast<std::uint8_t>(decoded.error().code),
        decoded.error().message});
  }
  return EncodeFrame(HandleMessage(decoded.value()));
}

Message MobileFrontend::HandleMessage(const Message& m) {
  if (const auto* sched = std::get_if<ScheduleDistribution>(&m)) {
    // Capability gate: if the script needs a sensor this phone does not
    // have (e.g. the Sensordrone was never paired), refuse the task up
    // front so the scheduler can mark it errored and replan, instead of
    // collecting empty acquisitions for the whole campaign.
    for (SensorKind kind : sched->required_sensors) {
      if (!sensors_.Supports(kind)) {
        ++stats_.schedules_refused;
        if (obs_.schedules_refused != nullptr) obs_.schedules_refused->Inc();
        Trace(obs::EventKind::kTaskRefused, sched->task.value(),
              static_cast<std::uint64_t>(kind));
        SOR_LOG(kWarn, "frontend",
                "refusing task " << sched->task.str() << ": no provider for '"
                                 << to_string(kind) << "'");
        // kUnsupported (not kUnavailable): the transport uses kUnavailable
        // for transient partitions, while a missing sensor is permanent —
        // the scheduler marks the participation as errored on this code.
        return ErrorReply{
            static_cast<std::uint8_t>(Errc::kUnsupported),
            "phone lacks required sensor '" +
                std::string(to_string(kind)) + "'"};
      }
    }
    // New or refreshed schedule. On refresh, drop instants that are already
    // in the past so re-planning never re-executes old work.
    std::vector<SimTime> instants;
    for (SimTime t : sched->instants) {
      if (t > last_tick_) instants.push_back(t);
    }
    ++stats_.schedules_received;
    if (obs_.schedules_received != nullptr) obs_.schedules_received->Inc();
    Trace(obs::EventKind::kTaskScheduled, sched->task.value(),
          instants.size());
    tasks_.insert_or_assign(
        sched->task,
        TaskInstance(sched->task, sched->app, sched->script,
                     std::move(instants), sched->sample_window,
                     sched->samples_per_window));
    SOR_LOG(kDebug, "frontend",
            "schedule for task " << sched->task.str() << ": "
                                 << sched->instants.size() << " instants");
    return Ack{sched->task.value()};
  }
  if (std::get_if<Ping>(&m) != nullptr) {
    ++stats_.pings_answered;
    if (obs_.pings_answered != nullptr) obs_.pings_answered->Inc();
    return PingReply{config_.phone_id, ReportedLocation(), clock_.now()};
  }
  return ErrorReply{static_cast<std::uint8_t>(Errc::kInvalidArgument),
                    "phone cannot handle this message type"};
}

}  // namespace sor::phone

#include "phone/frontend.hpp"

#include <cmath>

#include "common/log.hpp"

namespace sor::phone {

MobileFrontend::MobileFrontend(FrontendConfig config,
                               net::LoopbackNetwork& network,
                               sensors::SensorEnvironment& env,
                               const SimClock& clock)
    : config_(std::move(config)), network_(network), env_(env), clock_(clock) {
  if (config_.has_sensordrone) bluetooth_.Pair();
  // Register a Provider for every supported sensor (§II-A: "Currently, SOR
  // can support all sensors available on a Google Nexus4 smartphone and all
  // sensors available on a Sensordrone").
  for (int k = 0; k < kSensorKindCount; ++k) {
    const auto kind = static_cast<SensorKind>(k);
    sensors_.RegisterProvider(sensors::MakeProvider(kind, env_, bluetooth_));
  }
  network_.Register(EndpointName(), this);
}

MobileFrontend::~MobileFrontend() { network_.Unregister(EndpointName()); }

GeoPoint MobileFrontend::ReportedLocation() {
  GeoPoint p = env_.Position(clock_.now());
  if (prefs_.coarse_location()) {
    p.lat_deg = std::round(p.lat_deg * 100.0) / 100.0;
    p.lon_deg = std::round(p.lon_deg * 100.0) / 100.0;
  }
  return p;
}

Result<TaskId> MobileFrontend::ScanBarcode(const BarcodePayload& payload,
                                           int budget) {
  if (budget <= 0)
    return Error{Errc::kInvalidArgument, "sensing budget must be positive"};
  if (!prefs_.Allows(SensorKind::kGps))
    return Error{Errc::kPermissionDenied,
                 "participation requires location verification, but GPS is "
                 "disabled in local preferences"};
  server_ = payload.server;

  ParticipationRequest req;
  req.user = config_.user_id;
  req.token = config_.token;
  req.app = payload.app;
  req.location = ReportedLocation();
  req.budget = budget;
  req.scan_time = clock_.now();

  Result<Message> reply = network_.Send(server_, req);
  if (!reply.ok()) return reply.error();
  const auto* accepted = std::get_if<ParticipationReply>(&reply.value());
  if (accepted == nullptr)
    return Error{Errc::kDecodeError, "unexpected reply to participation"};
  if (!accepted->accepted)
    return Error{Errc::kNotInPlace, accepted->reason};
  SOR_LOG(kInfo, "frontend",
          config_.user_name << " joined app " << payload.app.str()
                            << " as task " << accepted->task.str());
  return accepted->task;
}

Result<TaskId> MobileFrontend::ScanBarcodeText(const std::string& text,
                                               int budget) {
  Result<BarcodePayload> payload = DecodeBarcodeText(text);
  if (!payload.ok()) return payload.error();
  return ScanBarcode(payload.value(), budget);
}

Result<TaskId> MobileFrontend::ScanBarcodeMatrix(const BitMatrix& matrix,
                                                 int budget) {
  // Qualified call: the member function shadows the codec free function.
  Result<BarcodePayload> payload = sor::ScanBarcodeMatrix(matrix);
  if (!payload.ok()) return payload.error();
  return ScanBarcode(payload.value(), budget);
}

Status MobileFrontend::LeavePlace() {
  if (server_.empty())
    return Status(Errc::kInvalidArgument, "not participating anywhere");
  Status overall = Status::Ok();
  for (auto& [id, task] : tasks_) {
    // Notify the server for every task — including those that already
    // finished locally (all instants executed): the Participation Manager
    // flips its status to "finished" only on this notification.
    LeaveNotification note{id, config_.user_id, clock_.now()};
    Result<Message> reply = network_.Send(server_, note);
    if (!reply.ok()) overall = Status(reply.error());
    task.Finish();
  }
  return overall;
}

void MobileFrontend::Tick() {
  const SimTime now = clock_.now();

  // Retry uploads that previously failed (e.g. a dropped frame).
  for (auto it = pending_upload_.begin(); it != pending_upload_.end();) {
    SensedDataUpload up{it->first, config_.user_id, it->second};
    Result<Message> r = network_.Send(server_, up);
    if (r.ok()) {
      ++stats_.uploads_sent;
      it = pending_upload_.erase(it);
    } else {
      ++stats_.upload_failures;
      ++it;
    }
  }

  for (auto& [id, task] : tasks_) {
    std::vector<ReadingTuple> collected = task.RunDue(now, sensors_, prefs_);
    if (collected.empty()) continue;
    SensedDataUpload up{id, config_.user_id, collected};
    Result<Message> r = network_.Send(server_, up);
    if (r.ok()) {
      ++stats_.uploads_sent;
    } else {
      ++stats_.upload_failures;
      // Keep the data; retry on the next tick (store-and-forward).
      auto& queue = pending_upload_[id];
      queue.insert(queue.end(), collected.begin(), collected.end());
    }
  }
  last_tick_ = now;
}

const TaskInstance* MobileFrontend::task(TaskId id) const {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : &it->second;
}

Bytes MobileFrontend::HandleFrame(std::span<const std::uint8_t> frame) {
  Result<Message> decoded = DecodeFrame(frame);
  if (!decoded.ok()) {
    ++stats_.decode_failures;
    return EncodeFrame(ErrorReply{
        static_cast<std::uint8_t>(decoded.error().code),
        decoded.error().message});
  }
  return EncodeFrame(HandleMessage(decoded.value()));
}

Message MobileFrontend::HandleMessage(const Message& m) {
  if (const auto* sched = std::get_if<ScheduleDistribution>(&m)) {
    // New or refreshed schedule. On refresh, drop instants that are already
    // in the past so re-planning never re-executes old work.
    std::vector<SimTime> instants;
    for (SimTime t : sched->instants) {
      if (t > last_tick_) instants.push_back(t);
    }
    ++stats_.schedules_received;
    tasks_.insert_or_assign(
        sched->task,
        TaskInstance(sched->task, sched->app, sched->script,
                     std::move(instants), sched->sample_window,
                     sched->samples_per_window));
    SOR_LOG(kDebug, "frontend",
            "schedule for task " << sched->task.str() << ": "
                                 << sched->instants.size() << " instants");
    return Ack{sched->task.value()};
  }
  if (std::get_if<Ping>(&m) != nullptr) {
    ++stats_.pings_answered;
    return PingReply{config_.phone_id, ReportedLocation(), clock_.now()};
  }
  return ErrorReply{static_cast<std::uint8_t>(Errc::kInvalidArgument),
                    "phone cannot handle this message type"};
}

}  // namespace sor::phone

// MobileFrontend — the phone-side application (§II-A, Fig. 3).
//
// Wires together the Message Handler (a net::Endpoint speaking the binary
// SOR protocol), the Local Preference Manager, the Sensing Task Manager
// (the task map + RunDue pump), the Script Interpreter (inside
// TaskInstance), and the Sensor Manager with one Provider per supported
// sensor (all Nexus4 sensors + the Sensordrone suite over the Bluetooth
// link).
//
// The user-facing trigger is ScanBarcode*: decode the 2D barcode, send a
// ParticipationRequest with the phone's (preference-filtered) location and
// sensing budget, and wait for the server's schedule.
#pragma once

#include <map>
#include <string>

#include "codec/barcode.hpp"
#include "common/sim_time.hpp"
#include "net/transport.hpp"
#include "phone/task_instance.hpp"
#include "sensors/manager.hpp"
#include "sensors/providers.hpp"

namespace sor::phone {

struct FrontendConfig {
  PhoneId phone_id;
  UserId user_id;
  std::string user_name;
  Token token;
  bool has_sensordrone = true;  // pair the external sensor at startup
};

struct FrontendStats {
  std::uint64_t uploads_sent = 0;
  std::uint64_t upload_failures = 0;
  std::uint64_t schedules_received = 0;
  std::uint64_t pings_answered = 0;
  std::uint64_t decode_failures = 0;
};

class MobileFrontend final : public net::Endpoint {
 public:
  // The frontend registers itself on `network` under EndpointName().
  MobileFrontend(FrontendConfig config, net::LoopbackNetwork& network,
                 sensors::SensorEnvironment& env, const SimClock& clock);
  ~MobileFrontend() override;

  MobileFrontend(const MobileFrontend&) = delete;
  MobileFrontend& operator=(const MobileFrontend&) = delete;

  [[nodiscard]] std::string EndpointName() const {
    return "phone:" + config_.token.value;
  }

  [[nodiscard]] LocalPreferenceManager& preferences() { return prefs_; }
  [[nodiscard]] sensors::SensorManager& sensor_manager() { return sensors_; }
  [[nodiscard]] sensors::BluetoothLink& bluetooth() { return bluetooth_; }
  [[nodiscard]] const FrontendStats& stats() const { return stats_; }
  [[nodiscard]] const FrontendConfig& config() const { return config_; }

  // --- user actions ------------------------------------------------------
  // Scan the barcode deployed at the target place. On success the server
  // has accepted the participation; the sensing schedule arrives as a
  // separate ScheduleDistribution message.
  [[nodiscard]] Result<TaskId> ScanBarcode(const BarcodePayload& payload,
                                           int budget);
  [[nodiscard]] Result<TaskId> ScanBarcodeText(const std::string& text,
                                               int budget);
  [[nodiscard]] Result<TaskId> ScanBarcodeMatrix(const BitMatrix& matrix,
                                                 int budget);

  // Tell the server the user left the place; finishes all tasks.
  [[nodiscard]] Status LeavePlace();

  // --- time advance ------------------------------------------------------
  // Execute every sensing activity due at the current clock time and upload
  // the collected data. Failed uploads are retried on the next tick.
  void Tick();

  // --- task inspection ---------------------------------------------------
  [[nodiscard]] const TaskInstance* task(TaskId id) const;
  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }

  // --- net::Endpoint -----------------------------------------------------
  [[nodiscard]] Bytes HandleFrame(std::span<const std::uint8_t> frame) override;

 private:
  [[nodiscard]] Message HandleMessage(const Message& m);
  [[nodiscard]] GeoPoint ReportedLocation();

  FrontendConfig config_;
  net::LoopbackNetwork& network_;
  sensors::SensorEnvironment& env_;
  const SimClock& clock_;
  std::string server_;  // learned from the scanned barcode

  LocalPreferenceManager prefs_;
  sensors::BluetoothLink bluetooth_;
  sensors::SensorManager sensors_;

  std::map<TaskId, TaskInstance> tasks_;
  // Store-and-forward queue for failed uploads, kept per task so batches
  // from concurrent tasks can never be attributed to the wrong one.
  std::map<TaskId, std::vector<ReadingTuple>> pending_upload_;
  SimTime last_tick_;
  FrontendStats stats_;
};

}  // namespace sor::phone

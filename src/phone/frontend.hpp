// MobileFrontend — the phone-side application (§II-A, Fig. 3).
//
// Wires together the Message Handler (a net::Endpoint speaking the binary
// SOR protocol), the Local Preference Manager, the Sensing Task Manager
// (the task map + RunDue pump), the Script Interpreter (inside
// TaskInstance), and the Sensor Manager with one Provider per supported
// sensor (all Nexus4 sensors + the Sensordrone suite over the Bluetooth
// link).
//
// The user-facing trigger is ScanBarcode*: decode the 2D barcode, send a
// ParticipationRequest with the phone's (preference-filtered) location and
// sensing budget, and wait for the server's schedule.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "codec/barcode.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phone/task_instance.hpp"
#include "sensors/manager.hpp"
#include "sensors/providers.hpp"

namespace sor::phone {

struct FrontendConfig {
  PhoneId phone_id;
  UserId user_id;
  std::string user_name;
  Token token;
  bool has_sensordrone = true;  // pair the external sensor at startup

  // --- retry policy (at-least-once uploads over a lossy link) -------------
  std::uint64_t retry_seed = 0x9e77;     // seed for the backoff jitter stream
  SimDuration retry_base{1'000};         // first-retry delay ceiling
  SimDuration retry_max{60'000};         // exponential backoff cap
  std::size_t max_pending_uploads = 64;  // store-and-forward queue bound

  // Per-campaign retry budget (docs/robustness.md): every failed re-send of
  // a queued upload spends one unit of its task's budget; once spent,
  // further failing uploads for that task are abandoned instead of
  // re-queued, so one dead campaign cannot monopolize the queue forever.
  // 0 = unlimited (the pre-budget behaviour).
  int retry_budget = 0;
};

struct FrontendStats {
  std::uint64_t uploads_sent = 0;
  std::uint64_t upload_failures = 0;
  std::uint64_t uploads_retried = 0;   // re-sends of a queued upload
  std::uint64_t uploads_dropped = 0;   // oldest entries evicted, queue full
  std::uint64_t uploads_throttled = 0; // server answered with a ThrottleReply
  std::uint64_t uploads_abandoned = 0; // retry budget spent, upload given up
  std::uint64_t leaves_retried = 0;    // queued LeaveNotifications re-sent
  std::uint64_t schedules_received = 0;
  std::uint64_t schedules_refused = 0;  // required sensor not on this phone
  std::uint64_t pings_answered = 0;
  std::uint64_t decode_failures = 0;
};

class MobileFrontend final : public net::Endpoint {
 public:
  // The frontend registers itself on `network` under EndpointName().
  MobileFrontend(FrontendConfig config, net::LoopbackNetwork& network,
                 sensors::SensorEnvironment& env, const SimClock& clock);
  ~MobileFrontend() override;

  MobileFrontend(const MobileFrontend&) = delete;
  MobileFrontend& operator=(const MobileFrontend&) = delete;

  [[nodiscard]] std::string EndpointName() const {
    return "phone:" + config_.token.value;
  }

  [[nodiscard]] LocalPreferenceManager& preferences() { return prefs_; }
  [[nodiscard]] sensors::SensorManager& sensor_manager() { return sensors_; }
  [[nodiscard]] sensors::BluetoothLink& bluetooth() { return bluetooth_; }
  [[nodiscard]] const FrontendStats& stats() const { return stats_; }
  [[nodiscard]] const FrontendConfig& config() const { return config_; }

  // Hook this phone into the shared telemetry. Fleet-wide "phone.*"
  // counters (per-thread sharded — every shard's phones bump the same
  // names) complement the per-phone FrontendStats; the tracer gets one
  // stream named EndpointName(). Call from serial setup code only: stream
  // ids must be assigned in a thread-count-invariant order.
  void AttachObservability(obs::MetricsRegistry* registry,
                           obs::Tracer* tracer);

  // --- user actions ------------------------------------------------------
  // Scan the barcode deployed at the target place. On success the server
  // has accepted the participation; the sensing schedule arrives as a
  // separate ScheduleDistribution message.
  [[nodiscard]] Result<TaskId> ScanBarcode(const BarcodePayload& payload,
                                           int budget);
  [[nodiscard]] Result<TaskId> ScanBarcodeText(const std::string& text,
                                               int budget);
  [[nodiscard]] Result<TaskId> ScanBarcodeMatrix(const BitMatrix& matrix,
                                                 int budget);

  // Tell the server the user left the place; finishes all tasks. A
  // notification the server never acknowledged is queued and retried from
  // Tick() until it lands (the server must learn the user is gone, or the
  // scheduler keeps planning for a phone that will never upload again).
  [[nodiscard]] Status LeavePlace();

  // --- node lifecycle (docs/robustness.md) --------------------------------
  // Crash: the process dies mid-campaign. Volatile state — the task map,
  // the store-and-forward queue, queued leaves, pacing — is lost; the
  // persisted bits (upload seq counter, install incarnation, the scanned
  // join) survive, exactly like app-private storage on a real phone. The
  // seq counter surviving is what keeps the server's dedup sound across a
  // crash: a restarted phone never reuses a seq the server may have seen.
  void Crash();
  // Restart after a crash: re-present the SAME incarnation to the server,
  // which recognizes the join as idempotent, returns the same task, and
  // re-pushes the schedule. Fails if this phone never scanned a barcode.
  [[nodiscard]] Result<TaskId> Restart();
  // Uninstall: everything goes, including the seq counter; the next install
  // generation is recorded by bumping the incarnation, so a later
  // ScanBarcode presents a HIGHER incarnation and the server retires the
  // old participation instead of resuming it (seq space restarts at 1).
  void Uninstall();
  [[nodiscard]] std::uint32_t incarnation() const { return incarnation_; }
  // Earliest time the upload queue may transmit again (throttle pacing).
  [[nodiscard]] SimTime paced_until() const { return pace_until_; }

  // --- time advance ------------------------------------------------------
  // Flush queued leave notifications, re-send queued uploads whose backoff
  // has elapsed, then execute every sensing activity due at the current
  // clock time and upload the collected data. A failed upload keeps its
  // seq and re-enters the queue with exponential backoff + seeded jitter.
  //
  // All sends go through LoopbackNetwork::SendAsync. Standalone (no epoch)
  // that is a synchronous round trip with the outcome applied inline —
  // the classic request/response Tick. Inside a campaign epoch the sends
  // are collected wait-free during phase A and their outcomes (ack, retry
  // backoff, throttle pacing) land in this phone's callbacks during the
  // merge — so pacing and re-queues from this tick's replies take effect
  // from the NEXT tick on. Both serial and parallel campaign runs use the
  // epoch path, so the schedule of outcomes is thread-count-invariant.
  void Tick();

  // --- task inspection ---------------------------------------------------
  [[nodiscard]] const TaskInstance* task(TaskId id) const;
  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  [[nodiscard]] std::size_t pending_uploads() const {
    return pending_uploads_.size();
  }
  [[nodiscard]] std::size_t pending_leaves() const {
    return pending_leaves_.size();
  }

  // --- net::Endpoint -----------------------------------------------------
  [[nodiscard]] Bytes HandleFrame(std::span<const std::uint8_t> frame) override;

 private:
  // One queued upload attempt. The seq is assigned when the upload is first
  // built and never changes across retries — it IS the server's dedup key,
  // so a retry after a lost Ack is recognized as the same upload.
  struct PendingUpload {
    TaskId task;
    std::uint64_t seq = 0;
    std::vector<ReadingTuple> batches;
    int attempts = 0;       // sends tried so far
    SimTime next_attempt;   // earliest time to try again
  };

  [[nodiscard]] Message HandleMessage(const Message& m);
  [[nodiscard]] GeoPoint ReportedLocation();
  // Send one upload via SendAsync and settle it in the completion callback:
  // an Ack echoing `seq` lands it; a ThrottleReply echoing `seq` paces the
  // queue and re-queues at the hinted time (admission refused, data intact,
  // no backoff/budget charge); anything else re-queues with exponential
  // backoff — unless the entry was a queued retry (`fresh` == false) whose
  // campaign retry budget is spent, in which case it is abandoned.
  void SendUploadAsync(TaskId task, std::uint64_t seq,
                       std::vector<ReadingTuple> batches, int attempts,
                       bool fresh);
  // min(retry_max, retry_base·2^(attempts-1)), jittered into [50%, 100%].
  [[nodiscard]] SimDuration Backoff(int attempts);
  void EnqueueUpload(TaskId task, std::uint64_t seq,
                     std::vector<ReadingTuple> batches, int attempts);
  // Same, but with an explicit wake-up time (throttle hints bypass backoff).
  void EnqueueUploadAt(TaskId task, std::uint64_t seq,
                       std::vector<ReadingTuple> batches, int attempts,
                       SimTime next_attempt);
  // Apply a ThrottleReply: pace the whole queue and record the hint.
  void NoteThrottle(TaskId task, std::uint64_t seq, SimDuration retry_after);
  // True when `task` has retry budget left; a failed re-send spends one
  // unit. Exhausted budget abandons the upload (accounted + logged).
  [[nodiscard]] bool SpendRetryBudget(TaskId task);
  // Emit on this phone's trace stream (no-op when tracing is off).
  void Trace(obs::EventKind kind, std::uint64_t a = 0, std::uint64_t b = 0,
             std::uint64_t c = 0);

  FrontendConfig config_;
  net::LoopbackNetwork& network_;
  sensors::SensorEnvironment& env_;
  const SimClock& clock_;
  std::string server_;  // learned from the scanned barcode

  LocalPreferenceManager prefs_;
  sensors::BluetoothLink bluetooth_;
  sensors::SensorManager sensors_;

  std::map<TaskId, TaskInstance> tasks_;
  // Bounded store-and-forward queue (FIFO by age): when it is full the
  // oldest entry is evicted — recent data beats stale data, and the bound
  // keeps a long partition from growing memory without limit.
  std::deque<PendingUpload> pending_uploads_;
  // Leave notifications the server has not yet acknowledged.
  std::vector<LeaveNotification> pending_leaves_;
  std::uint64_t next_seq_ = 1;  // upload sequence numbers, per phone
  Rng retry_rng_{0};            // re-seeded from config in the constructor
  SimTime last_tick_;
  FrontendStats stats_;

  // --- robustness state (docs/robustness.md) ------------------------------
  // Install generation. Survives Crash() (it is "persisted"); Uninstall()
  // bumps it so the server can tell a reinstall from a crash-rejoin.
  std::uint32_t incarnation_ = 1;
  // Throttle pacing gate: while now < pace_until_ the upload queue stays
  // quiet (leaves still flush — they are always admitted server-side).
  SimTime pace_until_;
  // Per-campaign retry spend, against config_.retry_budget. Volatile.
  std::map<TaskId, int> retries_spent_;
  // The last successful join, kept so Restart() can idempotently rejoin
  // with the same incarnation. Cleared by Uninstall().
  struct JoinInfo {
    BarcodePayload payload;
    int budget = 0;
  };
  std::optional<JoinInfo> last_join_;

  // Shared-telemetry handles (null until AttachObservability).
  obs::Tracer* tracer_ = nullptr;
  obs::StreamId stream_ = 0;
  struct PhoneCounters {
    obs::Counter* uploads_sent = nullptr;
    obs::Counter* upload_failures = nullptr;
    obs::Counter* uploads_retried = nullptr;
    obs::Counter* uploads_evicted = nullptr;
    obs::Counter* uploads_throttled = nullptr;
    obs::Counter* uploads_abandoned = nullptr;
    obs::Counter* leaves_retried = nullptr;
    obs::Counter* schedules_received = nullptr;
    obs::Counter* schedules_refused = nullptr;
    obs::Counter* pings_answered = nullptr;
    obs::Counter* decode_failures = nullptr;
    obs::Counter* tuples_collected = nullptr;
    obs::Histogram* upload_attempts = nullptr;  // attempts until the Ack
  };
  PhoneCounters obs_;
};

}  // namespace sor::phone

#include "transport/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

namespace sor::transport {

namespace {

Status SysError(Errc code, const std::string& what) {
  return Status(code, what + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Wait until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
// passes. Returns kOk, kTimeout, or kUnavailable (poll error / hangup with
// nothing readable is surfaced by the subsequent read/write).
Errc WaitReady(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms < 0 ? -1 : timeout_ms);
    if (rc > 0) return Errc::kOk;
    if (rc == 0) return Errc::kTimeout;
    if (errno == EINTR) continue;  // full deadline restarts: good enough here
    return Errc::kUnavailable;
  }
}

// "unix:/path" or "tcp:host:port" → sockaddr. Returns the domain via
// *family; kInvalidArgument on anything unparseable.
struct ParsedAddress {
  int family = AF_UNSPEC;
  sockaddr_un un{};
  sockaddr_in in{};
  socklen_t len = 0;
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress p;
  if (address.rfind("unix:", 0) == 0) {
    const std::string path = address.substr(5);
    if (path.empty() || path.size() >= sizeof(p.un.sun_path)) {
      return Result<ParsedAddress>(Errc::kInvalidArgument,
                                   "bad unix socket path: " + address);
    }
    p.family = AF_UNIX;
    p.un.sun_family = AF_UNIX;
    std::memcpy(p.un.sun_path, path.c_str(), path.size() + 1);
    p.len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) +
                                   path.size() + 1);
    return p;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= rest.size()) {
      return Result<ParsedAddress>(Errc::kInvalidArgument,
                                   "bad tcp address (want tcp:host:port): " +
                                       address);
    }
    const std::string host = rest.substr(0, colon);
    const std::string port_s = rest.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port < 1 || port > 65535) {
      return Result<ParsedAddress>(Errc::kInvalidArgument,
                                   "bad tcp port: " + port_s);
    }
    p.family = AF_INET;
    p.in.sin_family = AF_INET;
    p.in.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &p.in.sin_addr) != 1) {
      return Result<ParsedAddress>(Errc::kInvalidArgument,
                                   "bad tcp host (want an IPv4 literal): " +
                                       host);
    }
    p.len = sizeof(p.in);
    return p;
  }
  return Result<ParsedAddress>(
      Errc::kInvalidArgument,
      "unknown transport address (want unix:<path> or tcp:<host>:<port>): " +
          address);
}

class SocketConnection final : public Connection {
 public:
  SocketConnection(int fd, std::string peer, Metrics metrics)
      : fd_(fd), peer_(std::move(peer)), metrics_(metrics) {
    SetNonBlocking(fd_);
  }
  ~SocketConnection() override { Close(); }

  Result<std::size_t> ReadSome(std::span<std::uint8_t> out,
                               int timeout_ms) override {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (fd_ < 0) return Result<std::size_t>(Errc::kUnavailable, "closed");
      }
      const ssize_t n = ::recv(fd_, out.data(), out.size(), 0);
      if (n > 0) {
        if (metrics_.bytes_in != nullptr) {
          metrics_.bytes_in->Inc(static_cast<std::uint64_t>(n));
        }
        return static_cast<std::size_t>(n);
      }
      if (n == 0) return static_cast<std::size_t>(0);  // clean EOF
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        return Result<std::size_t>(Errc::kUnavailable,
                                   std::string("recv: ") +
                                       std::strerror(errno));
      }
      const Errc w = WaitReady(fd_, POLLIN, timeout_ms);
      if (w == Errc::kTimeout) {
        if (metrics_.read_timeouts != nullptr) metrics_.read_timeouts->Inc();
        return Result<std::size_t>(Errc::kTimeout, "read deadline expired");
      }
      if (w != Errc::kOk) {
        return Result<std::size_t>(Errc::kUnavailable, "poll failed");
      }
    }
  }

  Status WriteAll(std::span<const std::uint8_t> data,
                  int timeout_ms) override {
    std::size_t off = 0;
    while (off < data.size()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (fd_ < 0) return Status(Errc::kUnavailable, "closed");
      }
      // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE,
      // not kill the process with SIGPIPE.
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        if (metrics_.bytes_out != nullptr) {
          metrics_.bytes_out->Inc(static_cast<std::uint64_t>(n));
        }
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        return SysError(Errc::kUnavailable, "send");
      }
      const Errc w = WaitReady(fd_, POLLOUT, timeout_ms);
      if (w == Errc::kTimeout) {
        if (metrics_.write_timeouts != nullptr) metrics_.write_timeouts->Inc();
        return Status(Errc::kTimeout, "write deadline expired");
      }
      if (w != Errc::kOk) return Status(Errc::kUnavailable, "poll failed");
    }
    return Status::Ok();
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
      // shutdown first so a thread blocked in poll() wakes with POLLHUP
      // before the descriptor number can be recycled.
      (void)::shutdown(fd_, SHUT_RDWR);
      (void)::close(fd_);
      fd_ = -1;
    }
  }

  std::string peer() const override { return peer_; }

 private:
  int fd_;
  std::string peer_;
  Metrics metrics_;
  std::mutex mu_;  // guards fd_ lifetime; I/O itself is lock-free
};

class SocketListener final : public Listener {
 public:
  SocketListener(int fd, std::string address, std::string unlink_path,
                 Metrics metrics)
      : fd_(fd),
        address_(std::move(address)),
        unlink_path_(std::move(unlink_path)),
        metrics_(metrics) {
    SetNonBlocking(fd_);
  }
  ~SocketListener() override { Close(); }

  Result<std::unique_ptr<Connection>> Accept(int timeout_ms) override {
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (fd_ < 0) {
          return Result<std::unique_ptr<Connection>>(Errc::kUnavailable,
                                                     "listener closed");
        }
      }
      const int cfd = ::accept(fd_, nullptr, nullptr);
      if (cfd >= 0) {
        if (metrics_.connections != nullptr) metrics_.connections->Inc();
        const std::string peer =
            address_ + "#" + std::to_string(++accepted_);
        return std::unique_ptr<Connection>(
            new SocketConnection(cfd, peer, metrics_));
      }
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        return Result<std::unique_ptr<Connection>>(
            Errc::kUnavailable,
            std::string("accept: ") + std::strerror(errno));
      }
      const Errc w = WaitReady(fd_, POLLIN, timeout_ms);
      if (w == Errc::kTimeout) {
        if (metrics_.accept_timeouts != nullptr) {
          metrics_.accept_timeouts->Inc();
        }
        return Result<std::unique_ptr<Connection>>(Errc::kTimeout,
                                                   "accept deadline expired");
      }
      if (w != Errc::kOk) {
        return Result<std::unique_ptr<Connection>>(Errc::kUnavailable,
                                                   "poll failed");
      }
    }
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
      (void)::shutdown(fd_, SHUT_RDWR);
      (void)::close(fd_);
      fd_ = -1;
      if (!unlink_path_.empty()) (void)::unlink(unlink_path_.c_str());
    }
  }

  std::string address() const override { return address_; }

 private:
  int fd_;
  std::string address_;
  std::string unlink_path_;  // unix socket file removed on Close
  Metrics metrics_;
  std::mutex mu_;
  int accepted_ = 0;
};

}  // namespace

Result<std::unique_ptr<Listener>> SocketTransport::Listen(
    const std::string& address) {
  auto parsed = ParseAddress(address);
  if (!parsed.ok()) {
    return Result<std::unique_ptr<Listener>>(parsed.error());
  }
  ParsedAddress& p = parsed.value();
  const int fd = ::socket(p.family, SOCK_STREAM, 0);
  if (fd < 0) {
    return Result<std::unique_ptr<Listener>>(
        Errc::kUnavailable, std::string("socket: ") + std::strerror(errno));
  }
  std::string unlink_path;
  if (p.family == AF_UNIX) {
    // A stale socket file from a crashed daemon blocks bind(); remove it.
    unlink_path = address.substr(5);
    (void)::unlink(unlink_path.c_str());
  } else {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  }
  const sockaddr* sa = p.family == AF_UNIX
                           ? reinterpret_cast<const sockaddr*>(&p.un)
                           : reinterpret_cast<const sockaddr*>(&p.in);
  if (::bind(fd, sa, p.len) != 0 || ::listen(fd, 64) != 0) {
    const std::string what = std::string("bind/listen ") + address + ": " +
                             std::strerror(errno);
    (void)::close(fd);
    return Result<std::unique_ptr<Listener>>(Errc::kUnavailable, what);
  }
  return std::unique_ptr<Listener>(
      new SocketListener(fd, address, unlink_path, metrics_));
}

Result<std::unique_ptr<Connection>> SocketTransport::Dial(
    const std::string& address, int timeout_ms) {
  auto parsed = ParseAddress(address);
  if (!parsed.ok()) {
    return Result<std::unique_ptr<Connection>>(parsed.error());
  }
  ParsedAddress& p = parsed.value();
  const int fd = ::socket(p.family, SOCK_STREAM, 0);
  if (fd < 0) {
    return Result<std::unique_ptr<Connection>>(
        Errc::kUnavailable, std::string("socket: ") + std::strerror(errno));
  }
  SetNonBlocking(fd);
  const sockaddr* sa = p.family == AF_UNIX
                           ? reinterpret_cast<const sockaddr*>(&p.un)
                           : reinterpret_cast<const sockaddr*>(&p.in);
  if (::connect(fd, sa, p.len) != 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      const std::string what = std::string("connect ") + address + ": " +
                               std::strerror(errno);
      (void)::close(fd);
      return Result<std::unique_ptr<Connection>>(Errc::kUnavailable, what);
    }
    const Errc w = WaitReady(fd, POLLOUT, timeout_ms);
    if (w != Errc::kOk) {
      (void)::close(fd);
      return Result<std::unique_ptr<Connection>>(
          w == Errc::kTimeout ? Errc::kTimeout : Errc::kUnavailable,
          "connect " + address + (w == Errc::kTimeout ? ": deadline expired"
                                                      : ": poll failed"));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      (void)::close(fd);
      return Result<std::unique_ptr<Connection>>(
          Errc::kUnavailable,
          "connect " + address + ": " + std::strerror(err != 0 ? err : errno));
    }
  }
  if (metrics_.connections != nullptr) metrics_.connections->Inc();
  return std::unique_ptr<Connection>(
      new SocketConnection(fd, address, metrics_));
}

}  // namespace sor::transport

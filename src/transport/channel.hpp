// Record channel: the duplex RPC layer between loadgen phones and the
// daemon, layered on codec::FrameStream over any transport::Connection.
//
// Each stream record (docs/deployment.md §Framing) carries:
//
//   kind  u8      kCall (client→server request, expects a reply)
//                 kReply (terminates the matching kCall or kPush)
//                 kPush  (server→client request, expects a reply)
//   corr  varint  correlation id; replies echo the request's id. Calls and
//                 pushes draw from independent id spaces (the two sides
//                 never collide because kind disambiguates).
//   dest  string  logical endpoint name ("server", "phone:tok-3"); lets
//                 one connection multiplex several phone endpoints.
//   frame blob    a complete SOR5 envelope (codec::EncodeFrame output)
//
// The protocol is symmetric but the *blocking discipline* is not: the
// client owns the socket loop. ClientChannel::Call writes a kCall and then
// reads records until its reply arrives, servicing any interleaved kPush
// inline via the registered push handler (the server sends pushes only to
// endpoints homed on this connection, and only while handling this
// client's call or a tick — so a blocked Call is exactly where pushes
// must be consumed to avoid deadlock). The daemon side (daemon.cpp) runs
// a reader thread per connection instead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "codec/bytes.hpp"
#include "codec/frame_stream.hpp"
#include "transport/transport.hpp"

namespace sor::transport {

enum class RecordKind : std::uint8_t {
  kCall = 1,
  kReply = 2,
  kPush = 3,
};

struct Record {
  RecordKind kind = RecordKind::kCall;
  std::uint64_t corr = 0;
  std::string dest;
  Bytes frame;
};

// Record body codec (the FrameStream payload).
[[nodiscard]] Bytes EncodeRecord(const Record& record);
[[nodiscard]] Result<Record> DecodeRecord(std::span<const std::uint8_t> body);

// Write one record as a framed stream chunk.
[[nodiscard]] Status WriteRecord(Connection& conn, const Record& record,
                                 int timeout_ms, const Metrics& metrics);

// Incremental record reader bound to one connection.
class RecordReader {
 public:
  explicit RecordReader(Metrics metrics = {}) : metrics_(metrics) {}

  // Block until the next record (kTimeout / kUnavailable / kDecodeError on
  // poisoned framing — after a decode error the connection is unusable).
  [[nodiscard]] Result<Record> Read(Connection& conn, int timeout_ms);

 private:
  codec::FrameStreamReader stream_;
  Metrics metrics_;
};

// Client-side duplex channel: blocking Call with inline push servicing.
// Not thread-safe; each loadgen worker owns one ClientChannel.
class ClientChannel {
 public:
  // `push_handler` maps an inbound push (dest endpoint + SOR5 frame) to the
  // reply frame, exactly like net::Endpoint::HandleFrame.
  using PushHandler =
      std::function<Bytes(const std::string& dest, std::span<const std::uint8_t> frame)>;

  ClientChannel(Transport& transport, std::string address,
                PushHandler push_handler, Metrics metrics = {},
                int io_timeout_ms = 10'000)
      : transport_(transport),
        address_(std::move(address)),
        push_handler_(std::move(push_handler)),
        metrics_(metrics),
        io_timeout_ms_(io_timeout_ms) {}

  // Send one SOR5 frame to `dest` on the server and block for the reply
  // frame. Dials (or re-dials after a connection error) on demand, so a
  // daemon restart surfaces as one failed Call followed by recovery —
  // matching the retry semantics phones already implement.
  [[nodiscard]] Result<Bytes> Call(const std::string& dest,
                                   std::span<const std::uint8_t> frame);

  void Close();

  [[nodiscard]] bool connected() const { return conn_ != nullptr; }

 private:
  [[nodiscard]] Status EnsureConnected();
  void Drop();

  Transport& transport_;
  std::string address_;
  PushHandler push_handler_;
  Metrics metrics_;
  int io_timeout_ms_;
  std::unique_ptr<Connection> conn_;
  std::unique_ptr<RecordReader> reader_;
  std::uint64_t next_corr_ = 1;
};

}  // namespace sor::transport

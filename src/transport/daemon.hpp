// The `sor serve` daemon: hosts one SensingServer behind a byte-stream
// transport (Unix-domain/TCP sockets in production, PipeTransport in
// tests), so phones live in other processes instead of on the server's
// LoopbackNetwork.
//
// Threading model (three kinds of threads, one mutation site):
//
//   accept thread   — Accept() loop; spawns one reader per connection.
//   reader threads  — one per connection; parse stream records. kCall
//                     records go to the dispatch queue; kReply records
//                     fulfil the connection's pending push slot.
//   dispatcher      — single thread, the ONLY one that touches the
//                     SensingServer, the simulated clock and the session
//                     table. Drains the dispatch queue in arrival order;
//                     when idle for tick_interval_ms it drives
//                     HealthMonitor::ObserveTick, preserving the serial
//                     discipline the in-process System gives the server.
//
// Server→phone pushes (schedule distributions, pings) ride the phone's own
// client-initiated connection as kPush records: the server's outbound
// Send lands on a RelayEndpoint registered on the daemon's private
// LoopbackNetwork, which writes a kPush to the session's connection and
// blocks the dispatcher until the reader thread hands back the kReply (or
// the io timeout fires — then the relay answers kUnavailable, exactly what
// a down phone produces on the loopback path, so the scheduler's existing
// degradation logic applies unchanged).
//
// The simulated clock follows traffic: every decoded message carries sim
// timestamps (scan_time, batch [t, t+dt], leave time) and the dispatcher
// advances the clock monotonically to the largest one seen. A campaign
// replayed through sockets therefore presents the scheduler with the same
// clock readings as the in-process run — the heart of the byte-identical
// rankings guarantee (docs/deployment.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "core/fleet.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "rank/personalizable_ranker.hpp"
#include "server/health_monitor.hpp"
#include "server/server.hpp"
#include "transport/channel.hpp"
#include "transport/transport.hpp"
#include "world/scenarios.hpp"

namespace sor::transport {

struct DaemonConfig {
  std::string bind = "unix:/tmp/sor-serve.sock";
  world::Scenario scenario;
  core::FleetPlanParams plan;  // seed / n_instants / sigma_s
  rank::AggregationMethod aggregation =
      rank::AggregationMethod::kFootruleMcmf;
  server::SchedulerAlgorithm scheduler_algorithm =
      server::SchedulerAlgorithm::kLazyGreedy;
  server::OverloadConfig overload;

  // Wall-clock cadence of HealthMonitor ticks while the queue is idle.
  int tick_interval_ms = 50;
  // Per-record read/write deadline and the push-reply deadline.
  int io_timeout_ms = 10'000;

  // Snapshot written on Stop() and after finalize; restored on Start()
  // when the file exists. "" disables persistence.
  std::string snapshot_path;
  // Rankings text (core::RenderRankingsText) written when the campaign
  // completes. "" disables.
  std::string rankings_path;

  // Shared registry (so the SocketTransport's byte counters and the
  // server's counters land in one export). nullptr → the daemon owns one.
  obs::MetricsRegistry* registry = nullptr;
};

class Daemon {
 public:
  Daemon(Transport& transport, DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Bind, restore-or-bootstrap the server state, start the threads.
  [[nodiscard]] Status Start();

  // Async-signal-safe stop request (sets an atomic flag; the dispatcher
  // notices within one tick interval). Call Stop() afterwards to join.
  void RequestStop() { stop_requested_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  // Close the listener and every connection, join all threads, write the
  // final snapshot. Idempotent.
  void Stop();

  // True once the campaign completed and rankings were written.
  [[nodiscard]] bool finalized() const {
    return finalized_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] obs::MetricsRegistry& metrics() { return *registry_; }
  // Serial access only (before Start or after Stop): tests inspect the
  // hosted server directly.
  [[nodiscard]] server::SensingServer& server() { return *server_; }
  [[nodiscard]] SimTime sim_now() const;

 private:
  struct Conn {
    std::uint64_t id = 0;
    std::unique_ptr<Connection> connection;
    std::thread reader;
    std::atomic<bool> dead{false};

    // Single pending-push slot: only the dispatcher issues pushes, one at
    // a time, so one (corr, reply) cell per connection suffices.
    std::mutex push_mu;
    std::condition_variable push_cv;
    std::uint64_t push_corr = 0;  // nonzero while a push awaits its reply
    bool push_done = false;
    bool push_failed = false;
    Bytes push_reply;
  };

  struct Inbound {
    std::uint64_t conn_id = 0;
    Record record;
  };

  // The server's outbound Send target for one phone endpoint.
  class RelayEndpoint final : public net::Endpoint {
   public:
    RelayEndpoint(Daemon& daemon, std::string endpoint)
        : daemon_(daemon), endpoint_(std::move(endpoint)) {}
    [[nodiscard]] Bytes HandleFrame(
        std::span<const std::uint8_t> frame) override;

   private:
    Daemon& daemon_;
    std::string endpoint_;
  };

  [[nodiscard]] Status Bootstrap();
  void AcceptLoop();
  void ReaderLoop(const std::shared_ptr<Conn>& conn);
  void DispatcherLoop();
  void HandleCall(const Inbound& inbound);
  // Session endpoint derivation + clock advancement from a decoded message.
  void ObserveMessage(const Message& message, std::uint64_t conn_id);
  void AdvanceClockTo(SimTime t);
  void BindSession(const std::string& endpoint, std::uint64_t conn_id);
  [[nodiscard]] Bytes RelayPush(const std::string& endpoint,
                                std::span<const std::uint8_t> frame);
  void MaybeFinalize();
  void WriteSnapshot();
  void FailPush(Conn& conn);

  Transport& transport_;
  DaemonConfig config_;
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  Metrics transport_metrics_;

  SimClock clock_;
  net::LoopbackNetwork net_;  // private: server + relay endpoints only
  std::unique_ptr<server::SensingServer> server_;
  std::map<std::string, std::unique_ptr<RelayEndpoint>> relays_;

  // endpoint name ("phone:tok-3") → connection currently homing it.
  std::map<std::string, std::uint64_t> sessions_;
  std::size_t expected_participations_ = 0;

  std::unique_ptr<Listener> listener_;
  std::mutex conns_mu;
  std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t next_push_corr_ = 1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Inbound> queue_;

  std::thread accept_thread_;
  std::thread dispatcher_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> finalized_{false};
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex clock_mu_;  // guards clock_ reads from sim_now()
};

}  // namespace sor::transport

// `sor loadgen`: replay a full sensing campaign against a live `sor serve`
// daemon and report throughput + latency.
//
// The generator runs the REAL phone stack — world::PhoneAgent sensors under
// phone::MobileFrontend — not a synthetic byte cannon. Each worker thread
// owns a private SimClock + LoopbackNetwork holding its share of the fleet;
// the only non-phone endpoint on that network is a ServerProxy that encodes
// every frame addressed to "server" onto the worker's ClientChannel. The
// campaign is therefore identical traffic to an in-process run, shipped
// over real sockets.
//
// Sharding is by PLACE (= application): worker w owns every phone of the
// places p with p % workers == w. The daemon only pushes schedules for an
// app while handling one of that app's own calls, so a push always targets
// the connection whose worker is blocked inside ClientChannel::Call — the
// exact spot where inbound pushes are serviced. Cross-connection pushes
// (and the deadlocks they would invite) cannot occur.
//
// Phase structure mirrors core::System::RunFieldTest: joins serially in
// global plan order (the scheduler plans online, so join order is part of
// campaign identity), ticks in parallel per worker, then leaves serially
// in global plan order. Under a fault-free daemon the resulting rankings
// are byte-identical to the in-process run of the same seed.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "core/fleet.hpp"
#include "obs/metrics.hpp"
#include "transport/transport.hpp"
#include "world/scenarios.hpp"

namespace sor::transport {

struct LoadgenConfig {
  std::string address;  // daemon's bind address
  world::Scenario scenario;
  core::FleetPlanParams plan;  // must match the daemon's
  int budget_per_user = 40;
  SimDuration tick{10'000};
  int workers = 2;
  int io_timeout_ms = 10'000;

  // Join/leave retry policy: a daemon mid-restart refuses calls for a
  // moment; the serial phases retry with a wall-clock pause instead of
  // failing the campaign.
  int retry_attempts = 100;
  int retry_sleep_ms = 100;
  // Extra post-period ticks to flush store-and-forward queues (a fault-free
  // run needs zero).
  int drain_ticks_max = 2'000;

  // Shared registry for loadgen.* metrics; nullptr → a run-local one.
  obs::MetricsRegistry* registry = nullptr;
};

struct LoadgenReport {
  std::uint64_t phones = 0;
  std::uint64_t workers = 0;
  std::uint64_t ticks = 0;
  std::uint64_t calls = 0;
  std::uint64_t call_failures = 0;
  std::uint64_t pushes_served = 0;
  std::uint64_t uploads_sent = 0;
  std::uint64_t upload_failures = 0;
  double wall_seconds = 0.0;
  double calls_per_second = 0.0;
  double p50_call_us = 0.0;
  double p90_call_us = 0.0;
  double p99_call_us = 0.0;

  [[nodiscard]] std::string ToJson() const;
};

[[nodiscard]] Result<LoadgenReport> RunLoadgen(Transport& transport,
                                               const LoadgenConfig& config);

}  // namespace sor::transport

// Byte-stream transport abstraction (docs/deployment.md).
//
// Everything in src/net simulates a network inside one address space; this
// subsystem is the real thing: listeners, connections, blocking reads and
// writes with deadlines, over which the daemon (`sor serve`) and the
// load-generator (`sor loadgen`) speak length-prefixed SOR5 frames
// (codec/frame_stream.hpp wrapped in channel.hpp records).
//
// Two implementations ship:
//   * SocketTransport (socket.hpp) — Unix-domain and TCP stream sockets;
//     the deployable path.
//   * PipeTransport (pipe.hpp) — an in-process duplex byte pipe with the
//     same blocking/timeout semantics; unit tests and in-process
//     daemon/loadgen tests run the full stack over it without touching
//     the host network.
//
// This layer is intentionally wall-clock based (deadlines, poll loops) and
// therefore lives OUTSIDE the deterministic core: nothing here may feed
// simulation state. The simulation keeps its LoopbackNetwork; both share
// the codec::FrameStream framing so the paths cannot drift.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "codec/bytes.hpp"
#include "common/result.hpp"
#include "obs/metrics.hpp"

namespace sor::transport {

// Deadline convention used across the subsystem: milliseconds; < 0 blocks
// forever, 0 polls without blocking. Expired deadlines fail with
// Errc::kTimeout so callers can distinguish "slow" from "gone".
inline constexpr int kWaitForever = -1;

// One established byte-stream connection. Implementations must support one
// concurrent reader plus one concurrent writer, and Close() from any
// thread must unblock both.
class Connection {
 public:
  virtual ~Connection() = default;

  // Read up to out.size() bytes; returns the count actually read (>= 1),
  // 0 on clean end-of-stream, kTimeout past the deadline, kUnavailable on
  // a broken or closed connection.
  [[nodiscard]] virtual Result<std::size_t> ReadSome(
      std::span<std::uint8_t> out, int timeout_ms) = 0;

  // Write the whole buffer or fail; partial progress past a failure is
  // unrecoverable at this layer (stream framing would be lost), so any
  // error means the connection must be dropped.
  [[nodiscard]] virtual Status WriteAll(std::span<const std::uint8_t> data,
                                        int timeout_ms) = 0;

  // Idempotent; unblocks concurrent ReadSome/WriteAll with kUnavailable.
  virtual void Close() = 0;

  // Human-readable peer description for logs ("unix:/run/sor.sock#3").
  [[nodiscard]] virtual std::string peer() const = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  // Wait for the next inbound connection (kTimeout past the deadline,
  // kUnavailable once closed).
  [[nodiscard]] virtual Result<std::unique_ptr<Connection>> Accept(
      int timeout_ms) = 0;

  // Idempotent; unblocks a concurrent Accept with kUnavailable.
  virtual void Close() = 0;

  [[nodiscard]] virtual std::string address() const = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual Result<std::unique_ptr<Listener>> Listen(
      const std::string& address) = 0;

  [[nodiscard]] virtual Result<std::unique_ptr<Connection>> Dial(
      const std::string& address, int timeout_ms) = 0;
};

// Transport counter family, registered into whichever obs registry the
// host hands over (`sor metrics` dumps the campaign registry, the daemon
// dumps its own at shutdown). The loopback simulation feeds the byte and
// frame counters too — same names, same meaning — so a metrics consumer
// sees one transport surface whether the bytes crossed a socket or not.
struct Metrics {
  obs::Counter* bytes_in = nullptr;        // transport.bytes_in
  obs::Counter* bytes_out = nullptr;       // transport.bytes_out
  obs::Counter* frames_in = nullptr;       // transport.frames_in
  obs::Counter* frames_out = nullptr;      // transport.frames_out
  obs::Counter* frame_errors = nullptr;    // framing lost / CRC mismatch
  obs::Counter* connections = nullptr;     // accepted + dialed, lifetime
  obs::Counter* accept_timeouts = nullptr; // Accept() deadline expiries
  obs::Counter* read_timeouts = nullptr;   // ReadSome() deadline expiries
  obs::Counter* write_timeouts = nullptr;  // WriteAll() deadline expiries

  // Register (or look up) the family in `registry`.
  [[nodiscard]] static Metrics For(obs::MetricsRegistry& registry);
};

}  // namespace sor::transport

#include "transport/channel.hpp"

namespace sor::transport {

Bytes EncodeRecord(const Record& record) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(record.kind));
  w.varint(record.corr);
  w.str(record.dest);
  w.blob(record.frame);
  return w.take();
}

Result<Record> DecodeRecord(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  Record rec;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 3) r.invalidate();
  rec.kind = static_cast<RecordKind>(kind);
  rec.corr = r.varint();
  rec.dest = r.str();
  rec.frame = r.blob();
  if (Status s = r.finish(); !s.ok()) {
    return Result<Record>(Errc::kDecodeError,
                          "transport record: " + s.error().message);
  }
  return rec;
}

Status WriteRecord(Connection& conn, const Record& record, int timeout_ms,
                   const Metrics& metrics) {
  Bytes wire;
  const Bytes body = EncodeRecord(record);
  codec::AppendFrame(wire, body);
  Status s = conn.WriteAll(wire, timeout_ms);
  if (s.ok() && metrics.frames_out != nullptr) metrics.frames_out->Inc();
  return s;
}

Result<Record> RecordReader::Read(Connection& conn, int timeout_ms) {
  Bytes chunk(4096);
  for (;;) {
    Bytes body;
    switch (stream_.Pop(&body)) {
      case codec::FrameStreamReader::Next::kFrame: {
        if (metrics_.frames_in != nullptr) metrics_.frames_in->Inc();
        auto rec = DecodeRecord(body);
        if (!rec.ok() && metrics_.frame_errors != nullptr) {
          metrics_.frame_errors->Inc();
        }
        return rec;
      }
      case codec::FrameStreamReader::Next::kBad:
        if (metrics_.frame_errors != nullptr) metrics_.frame_errors->Inc();
        return Result<Record>(Errc::kDecodeError,
                              "stream framing lost: " + stream_.error());
      case codec::FrameStreamReader::Next::kNeedMore:
        break;
    }
    auto n = conn.ReadSome(chunk, timeout_ms);
    if (!n.ok()) return Result<Record>(n.error());
    if (n.value() == 0) {
      return Result<Record>(Errc::kUnavailable, "connection closed by peer");
    }
    stream_.Feed(std::span<const std::uint8_t>(chunk.data(), n.value()));
  }
}

Status ClientChannel::EnsureConnected() {
  if (conn_ != nullptr) return Status::Ok();
  auto dialed = transport_.Dial(address_, io_timeout_ms_);
  if (!dialed.ok()) return Status(dialed.error());
  conn_ = std::move(dialed).value();
  reader_ = std::make_unique<RecordReader>(metrics_);
  return Status::Ok();
}

void ClientChannel::Drop() {
  if (conn_ != nullptr) conn_->Close();
  conn_.reset();
  reader_.reset();
}

Result<Bytes> ClientChannel::Call(const std::string& dest,
                                  std::span<const std::uint8_t> frame) {
  if (Status s = EnsureConnected(); !s.ok()) return Result<Bytes>(s.error());

  Record call;
  call.kind = RecordKind::kCall;
  call.corr = next_corr_++;
  call.dest = dest;
  call.frame.assign(frame.begin(), frame.end());
  if (Status s = WriteRecord(*conn_, call, io_timeout_ms_, metrics_);
      !s.ok()) {
    Drop();
    return Result<Bytes>(s.error());
  }

  for (;;) {
    auto rec = reader_->Read(*conn_, io_timeout_ms_);
    if (!rec.ok()) {
      Drop();
      return Result<Bytes>(rec.error());
    }
    Record& r = rec.value();
    switch (r.kind) {
      case RecordKind::kReply:
        if (r.corr != call.corr) {
          // A reply for a call we no longer remember (e.g. a previous Call
          // timed out and we re-dialed): framing is intact, drop it.
          continue;
        }
        return std::move(r.frame);
      case RecordKind::kPush: {
        // Serve the server's nested request inline, then keep waiting for
        // our own reply.
        Record reply;
        reply.kind = RecordKind::kReply;
        reply.corr = r.corr;
        reply.dest = r.dest;
        reply.frame = push_handler_
                          ? push_handler_(r.dest, r.frame)
                          : Bytes{};
        if (Status s = WriteRecord(*conn_, reply, io_timeout_ms_, metrics_);
            !s.ok()) {
          Drop();
          return Result<Bytes>(s.error());
        }
        break;
      }
      case RecordKind::kCall:
        Drop();
        return Result<Bytes>(Errc::kDecodeError,
                             "protocol violation: kCall from server");
    }
  }
}

void ClientChannel::Close() { Drop(); }

}  // namespace sor::transport

#include "transport/daemon.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <variant>
#include <vector>

#include "codec/messages.hpp"
#include "common/log.hpp"

namespace sor::transport {

namespace {

// Atomic file write: tmp + rename, so readers (and a restarted daemon)
// never observe a half-written snapshot.
Status WriteFileAtomic(const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status(Errc::kUnavailable, "cannot open " + tmp);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    if (!out) return Status(Errc::kUnavailable, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status(Errc::kUnavailable, "rename " + tmp + " -> " + path);
  }
  return Status::Ok();
}

Bytes UnavailableFrame(const std::string& why) {
  ErrorReply err;
  err.code = static_cast<std::uint8_t>(Errc::kUnavailable);
  err.message = why;
  return EncodeFrame(Message{err});
}

}  // namespace

Daemon::Daemon(Transport& transport, DaemonConfig config)
    : transport_(transport), config_(std::move(config)) {
  if (config_.registry != nullptr) {
    registry_ = config_.registry;
  } else {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  transport_metrics_ = Metrics::For(*registry_);
}

Daemon::~Daemon() { Stop(); }

Status Daemon::Start() {
  if (started_) return Status(Errc::kAlreadyExists, "daemon already started");

  Result<std::unique_ptr<Listener>> listener = transport_.Listen(config_.bind);
  if (!listener.ok()) return listener.error();
  listener_ = std::move(listener).value();

  net_.set_clock(&clock_);
  net_.set_metrics(registry_);
  server::ServerConfig server_config;
  server_config.endpoint_name = config_.plan.server_endpoint;
  server_config.overload = config_.overload;
  server_ = std::make_unique<server::SensingServer>(server_config, net_,
                                                    clock_);
  server_->scheduler().set_algorithm(config_.scheduler_algorithm);
  server_->AttachObservability(registry_, nullptr);

  if (Status s = Bootstrap(); !s.ok()) return s;

  started_ = true;
  stopped_ = false;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  dispatcher_thread_ = std::thread([this] { DispatcherLoop(); });
  SOR_LOG(kInfo, "daemon", "serving on " << listener_->address());
  return Status::Ok();
}

Status Daemon::Bootstrap() {
  const core::FleetPlan plan = core::PlanFleet(config_.scenario, config_.plan);
  expected_participations_ = plan.phones.size();

  Bytes snapshot;
  if (!config_.snapshot_path.empty()) {
    std::ifstream in(config_.snapshot_path, std::ios::binary);
    if (in) {
      snapshot.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
    }
  }
  if (!snapshot.empty()) {
    if (Status s = server_->RestoreFromSnapshot(snapshot); !s.ok()) {
      return Status(s.error().code,
                    "restore " + config_.snapshot_path + ": " + s.str());
    }
    SOR_LOG(kInfo, "daemon",
            "restored snapshot (" << snapshot.size() << " bytes, "
                                  << server_->users().count() << " users)");
    return Status::Ok();
  }

  // Fresh start: deploy the fleet plan — one application per place, every
  // user registered up-front in join order. Registration never touches the
  // scheduler, so pre-registering here (instead of interleaving with
  // participations the way core::System spawns phones) leaves the
  // scheduler-visible event sequence identical; it also pins user ids to
  // plan order, which the load generator relies on.
  for (const server::ApplicationSpec& spec : plan.app_specs) {
    Result<BarcodePayload> barcode = server_->DeployApplication(spec);
    if (!barcode.ok()) return barcode.error();
  }
  for (const core::PhonePlan& phone : plan.phones) {
    Result<UserId> user =
        server_->users().RegisterUser(phone.user_name, phone.token);
    if (!user.ok()) return user.error();
  }
  return Status::Ok();
}

void Daemon::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  RequestStop();
  queue_cv_.notify_all();

  if (listener_) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (auto& [id, conn] : conns_) conns.push_back(conn);
  }
  for (auto& conn : conns) conn->connection->Close();
  if (dispatcher_thread_.joinable()) dispatcher_thread_.join();
  for (auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    conns_.clear();
  }
  sessions_.clear();

  WriteSnapshot();
  SOR_LOG(kInfo, "daemon", "stopped");
}

SimTime Daemon::sim_now() const {
  std::lock_guard<std::mutex> lock(clock_mu_);
  return clock_.now();
}

void Daemon::AcceptLoop() {
  while (!stop_requested()) {
    Result<std::unique_ptr<Connection>> accepted = listener_->Accept(200);
    if (!accepted.ok()) {
      if (accepted.error().code == Errc::kTimeout) continue;
      break;  // listener closed or failed
    }
    auto conn = std::make_shared<Conn>();
    conn->connection = std::move(accepted).value();
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void Daemon::ReaderLoop(const std::shared_ptr<Conn>& conn) {
  RecordReader reader(transport_metrics_);
  while (!stop_requested()) {
    Result<Record> record = reader.Read(*conn->connection, 200);
    if (!record.ok()) {
      if (record.error().code == Errc::kTimeout) continue;
      if (record.error().code == Errc::kDecodeError) {
        SOR_LOG(kWarn, "daemon",
                conn->connection->peer() << ": " << record.error().message);
      }
      break;  // EOF, poisoned framing, or closed
    }
    Record rec = std::move(record).value();
    if (rec.kind == RecordKind::kCall) {
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_.push_back(Inbound{conn->id, std::move(rec)});
      }
      queue_cv_.notify_one();
    } else if (rec.kind == RecordKind::kReply) {
      std::lock_guard<std::mutex> lock(conn->push_mu);
      if (conn->push_corr != 0 && rec.corr == conn->push_corr &&
          !conn->push_done) {
        conn->push_reply = std::move(rec.frame);
        conn->push_done = true;
        conn->push_cv.notify_all();
      }
      // A stale corr (reply to a push that already timed out) is dropped.
    } else {
      SOR_LOG(kWarn, "daemon",
              conn->connection->peer() << ": client sent a push; dropping");
      break;
    }
  }
  conn->dead.store(true, std::memory_order_relaxed);
  FailPush(*conn);
}

void Daemon::FailPush(Conn& conn) {
  std::lock_guard<std::mutex> lock(conn.push_mu);
  if (conn.push_corr != 0 && !conn.push_done) {
    conn.push_failed = true;
    conn.push_done = true;
  }
  conn.push_cv.notify_all();
}

void Daemon::DispatcherLoop() {
  for (;;) {
    Inbound inbound;
    bool have = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock,
                         std::chrono::milliseconds(config_.tick_interval_ms),
                         [this] { return stop_requested() || !queue_.empty(); });
      if (!queue_.empty()) {
        inbound = std::move(queue_.front());
        queue_.pop_front();
        have = true;
      } else if (stop_requested()) {
        break;
      }
    }
    if (have) {
      HandleCall(inbound);
      continue;
    }
    // Idle tick: drive overload-control bookkeeping and reap dead
    // connections whose readers have exited.
    server_->health().ObserveTick(sim_now());
    std::vector<std::shared_ptr<Conn>> reaped;
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->second->dead.load(std::memory_order_relaxed)) {
          reaped.push_back(it->second);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& conn : reaped) {
      if (conn->reader.joinable()) conn->reader.join();
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        it = it->second == conn->id ? sessions_.erase(it) : std::next(it);
      }
    }
  }
}

void Daemon::AdvanceClockTo(SimTime t) {
  std::lock_guard<std::mutex> lock(clock_mu_);
  if (t > clock_.now()) clock_.advance_to(t);
}

void Daemon::BindSession(const std::string& endpoint, std::uint64_t conn_id) {
  sessions_[endpoint] = conn_id;
  auto [it, inserted] = relays_.try_emplace(endpoint, nullptr);
  if (inserted) {
    it->second = std::make_unique<RelayEndpoint>(*this, endpoint);
    net_.Register(endpoint, it->second.get());
  }
}

void Daemon::ObserveMessage(const Message& message, std::uint64_t conn_id) {
  if (const auto* req = std::get_if<ParticipationRequest>(&message)) {
    AdvanceClockTo(req->scan_time);
    BindSession("phone:" + req->token.value, conn_id);
    // A joining phone reopens the campaign: finalize again once every
    // participation (old and new) has closed.
    finalized_.store(false, std::memory_order_relaxed);
    return;
  }
  if (const auto* upload = std::get_if<SensedDataUpload>(&message)) {
    SimTime latest = clock_.now();
    for (const ReadingTuple& batch : upload->batches) {
      if (batch.t + batch.dt > latest) latest = batch.t + batch.dt;
    }
    AdvanceClockTo(latest);
    if (Result<server::ParticipationRecord> part =
            server_->participations().Get(upload->task);
        part.ok()) {
      BindSession("phone:" + part.value().token.value, conn_id);
    }
    return;
  }
  if (const auto* leave = std::get_if<LeaveNotification>(&message)) {
    AdvanceClockTo(leave->time);
    if (Result<server::ParticipationRecord> part =
            server_->participations().Get(leave->task);
        part.ok()) {
      BindSession("phone:" + part.value().token.value, conn_id);
    }
    return;
  }
}

void Daemon::HandleCall(const Inbound& inbound) {
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    auto it = conns_.find(inbound.conn_id);
    if (it != conns_.end()) conn = it->second;
  }
  if (!conn || conn->dead.load(std::memory_order_relaxed)) return;

  // Peek at the frame before the server does: advance the simulated clock
  // to the message's own timestamps and (re)bind the sender's session so
  // schedule pushes triggered by this very call find their way back.
  bool is_leave = false;
  if (Result<Message> message = DecodeFrame(inbound.record.frame);
      message.ok()) {
    ObserveMessage(message.value(), inbound.conn_id);
    is_leave = std::holds_alternative<LeaveNotification>(message.value());
  }

  Bytes reply = server_->HandleFrame(inbound.record.frame);
  Record out;
  out.kind = RecordKind::kReply;
  out.corr = inbound.record.corr;
  out.dest = inbound.record.dest;
  out.frame = std::move(reply);
  if (Status s = WriteRecord(*conn->connection, out, config_.io_timeout_ms,
                             transport_metrics_);
      !s.ok()) {
    conn->dead.store(true, std::memory_order_relaxed);
  }

  // Campaign completion is decided from traffic alone: once every expected
  // participation has been opened and none remain active, the campaign is
  // over. Finalizing inside the last leave's call keeps this race-free for
  // clients — when their final Call returns, the rankings file exists.
  if (is_leave) MaybeFinalize();
}

Bytes Daemon::RelayPush(const std::string& endpoint,
                        std::span<const std::uint8_t> frame) {
  std::shared_ptr<Conn> conn;
  {
    auto session = sessions_.find(endpoint);
    if (session != sessions_.end()) {
      std::lock_guard<std::mutex> lock(conns_mu);
      auto it = conns_.find(session->second);
      if (it != conns_.end()) conn = it->second;
    }
  }
  if (!conn || conn->dead.load(std::memory_order_relaxed)) {
    return UnavailableFrame("no session for " + endpoint);
  }

  const std::uint64_t corr = next_push_corr_++;
  {
    std::lock_guard<std::mutex> lock(conn->push_mu);
    conn->push_corr = corr;
    conn->push_done = false;
    conn->push_failed = false;
    conn->push_reply.clear();
  }
  Record push;
  push.kind = RecordKind::kPush;
  push.corr = corr;
  push.dest = endpoint;
  push.frame.assign(frame.begin(), frame.end());
  if (Status s = WriteRecord(*conn->connection, push, config_.io_timeout_ms,
                             transport_metrics_);
      !s.ok()) {
    conn->dead.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn->push_mu);
    conn->push_corr = 0;
    return UnavailableFrame("push to " + endpoint + " failed: " + s.str());
  }

  std::unique_lock<std::mutex> lock(conn->push_mu);
  const bool done = conn->push_cv.wait_for(
      lock, std::chrono::milliseconds(config_.io_timeout_ms),
      [&conn] { return conn->push_done; });
  conn->push_corr = 0;
  if (!done || conn->push_failed) {
    // Same answer a down phone produces on the loopback path — the
    // scheduler already degrades gracefully on it.
    return UnavailableFrame("push to " + endpoint +
                            (done ? " failed" : " timed out"));
  }
  return std::move(conn->push_reply);
}

Bytes Daemon::RelayEndpoint::HandleFrame(std::span<const std::uint8_t> frame) {
  return daemon_.RelayPush(endpoint_, frame);
}

void Daemon::MaybeFinalize() {
  if (finalized_.load(std::memory_order_relaxed)) return;
  server::ParticipationManager& parts = server_->participations();
  if (parts.TotalCount() < expected_participations_) return;
  if (parts.ActiveCount() != 0) return;

  if (Result<int> n = server_->ProcessAllData(); !n.ok()) {
    SOR_LOG(kWarn, "daemon", "finalize: processing failed: " << n.error().str());
    return;
  }
  const std::vector<server::ApplicationRecord> records =
      server_->applications().All();
  Result<rank::FeatureMatrix> matrix =
      server_->data_processor().BuildFeatureMatrix(records,
                                                   config_.scenario.features);
  if (!matrix.ok()) {
    SOR_LOG(kWarn, "daemon", "finalize: matrix failed: " << matrix.error().str());
    return;
  }
  const rank::PersonalizableRanker ranker(matrix.value());
  std::vector<std::pair<std::string, rank::RankingOutcome>> rankings;
  for (const rank::UserProfile& profile : config_.scenario.profiles) {
    Result<rank::RankingOutcome> outcome =
        ranker.Rank(profile, config_.aggregation);
    if (!outcome.ok()) {
      SOR_LOG(kWarn, "daemon", "finalize: ranking failed: " << outcome.error().str());
      return;
    }
    rankings.emplace_back(profile.name, std::move(outcome).value());
  }
  const std::string text = core::RenderRankingsText(matrix.value(), rankings);
  if (!config_.rankings_path.empty()) {
    const std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
    if (Status s = WriteFileAtomic(config_.rankings_path, bytes); !s.ok()) {
      SOR_LOG(kWarn, "daemon", "finalize: " << s.str());
      return;
    }
  }
  WriteSnapshot();
  finalized_.store(true, std::memory_order_relaxed);
  SOR_LOG(kInfo, "daemon",
          "campaign finalized: " << rankings.size() << " profiles ranked");
}

void Daemon::WriteSnapshot() {
  if (config_.snapshot_path.empty() || !server_) return;
  const Bytes snapshot = server_->SnapshotState();
  if (Status s = WriteFileAtomic(config_.snapshot_path, snapshot); !s.ok()) {
    SOR_LOG(kWarn, "daemon", "snapshot: " << s.str());
  }
}

}  // namespace sor::transport

#include "transport/transport.hpp"

namespace sor::transport {

Metrics Metrics::For(obs::MetricsRegistry& registry) {
  Metrics m;
  m.bytes_in = &registry.counter("transport.bytes_in");
  m.bytes_out = &registry.counter("transport.bytes_out");
  m.frames_in = &registry.counter("transport.frames_in");
  m.frames_out = &registry.counter("transport.frames_out");
  m.frame_errors = &registry.counter("transport.frame_errors");
  m.connections = &registry.counter("transport.connections");
  m.accept_timeouts = &registry.counter("transport.accept_timeouts");
  m.read_timeouts = &registry.counter("transport.read_timeouts");
  m.write_timeouts = &registry.counter("transport.write_timeouts");
  return m;
}

}  // namespace sor::transport

#include "transport/pipe.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>

namespace sor::transport {

namespace {

// One direction of a duplex pipe: a bounded-ish byte queue with socket
// buffer semantics (writers block when full, readers block when empty,
// either end can close).
struct ByteQueue {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::uint8_t> bytes;
  bool closed = false;  // writer gone: drained bytes then EOF

  static constexpr std::size_t kCapacity = 1u << 20;  // 1 MiB, like SO_SNDBUF
};

bool WaitOn(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
            int timeout_ms, const auto& pred) {
  if (timeout_ms < 0) {
    cv.wait(lock, pred);
    return true;
  }
  return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), pred);
}

struct Duplex {
  ByteQueue a_to_b;
  ByteQueue b_to_a;
};

class PipeConnection final : public Connection {
 public:
  // `rx` is the queue this end reads, `tx` the queue it writes.
  PipeConnection(std::shared_ptr<Duplex> duplex, ByteQueue* rx, ByteQueue* tx,
                 std::string peer, Metrics metrics)
      : duplex_(std::move(duplex)),
        rx_(rx),
        tx_(tx),
        peer_(std::move(peer)),
        metrics_(metrics) {}
  ~PipeConnection() override { Close(); }

  Result<std::size_t> ReadSome(std::span<std::uint8_t> out,
                               int timeout_ms) override {
    std::unique_lock<std::mutex> lock(rx_->mu);
    if (!WaitOn(rx_->cv, lock, timeout_ms,
                [&] { return !rx_->bytes.empty() || rx_->closed; })) {
      if (metrics_.read_timeouts != nullptr) metrics_.read_timeouts->Inc();
      return Result<std::size_t>(Errc::kTimeout, "read deadline expired");
    }
    if (rx_->bytes.empty()) {
      // closed with nothing buffered: clean EOF once, unavailable after.
      if (saw_eof_) {
        return Result<std::size_t>(Errc::kUnavailable, "closed");
      }
      saw_eof_ = true;
      return static_cast<std::size_t>(0);
    }
    const std::size_t n = std::min(out.size(), rx_->bytes.size());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = rx_->bytes.front();
      rx_->bytes.pop_front();
    }
    rx_->cv.notify_all();  // wake a writer blocked on capacity
    if (metrics_.bytes_in != nullptr) {
      metrics_.bytes_in->Inc(static_cast<std::uint64_t>(n));
    }
    return n;
  }

  Status WriteAll(std::span<const std::uint8_t> data,
                  int timeout_ms) override {
    std::size_t off = 0;
    while (off < data.size()) {
      std::unique_lock<std::mutex> lock(tx_->mu);
      if (!WaitOn(tx_->cv, lock, timeout_ms, [&] {
            return tx_->closed || tx_->bytes.size() < ByteQueue::kCapacity;
          })) {
        if (metrics_.write_timeouts != nullptr) metrics_.write_timeouts->Inc();
        return Status(Errc::kTimeout, "write deadline expired");
      }
      if (tx_->closed) return Status(Errc::kUnavailable, "peer closed");
      const std::size_t room = ByteQueue::kCapacity - tx_->bytes.size();
      const std::size_t n = std::min(room, data.size() - off);
      tx_->bytes.insert(tx_->bytes.end(), data.begin() + static_cast<std::ptrdiff_t>(off),
                        data.begin() + static_cast<std::ptrdiff_t>(off + n));
      off += n;
      tx_->cv.notify_all();
      if (metrics_.bytes_out != nullptr) {
        metrics_.bytes_out->Inc(static_cast<std::uint64_t>(n));
      }
    }
    return Status::Ok();
  }

  void Close() override {
    // Mark both directions closed: our reads stop, and the peer sees EOF
    // after draining what we already wrote (half-close like shutdown(2)).
    for (ByteQueue* q : {rx_, tx_}) {
      std::lock_guard<std::mutex> lock(q->mu);
      q->closed = true;
      q->cv.notify_all();
    }
  }

  std::string peer() const override { return peer_; }

 private:
  std::shared_ptr<Duplex> duplex_;  // keeps the queues alive
  ByteQueue* rx_;
  ByteQueue* tx_;
  std::string peer_;
  Metrics metrics_;
  bool saw_eof_ = false;
};

struct PendingDial {
  std::shared_ptr<Duplex> duplex;
};

struct ListenerState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PendingDial> backlog;
  bool closed = false;
};

}  // namespace

struct PipeTransport::Registry {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<ListenerState>> listeners;
};

namespace {

class PipeListener final : public Listener {
 public:
  PipeListener(std::shared_ptr<PipeTransport::Registry> registry,
               std::shared_ptr<ListenerState> state, std::string address,
               Metrics metrics)
      : registry_(std::move(registry)),
        state_(std::move(state)),
        address_(std::move(address)),
        metrics_(metrics) {}
  ~PipeListener() override { Close(); }

  Result<std::unique_ptr<Connection>> Accept(int timeout_ms) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (!WaitOn(state_->cv, lock, timeout_ms,
                [&] { return !state_->backlog.empty() || state_->closed; })) {
      if (metrics_.accept_timeouts != nullptr) metrics_.accept_timeouts->Inc();
      return Result<std::unique_ptr<Connection>>(Errc::kTimeout,
                                                 "accept deadline expired");
    }
    if (state_->backlog.empty()) {
      return Result<std::unique_ptr<Connection>>(Errc::kUnavailable,
                                                 "listener closed");
    }
    PendingDial pending = std::move(state_->backlog.front());
    state_->backlog.pop_front();
    lock.unlock();
    if (metrics_.connections != nullptr) metrics_.connections->Inc();
    const std::string peer = address_ + "#" + std::to_string(++accepted_);
    // Server end reads a_to_b (what the dialer writes) and writes b_to_a.
    return std::unique_ptr<Connection>(
        new PipeConnection(pending.duplex, &pending.duplex->a_to_b,
                           &pending.duplex->b_to_a, peer, metrics_));
  }

  void Close() override {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->closed) return;
      state_->closed = true;
      state_->cv.notify_all();
    }
    std::lock_guard<std::mutex> lock(registry_->mu);
    auto it = registry_->listeners.find(address_);
    if (it != registry_->listeners.end() && it->second == state_) {
      registry_->listeners.erase(it);
    }
  }

  std::string address() const override { return address_; }

 private:
  std::shared_ptr<PipeTransport::Registry> registry_;
  std::shared_ptr<ListenerState> state_;
  std::string address_;
  Metrics metrics_;
  int accepted_ = 0;
};

}  // namespace

PipeTransport::PipeTransport(Metrics metrics)
    : registry_(std::make_shared<Registry>()), metrics_(metrics) {}

PipeTransport::~PipeTransport() = default;

Result<std::unique_ptr<Listener>> PipeTransport::Listen(
    const std::string& address) {
  if (address.empty()) {
    return Result<std::unique_ptr<Listener>>(Errc::kInvalidArgument,
                                             "empty pipe address");
  }
  std::lock_guard<std::mutex> lock(registry_->mu);
  auto [it, inserted] =
      registry_->listeners.emplace(address, std::make_shared<ListenerState>());
  if (!inserted) {
    return Result<std::unique_ptr<Listener>>(
        Errc::kAlreadyExists, "pipe address already bound: " + address);
  }
  return std::unique_ptr<Listener>(
      new PipeListener(registry_, it->second, address, metrics_));
}

Result<std::unique_ptr<Connection>> PipeTransport::Dial(
    const std::string& address, int /*timeout_ms*/) {
  std::shared_ptr<ListenerState> state;
  {
    std::lock_guard<std::mutex> lock(registry_->mu);
    auto it = registry_->listeners.find(address);
    if (it == registry_->listeners.end()) {
      return Result<std::unique_ptr<Connection>>(
          Errc::kUnavailable, "no pipe listener at " + address);
    }
    state = it->second;
  }
  auto duplex = std::make_shared<Duplex>();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->closed) {
      return Result<std::unique_ptr<Connection>>(
          Errc::kUnavailable, "pipe listener closed: " + address);
    }
    state->backlog.push_back(PendingDial{duplex});
    state->cv.notify_all();
  }
  if (metrics_.connections != nullptr) metrics_.connections->Inc();
  // Client end writes a_to_b and reads b_to_a.
  return std::unique_ptr<Connection>(new PipeConnection(
      duplex, &duplex->b_to_a, &duplex->a_to_b, address, metrics_));
}

}  // namespace sor::transport

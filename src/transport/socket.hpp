// SocketTransport — the deployable byte-stream transport.
//
// Addresses:
//   "unix:/path/to.sock"  Unix-domain stream socket (the default for
//                         daemon+loadgen on one host; no ports, no
//                         firewall, filesystem permissions apply).
//   "tcp:host:port"       IPv4 TCP stream socket ("tcp:0.0.0.0:7547" to
//                         listen on all interfaces).
//
// All blocking calls honour the transport deadline convention via poll(2);
// sockets are kept non-blocking so a deadline can interrupt a partial
// write. Close() from another thread uses shutdown(2) so blocked peers
// wake immediately rather than waiting out their deadline.
#pragma once

#include "transport/transport.hpp"

namespace sor::transport {

class SocketTransport final : public Transport {
 public:
  // Counters are optional; pass the daemon/loadgen registry family to get
  // transport.bytes_{in,out} etc. accounted.
  explicit SocketTransport(Metrics metrics = {}) : metrics_(metrics) {}

  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override;
  Result<std::unique_ptr<Connection>> Dial(const std::string& address,
                                           int timeout_ms) override;

 private:
  Metrics metrics_;
};

}  // namespace sor::transport

// PipeTransport — an in-process byte-stream transport.
//
// Semantically a SocketTransport whose wires are condvar-guarded byte
// queues: Dial/Accept rendezvous through a per-instance name registry,
// ReadSome/WriteAll block with the same deadline rules, Close unblocks
// the peer with EOF-then-kUnavailable just like a half-closed socket.
//
// Unit tests and the daemon-equivalence tests run the complete
// daemon+channel+loadgen stack over this transport, so the protocol
// logic is exercised without binding host sockets; only the thin
// socket.cpp syscall layer is unique to deployment.
#pragma once

#include <memory>

#include "transport/transport.hpp"

namespace sor::transport {

class PipeTransport final : public Transport {
 public:
  explicit PipeTransport(Metrics metrics = {});
  ~PipeTransport() override;

  // Addresses are arbitrary non-empty strings scoped to this instance.
  Result<std::unique_ptr<Listener>> Listen(const std::string& address) override;
  Result<std::unique_ptr<Connection>> Dial(const std::string& address,
                                           int timeout_ms) override;

  // Opaque per-instance listener registry (defined in pipe.cpp; public so
  // the file-local listener class can hold a reference).
  struct Registry;

 private:
  std::shared_ptr<Registry> registry_;
  Metrics metrics_;
};

}  // namespace sor::transport

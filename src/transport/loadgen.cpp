#include "transport/loadgen.hpp"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "codec/barcode.hpp"
#include "codec/messages.hpp"
#include "common/log.hpp"
#include "net/transport.hpp"
#include "phone/frontend.hpp"
#include "transport/channel.hpp"
#include "world/phone_agent.hpp"

namespace sor::transport {

namespace {

// Shared (cross-worker) accounting; counters are internally atomic.
struct Shared {
  obs::Counter* calls = nullptr;
  obs::Counter* call_failures = nullptr;
  obs::Counter* pushes = nullptr;
  obs::Histogram* latency_us = nullptr;
  std::atomic<std::uint64_t> ticks{0};
};

// The worker's stand-in for the sensing server on its private loopback
// network: every frame a phone addresses to "server" is shipped through
// the ClientChannel and the daemon's reply is returned as if the server
// answered locally. Call failures are translated to an ErrorReply
// kUnavailable frame — precisely what a down server produces on the
// loopback path — so the phones' existing retry/backoff machinery drives
// recovery with no loadgen-specific logic.
class ServerProxy final : public net::Endpoint {
 public:
  ServerProxy(ClientChannel& channel, Shared& shared)
      : channel_(channel), shared_(shared) {}

  [[nodiscard]] Bytes HandleFrame(
      std::span<const std::uint8_t> frame) override {
    const auto t0 = std::chrono::steady_clock::now();
    Result<Bytes> reply = channel_.Call("server", frame);
    const auto dt = std::chrono::steady_clock::now() - t0;
    shared_.latency_us->Observe(
        std::chrono::duration<double, std::micro>(dt).count());
    shared_.calls->Inc();
    if (!reply.ok()) {
      shared_.call_failures->Inc();
      ErrorReply err;
      err.code = static_cast<std::uint8_t>(Errc::kUnavailable);
      err.message = reply.error().message;
      return EncodeFrame(Message{err});
    }
    return std::move(reply).value();
  }

 private:
  ClientChannel& channel_;
  Shared& shared_;
};

// One worker thread's world: its share of the fleet on a private loopback
// network, bridged to the daemon by one connection.
struct Worker {
  SimClock clock;
  net::LoopbackNetwork net;
  std::unique_ptr<ClientChannel> channel;
  std::unique_ptr<ServerProxy> proxy;
  std::vector<std::unique_ptr<world::PhoneAgent>> agents;
  std::vector<std::unique_ptr<phone::MobileFrontend>> phones;
  std::map<std::string, phone::MobileFrontend*> by_endpoint;
  std::thread thread;

  [[nodiscard]] bool HasPendingTraffic() const {
    for (const auto& fe : phones) {
      if (fe->pending_uploads() > 0 || fe->pending_leaves() > 0) return true;
    }
    return false;
  }
};

void AppendJson(std::ostringstream& out, const char* key, double v,
                bool last = false) {
  out << "  \"" << key << "\": " << v << (last ? "\n" : ",\n");
}
void AppendJson(std::ostringstream& out, const char* key, std::uint64_t v,
                bool last = false) {
  out << "  \"" << key << "\": " << v << (last ? "\n" : ",\n");
}

}  // namespace

std::string LoadgenReport::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  AppendJson(out, "phones", phones);
  AppendJson(out, "workers", workers);
  AppendJson(out, "ticks", ticks);
  AppendJson(out, "calls", calls);
  AppendJson(out, "call_failures", call_failures);
  AppendJson(out, "pushes_served", pushes_served);
  AppendJson(out, "uploads_sent", uploads_sent);
  AppendJson(out, "upload_failures", upload_failures);
  AppendJson(out, "wall_seconds", wall_seconds);
  AppendJson(out, "calls_per_second", calls_per_second);
  AppendJson(out, "p50_call_us", p50_call_us);
  AppendJson(out, "p90_call_us", p90_call_us);
  AppendJson(out, "p99_call_us", p99_call_us, /*last=*/true);
  out << "}\n";
  return out.str();
}

Result<LoadgenReport> RunLoadgen(Transport& transport,
                                 const LoadgenConfig& config) {
  const core::FleetPlan plan = core::PlanFleet(config.scenario, config.plan);
  if (plan.phones.empty()) {
    return Result<LoadgenReport>(Errc::kInvalidArgument, "empty fleet plan");
  }
  auto owned_registry = std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry& registry =
      config.registry != nullptr ? *config.registry : *owned_registry;

  Shared shared;
  shared.calls = &registry.counter("loadgen.calls");
  shared.call_failures = &registry.counter("loadgen.call_failures");
  shared.pushes = &registry.counter("loadgen.pushes_served");
  shared.latency_us =
      &registry.histogram("loadgen.call_latency_us",
                          obs::ExponentialBuckets(10.0, 2.0, 20),
                          obs::Sharding::kPerThread);
  const Metrics channel_metrics = Metrics::For(registry);

  // Place-sharding: worker w owns every phone of places p ≡ w (mod W).
  const int num_workers = std::max(
      1, std::min(config.workers, static_cast<int>(plan.barcodes.size())));
  std::vector<std::unique_ptr<Worker>> workers;
  for (int w = 0; w < num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->net.set_clock(&worker->clock);
    worker->channel = std::make_unique<ClientChannel>(
        transport, config.address,
        [raw = worker.get(), &shared](const std::string& dest,
                                      std::span<const std::uint8_t> frame) {
          shared.pushes->Inc();
          auto it = raw->by_endpoint.find(dest);
          if (it == raw->by_endpoint.end()) {
            ErrorReply err;
            err.code = static_cast<std::uint8_t>(Errc::kNotFound);
            err.message = "no phone " + dest + " on this connection";
            return EncodeFrame(Message{err});
          }
          return it->second->HandleFrame(frame);
        },
        channel_metrics, config.io_timeout_ms);
    worker->proxy = std::make_unique<ServerProxy>(*worker->channel, shared);
    worker->net.Register(config.plan.server_endpoint, worker->proxy.get());
    workers.push_back(std::move(worker));
  }

  // Spawn the fleet (user ids follow plan order — the daemon registered
  // every user up-front in the same order, so UserId k+1 is plan.phones[k]).
  std::vector<std::pair<Worker*, phone::MobileFrontend*>> fleet;  // plan order
  for (std::size_t k = 0; k < plan.phones.size(); ++k) {
    const core::PhonePlan& ph = plan.phones[k];
    const world::PlaceModel& place = config.scenario.places[ph.place_index];
    Worker& worker = *workers[ph.place_index % workers.size()];

    world::PhoneAgentConfig agent_cfg;
    agent_cfg.id = PhoneId{ph.seq};
    agent_cfg.mobility =
        config.scenario.category == world::PlaceCategory::kHikingTrail
            ? world::Mobility::kTrailWalk
            : world::Mobility::kStatic;
    agent_cfg.enter_time = SimTime{0};
    agent_cfg.seed = ph.agent_seed;
    worker.agents.push_back(
        std::make_unique<world::PhoneAgent>(place, agent_cfg));

    phone::FrontendConfig phone_cfg;
    phone_cfg.phone_id = agent_cfg.id;
    phone_cfg.user_id = UserId{k + 1};
    phone_cfg.user_name = ph.user_name;
    phone_cfg.token = ph.token;
    worker.phones.push_back(std::make_unique<phone::MobileFrontend>(
        phone_cfg, worker.net, *worker.agents.back(), worker.clock));
    phone::MobileFrontend* frontend = worker.phones.back().get();
    frontend->AttachObservability(&registry, nullptr);
    worker.by_endpoint[frontend->EndpointName()] = frontend;
    fleet.emplace_back(&worker, frontend);
  }

  const auto wall_start = std::chrono::steady_clock::now();

  // Phase 1 — joins, serial in global plan order (the scheduler plans
  // online; join order is part of campaign identity). Retries bridge a
  // daemon restart.
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    const BitMatrix matrix =
        RenderBarcodeMatrix(plan.barcodes[plan.phones[k].place_index]);
    Status last = Status::Ok();
    bool joined = false;
    for (int attempt = 0; attempt < config.retry_attempts; ++attempt) {
      Result<TaskId> task =
          fleet[k].second->ScanBarcodeMatrix(matrix, config.budget_per_user);
      if (task.ok()) {
        joined = true;
        break;
      }
      last = task.error();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.retry_sleep_ms));
    }
    if (!joined) {
      return Result<LoadgenReport>(
          last.error().code,
          plan.phones[k].user_name + " never joined: " + last.str());
    }
  }

  // Phase 2 — the sensing period, one thread per worker.
  const std::int64_t period_ms =
      SimTime::FromSeconds(config.scenario.period_s).ms;
  const std::int64_t main_ticks =
      (period_ms + config.tick.ms - 1) / config.tick.ms;
  for (auto& worker : workers) {
    Worker* raw = worker.get();
    raw->thread = std::thread([raw, &config, &shared, main_ticks] {
      for (std::int64_t t = 0; t < main_ticks; ++t) {
        raw->clock.advance(config.tick);
        for (auto& frontend : raw->phones) frontend->Tick();
      }
      // Drain: a fault-free run leaves nothing queued; after a daemon
      // restart the store-and-forward queues flush here, paced by the
      // phones' own sim-time backoff.
      std::int64_t extra = 0;
      while (extra < config.drain_ticks_max && raw->HasPendingTraffic()) {
        raw->clock.advance(config.tick);
        for (auto& frontend : raw->phones) frontend->Tick();
        ++extra;
      }
      shared.ticks.fetch_add(static_cast<std::uint64_t>(main_ticks + extra),
                             std::memory_order_relaxed);
    });
  }
  for (auto& worker : workers) worker->thread.join();

  // Phase 3 — leaves, serial in global plan order. The daemon finalizes
  // (writes rankings + snapshot) inside the last leave's call.
  for (auto& [worker, frontend] : fleet) {
    Status s = frontend->LeavePlace();
    int attempt = 0;
    while (frontend->pending_leaves() > 0 &&
           attempt < config.retry_attempts) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.retry_sleep_ms));
      worker->clock.advance(config.tick);
      frontend->Tick();
      ++attempt;
    }
    if (frontend->pending_leaves() > 0) {
      return Result<LoadgenReport>(
          Errc::kUnavailable,
          frontend->EndpointName() + ": leave never acknowledged (" +
              s.str() + ")");
    }
  }
  for (auto& worker : workers) worker->channel->Close();

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  LoadgenReport report;
  report.phones = plan.phones.size();
  report.workers = static_cast<std::uint64_t>(workers.size());
  report.ticks = shared.ticks.load(std::memory_order_relaxed);
  report.calls = shared.calls->value();
  report.call_failures = shared.call_failures->value();
  report.pushes_served = shared.pushes->value();
  for (auto& [worker, frontend] : fleet) {
    report.uploads_sent += frontend->stats().uploads_sent;
    report.upload_failures += frontend->stats().upload_failures;
  }
  report.wall_seconds = wall.count();
  report.calls_per_second =
      wall.count() > 0.0 ? static_cast<double>(report.calls) / wall.count()
                         : 0.0;
  const obs::Histogram::Snapshot latency = shared.latency_us->Read();
  report.p50_call_us = obs::HistogramQuantile(latency, 0.50);
  report.p90_call_us = obs::HistogramQuantile(latency, 0.90);
  report.p99_call_us = obs::HistogramQuantile(latency, 0.99);
  return report;
}

}  // namespace sor::transport

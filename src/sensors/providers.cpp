#include "sensors/providers.hpp"

namespace sor::sensors {

SimDuration EmbeddedProvider::DefaultFreshness(SensorKind kind) {
  switch (kind) {
    // Fast-changing channels: buffered readings go stale almost instantly.
    case SensorKind::kAccelerometer:
    case SensorKind::kGyroscope:
    case SensorKind::kCompass:
      return SimDuration{100};
    case SensorKind::kMicrophone:
      return SimDuration{500};
    case SensorKind::kGps:
      return SimDuration{2'000};
    case SensorKind::kLight:
    case SensorKind::kWifi:
      return SimDuration{3'000};
    case SensorKind::kBarometer:
      return SimDuration{10'000};
    // Environmental channels change slowly: generous sharing window.
    case SensorKind::kDroneTemperature:
    case SensorKind::kDroneHumidity:
    case SensorKind::kDroneLight:
    case SensorKind::kDronePressure:
    case SensorKind::kDroneGasCo:
    case SensorKind::kDroneColor:
      return SimDuration{15'000};
    case SensorKind::kCount:
      break;
  }
  return SimDuration{1'000};
}

EmbeddedProvider::EmbeddedProvider(SensorKind kind, SensorEnvironment& env)
    : BufferedProvider(kind, env, DefaultFreshness(kind)) {}

GpsProvider::GpsProvider(SensorEnvironment& env)
    : BufferedProvider(SensorKind::kGps, env,
                       EmbeddedProvider::DefaultFreshness(SensorKind::kGps)) {}

Result<Reading> GpsProvider::ReadPhysical(SimTime t) {
  Reading r;
  r.kind = SensorKind::kGps;
  r.time = t;
  const GeoPoint fix = env().Position(t);
  r.location = fix;
  r.value = fix.alt_m;
  return r;
}

SensordroneProvider::SensordroneProvider(SensorKind kind,
                                         SensorEnvironment& env,
                                         const BluetoothLink& link)
    : BufferedProvider(kind, env,
                       EmbeddedProvider::DefaultFreshness(kind)),
      link_(link) {}

Result<Reading> SensordroneProvider::ReadPhysical(SimTime t) {
  if (!link_.paired())
    return Error{Errc::kUnavailable, "sensordrone not paired"};
  Reading r;
  r.kind = kind();
  r.time = t;
  r.value = env().Sample(kind(), t);
  return r;
}

std::unique_ptr<Provider> MakeProvider(SensorKind kind, SensorEnvironment& env,
                                       const BluetoothLink& link) {
  if (kind == SensorKind::kGps) return std::make_unique<GpsProvider>(env);
  if (IsExternalSensor(kind))
    return std::make_unique<SensordroneProvider>(kind, env, link);
  return std::make_unique<EmbeddedProvider>(kind, env);
}

}  // namespace sor::sensors

// Provider: the software component that actually operates one sensor.
//
// §II-A: "If we want to make SOR support a new sensor (embedded or
// external), we only need to create a Provider for that sensor. ... each
// Provider maintains a data buffer which buffers data collected from its
// sensor and can even share them with multiple different tasks. In this
// way, energy consumed for sensing can be reduced."
//
// BufferedProvider implements exactly that: an Acquire() first tries to
// satisfy the request from buffered readings that are still fresh; only on
// a miss does it touch the physical sensor (the SensorEnvironment). The
// physical/buffered counters let tests and the energy ablation bench verify
// the saving.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/result.hpp"
#include "sensors/reading.hpp"

namespace sor::sensors {

struct AcquireRequest {
  SimTime t;            // start of the sampling window
  SimDuration window;   // Δt (§IV-A): readings are taken within [t, t+Δt]
  int samples = 1;      // how many readings inside the window
};

struct ProviderStats {
  std::uint64_t physical_acquisitions = 0;  // sensor actually powered
  std::uint64_t buffered_hits = 0;          // served from the shared buffer
  std::uint64_t failures = 0;
};

class Provider {
 public:
  virtual ~Provider() = default;

  [[nodiscard]] virtual SensorKind kind() const = 0;

  // Acquire `samples` readings within [t, t+Δt]. Never blocks: in this
  // simulation the provider completes synchronously but reports a latency,
  // which the SensorManager compares against the task's timeout (§II-A:
  // "the manager can cancel data acquisition if timeout").
  [[nodiscard]] virtual Result<std::vector<Reading>> Acquire(
      const AcquireRequest& req) = 0;

  // Simulated completion latency of one acquisition.
  [[nodiscard]] virtual SimDuration latency() const {
    return SimDuration{50};  // 50 ms default
  }

  [[nodiscard]] virtual const ProviderStats& stats() const = 0;
};

// Common buffering machinery for all concrete providers.
class BufferedProvider : public Provider {
 public:
  // `freshness`: a buffered reading can be re-used for a request at time t
  // if it was taken within [t - freshness, t + window + freshness].
  BufferedProvider(SensorKind kind, SensorEnvironment& env,
                   SimDuration freshness);

  [[nodiscard]] SensorKind kind() const override { return kind_; }
  [[nodiscard]] Result<std::vector<Reading>> Acquire(
      const AcquireRequest& req) override;
  [[nodiscard]] const ProviderStats& stats() const override { return stats_; }

  // Drop buffered readings older than `before` (called opportunistically).
  void TrimBuffer(SimTime before);

  [[nodiscard]] std::size_t buffer_size() const { return buffer_.size(); }

 protected:
  // Produce one physical reading at time t. Default: env.Sample().
  [[nodiscard]] virtual Result<Reading> ReadPhysical(SimTime t);

  SensorEnvironment& env() { return env_; }

 private:
  SensorKind kind_;
  SensorEnvironment& env_;
  SimDuration freshness_;
  std::deque<Reading> buffer_;  // ordered by time
  ProviderStats stats_;
};

}  // namespace sor::sensors

#include "sensors/provider.hpp"

#include <algorithm>
#include <cassert>

namespace sor::sensors {

BufferedProvider::BufferedProvider(SensorKind kind, SensorEnvironment& env,
                                   SimDuration freshness)
    : kind_(kind), env_(env), freshness_(freshness) {}

Result<Reading> BufferedProvider::ReadPhysical(SimTime t) {
  Reading r;
  r.kind = kind_;
  r.time = t;
  r.value = env_.Sample(kind_, t);
  return r;
}

Result<std::vector<Reading>> BufferedProvider::Acquire(
    const AcquireRequest& req) {
  if (req.samples < 1) {
    ++stats_.failures;
    return Error{Errc::kInvalidArgument, "samples must be >= 1"};
  }
  if (req.window.ms < 0) {
    ++stats_.failures;
    return Error{Errc::kInvalidArgument, "negative sampling window"};
  }

  std::vector<Reading> out;
  out.reserve(static_cast<std::size_t>(req.samples));
  // Readings taken by THIS acquisition are merged into the shared buffer
  // only after it completes: a request for k samples within Δt must
  // produce k independent readings ("multiple readings within [t, t+Δt] to
  // ensure high sensing quality", §IV-A), not one reading echoed k times.
  std::vector<Reading> fresh_batch;

  // Desired sample times: evenly spread over [t, t+Δt].
  for (int i = 0; i < req.samples; ++i) {
    const SimTime want =
        req.samples == 1
            ? req.t
            : req.t + SimDuration{req.window.ms * i / (req.samples - 1)};

    // Shared-buffer lookup: any reading within the freshness tolerance of
    // the desired instant can be re-used by this task (§II-A).
    const SimTime lo = want - freshness_;
    const SimTime hi = want + freshness_;
    const Reading* hit = nullptr;
    for (auto it = buffer_.rbegin(); it != buffer_.rend(); ++it) {
      if (it->time < lo) break;  // buffer ordered by time: nothing older fits
      if (it->time <= hi) {
        hit = &*it;
        break;
      }
    }
    if (hit != nullptr) {
      ++stats_.buffered_hits;
      out.push_back(*hit);
      continue;
    }

    Result<Reading> fresh = ReadPhysical(want);
    if (!fresh.ok()) {
      ++stats_.failures;
      return fresh.error();
    }
    ++stats_.physical_acquisitions;
    fresh_batch.push_back(fresh.value());
    out.push_back(std::move(fresh).value());
  }

  // Merge this acquisition's readings into the shared buffer, keeping it
  // ordered (physical reads interleave in time when multiple tasks request
  // overlapping windows).
  for (const Reading& r : fresh_batch) {
    const auto pos = std::upper_bound(
        buffer_.begin(), buffer_.end(), r,
        [](const Reading& a, const Reading& b) { return a.time < b.time; });
    buffer_.insert(pos, r);
  }
  return out;
}

void BufferedProvider::TrimBuffer(SimTime before) {
  while (!buffer_.empty() && buffer_.front().time < before)
    buffer_.pop_front();
}

}  // namespace sor::sensors

// A single sensor reading.
#pragma once

#include <optional>
#include <vector>

#include "common/geo.hpp"
#include "common/sensor_kind.hpp"
#include "common/sim_time.hpp"

namespace sor::sensors {

struct Reading {
  SensorKind kind = SensorKind::kAccelerometer;
  SimTime time;
  double value = 0.0;                // scalar channel (unit per SensorKind)
  std::optional<GeoPoint> location;  // populated by GPS fixes

  friend bool operator==(const Reading&, const Reading&) = default;
};

// The physical world as one phone's sensors see it. Implemented by
// src/world (ground-truth signals + per-phone noise + mobility); sensors
// depends only on this interface so the module is testable with synthetic
// lambdas.
class SensorEnvironment {
 public:
  virtual ~SensorEnvironment() = default;

  // Instantaneous (already noisy) value of `kind` at this phone at `t`.
  [[nodiscard]] virtual double Sample(SensorKind kind, SimTime t) = 0;

  // The phone's position at `t` (GPS provider; participation checks).
  [[nodiscard]] virtual GeoPoint Position(SimTime t) = 0;
};

}  // namespace sor::sensors

#include "sensors/manager.hpp"

#include <string>

namespace sor::sensors {

void SensorManager::RegisterProvider(std::unique_ptr<Provider> provider) {
  providers_[provider->kind()] = std::move(provider);
}

bool SensorManager::UnregisterProvider(SensorKind kind) {
  return providers_.erase(kind) != 0;
}

bool SensorManager::Supports(SensorKind kind) const {
  return providers_.contains(kind);
}

std::vector<SensorKind> SensorManager::SupportedKinds() const {
  std::vector<SensorKind> kinds;
  kinds.reserve(providers_.size());
  for (const auto& [kind, _] : providers_) kinds.push_back(kind);
  return kinds;
}

Provider* SensorManager::provider(SensorKind kind) {
  auto it = providers_.find(kind);
  return it == providers_.end() ? nullptr : it->second.get();
}

Result<std::vector<Reading>> SensorManager::Acquire(SensorKind kind,
                                                    const AcquireRequest& req,
                                                    SimDuration timeout) {
  auto it = providers_.find(kind);
  if (it == providers_.end()) {
    return Error{Errc::kUnavailable,
                 "no provider registered for sensor '" +
                     std::string(to_string(kind)) + "'"};
  }
  if (it->second->latency() > timeout) {
    ++timeouts_;
    return Error{Errc::kTimeout,
                 "acquisition from '" + std::string(to_string(kind)) +
                     "' cancelled: latency " +
                     std::to_string(it->second->latency().ms) +
                     "ms exceeds timeout " + std::to_string(timeout.ms) +
                     "ms"};
  }
  return it->second->Acquire(req);
}

}  // namespace sor::sensors

// Sensing energy model.
//
// The paper motivates both the shared provider buffers ("In this way,
// energy consumed for sensing can be reduced", §II-A) and the budget
// N^B_k ("the higher the sensing cost (such as energy consumption)",
// §III) with energy. This model prices one physical acquisition per
// sensor kind (millijoules, order-of-magnitude figures for a 2013-era
// smartphone) so campaigns can report what sensing actually cost a phone
// and how much the buffer saved.
#pragma once

#include "common/sensor_kind.hpp"
#include "sensors/manager.hpp"

namespace sor::sensors {

// Energy of one physical sample, millijoules.
[[nodiscard]] constexpr double AcquisitionEnergyMj(SensorKind kind) {
  switch (kind) {
    case SensorKind::kAccelerometer: return 0.5;
    case SensorKind::kGyroscope: return 1.2;
    case SensorKind::kCompass: return 0.6;
    case SensorKind::kGps: return 150.0;   // fix acquisition dominates
    case SensorKind::kMicrophone: return 5.0;
    case SensorKind::kLight: return 0.3;
    case SensorKind::kWifi: return 60.0;   // active scan
    case SensorKind::kBarometer: return 0.4;
    // Sensordrone channels pay a Bluetooth round trip on top of the
    // sensor itself.
    case SensorKind::kDroneTemperature:
    case SensorKind::kDroneHumidity:
    case SensorKind::kDroneLight:
    case SensorKind::kDronePressure:
    case SensorKind::kDroneGasCo:
    case SensorKind::kDroneColor:
      return 8.0;
    case SensorKind::kCount: break;
  }
  return 1.0;
}

struct EnergyReport {
  double spent_mj = 0.0;  // physical acquisitions actually paid for
  double saved_mj = 0.0;  // acquisitions served from the shared buffer

  EnergyReport& operator+=(const EnergyReport& o) {
    spent_mj += o.spent_mj;
    saved_mj += o.saved_mj;
    return *this;
  }
};

[[nodiscard]] inline EnergyReport EnergyOf(const Provider& provider) {
  const double unit = AcquisitionEnergyMj(provider.kind());
  return {unit * static_cast<double>(provider.stats().physical_acquisitions),
          unit * static_cast<double>(provider.stats().buffered_hits)};
}

// Aggregate over every provider registered with a manager.
[[nodiscard]] inline EnergyReport EnergyOf(SensorManager& manager) {
  EnergyReport total;
  for (SensorKind kind : manager.SupportedKinds()) {
    if (const Provider* p = manager.provider(kind)) total += EnergyOf(*p);
  }
  return total;
}

}  // namespace sor::sensors

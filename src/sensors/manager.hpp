// SensorManager + Provider Register (§II-A, Fig. 3).
//
// "When a new sensor is integrated into SOR, the corresponding Provider
// needs to be registered with the Sensor Manager via the Provider Register,
// which keeps a list of currently supported sensors and the corresponding
// data acquisition functions we defined. ... When a task instance requests
// data by calling such a data acquisition function, the Sensor Manager
// directs the call to the corresponding Provider ... the manager can cancel
// data acquisition if timeout."
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "sensors/provider.hpp"

namespace sor::sensors {

class SensorManager {
 public:
  // Register a provider; replaces any previous provider of the same kind.
  void RegisterProvider(std::unique_ptr<Provider> provider);
  // Remove a provider (e.g. an external sensor that was unpaired). Returns
  // false when no provider of that kind was registered.
  bool UnregisterProvider(SensorKind kind);

  [[nodiscard]] bool Supports(SensorKind kind) const;
  [[nodiscard]] std::vector<SensorKind> SupportedKinds() const;
  [[nodiscard]] Provider* provider(SensorKind kind);

  // Route an acquisition to the right provider, enforcing the timeout: a
  // provider whose completion latency exceeds `timeout` is cancelled and
  // the acquisition fails with kTimeout.
  [[nodiscard]] Result<std::vector<Reading>> Acquire(
      SensorKind kind, const AcquireRequest& req,
      SimDuration timeout = SimDuration{5'000});

  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  std::unordered_map<SensorKind, std::unique_ptr<Provider>> providers_;
  std::uint64_t timeouts_ = 0;
};

}  // namespace sor::sensors

// Concrete providers: embedded (Nexus4) sensors, the GPS, and the external
// Sensordrone reached over a (simulated) Bluetooth pairing.
#pragma once

#include <memory>

#include "sensors/provider.hpp"

namespace sor::sensors {

// Generic embedded scalar sensor (light, microphone, WiFi RSSI,
// accelerometer magnitude, ...). Freshness defaults are per-kind: slowly
// varying channels tolerate older buffered readings.
class EmbeddedProvider final : public BufferedProvider {
 public:
  EmbeddedProvider(SensorKind kind, SensorEnvironment& env);

  [[nodiscard]] SimDuration latency() const override {
    return SimDuration{20};  // on-board bus, fast
  }

  // Per-kind default buffer freshness.
  [[nodiscard]] static SimDuration DefaultFreshness(SensorKind kind);
};

// GPS: readings carry a location fix; the scalar channel reports altitude
// (used for the "altitude change" trail feature alongside the barometer).
class GpsProvider final : public BufferedProvider {
 public:
  explicit GpsProvider(SensorEnvironment& env);

  [[nodiscard]] SimDuration latency() const override {
    return SimDuration{800};  // fix acquisition is slow
  }

 protected:
  [[nodiscard]] Result<Reading> ReadPhysical(SimTime t) override;
};

// Simulated Bluetooth link state for the Sensordrone.
class BluetoothLink {
 public:
  void Pair() { paired_ = true; }
  void Unpair() { paired_ = false; }
  [[nodiscard]] bool paired() const { return paired_; }

 private:
  bool paired_ = false;
};

// External Sensordrone sensor: fails with kUnavailable when the drone is
// not paired (the failure-injection path for external sensors).
class SensordroneProvider final : public BufferedProvider {
 public:
  SensordroneProvider(SensorKind kind, SensorEnvironment& env,
                      const BluetoothLink& link);

  [[nodiscard]] SimDuration latency() const override {
    return SimDuration{150};  // Bluetooth round trip
  }

 protected:
  [[nodiscard]] Result<Reading> ReadPhysical(SimTime t) override;

 private:
  const BluetoothLink& link_;
};

// Factory covering every SensorKind.
[[nodiscard]] std::unique_ptr<Provider> MakeProvider(
    SensorKind kind, SensorEnvironment& env, const BluetoothLink& link);

}  // namespace sor::sensors

#include "db/value.hpp"

#include <sstream>

namespace sor::db {

std::string Value::str() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::ostringstream oss;
    oss << as_double();
    return oss.str();
  }
  if (is_text()) return as_text();
  if (is_bool()) return as_bool() ? "true" : "false";
  return "<blob:" + std::to_string(as_blob().size()) + "B>";
}

int Value::Compare(const Value& a, const Value& b) {
  const auto type_rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_bool()) return 1;
    if (v.is_int() || v.is_double()) return 2;
    if (v.is_text()) return 3;
    return 4;  // blob
  };
  const int ra = type_rank(a);
  const int rb = type_rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0: return 0;
    case 1: return (a.as_bool() ? 1 : 0) - (b.as_bool() ? 1 : 0);
    case 2: {
      const double x = a.numeric();
      const double y = b.numeric();
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    case 3: return a.as_text().compare(b.as_text());
    default: {
      const Blob& x = a.as_blob();
      const Blob& y = b.as_blob();
      if (x < y) return -1;
      if (y < x) return 1;
      return 0;
    }
  }
}

int Schema::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::Validate(const Row& row) const {
  if (row.size() != columns.size()) {
    return Status(Errc::kInvalidArgument,
                  table_name + ": row has " + std::to_string(row.size()) +
                      " cells, schema has " + std::to_string(columns.size()));
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const ColumnSpec& col = columns[i];
    if (row[i].is_null()) {
      if (!col.nullable || static_cast<int>(i) == primary_key) {
        return Status(Errc::kInvalidArgument,
                      table_name + "." + col.name + ": NULL not allowed");
      }
      continue;
    }
    if (!row[i].matches(col.type)) {
      return Status(Errc::kInvalidArgument,
                    table_name + "." + col.name + ": expected " +
                        std::string(to_string(col.type)) + ", got " +
                        row[i].str());
    }
  }
  return Status::Ok();
}

}  // namespace sor::db

#include "db/table.hpp"

#include <algorithm>
#include <cassert>

namespace sor::db {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  assert(schema_.primary_key >= 0 &&
         schema_.primary_key < static_cast<int>(schema_.columns.size()));
}

std::string Table::KeyString(const Value& v) const {
  // Values of one column share a type (schema-enforced), so a typed prefix
  // plus the printed form is a collision-free key. Doubles get full
  // precision to avoid aliasing distinct keys.
  if (v.is_double()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "d%.17g", v.as_double());
    return buf;
  }
  if (v.is_int()) return "i" + std::to_string(v.as_int());
  if (v.is_text()) return "t" + v.as_text();
  if (v.is_bool()) return v.as_bool() ? "b1" : "b0";
  if (v.is_null()) return "n";
  const Blob& b = v.as_blob();
  return "x" + std::string(b.begin(), b.end());
}

Status Table::CreateIndex(const std::string& column) {
  std::lock_guard lock(mu_);
  const int ci = schema_.column_index(column);
  if (ci < 0)
    return Status(Errc::kInvalidArgument, "no column named " + column);
  if (secondary_.contains(ci)) return Status::Ok();
  auto& idx = secondary_[ci];
  for (const auto& [id, row] : rows_) idx.emplace(KeyString(row[ci]), id);
  return Status::Ok();
}

void Table::IndexRow(RowId id, const Row& row) {
  pk_index_.emplace(KeyString(row[schema_.primary_key]), id);
  for (auto& [ci, idx] : secondary_) idx.emplace(KeyString(row[ci]), id);
}

void Table::UnindexRow(RowId id, const Row& row) {
  pk_index_.erase(KeyString(row[schema_.primary_key]));
  for (auto& [ci, idx] : secondary_) {
    auto [lo, hi] = idx.equal_range(KeyString(row[ci]));
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        idx.erase(it);
        break;
      }
    }
  }
}

Result<RowId> Table::Insert(Row row) {
  if (Status s = schema_.Validate(row); !s.ok()) return s.error();
  std::lock_guard lock(mu_);
  const std::string key = KeyString(row[schema_.primary_key]);
  if (pk_index_.contains(key)) {
    return Error{Errc::kAlreadyExists,
                 schema_.table_name + ": duplicate key " +
                     row[schema_.primary_key].str()};
  }
  const RowId id = next_id_++;
  IndexRow(id, row);
  rows_.emplace(id, std::move(row));
  return id;
}

Result<RowId> Table::Upsert(Row row) {
  if (Status s = schema_.Validate(row); !s.ok()) return s.error();
  std::lock_guard lock(mu_);
  const std::string key = KeyString(row[schema_.primary_key]);
  if (auto it = pk_index_.find(key); it != pk_index_.end()) {
    const RowId id = it->second;
    UnindexRow(id, rows_.at(id));
    IndexRow(id, row);
    rows_[id] = std::move(row);
    return id;
  }
  const RowId id = next_id_++;
  IndexRow(id, row);
  rows_.emplace(id, std::move(row));
  return id;
}

std::optional<Row> Table::FindByKey(const Value& key) const {
  std::shared_lock lock(mu_);
  auto it = pk_index_.find(KeyString(key));
  if (it == pk_index_.end()) return std::nullopt;
  return rows_.at(it->second);
}

std::vector<Row> Table::FindWhereEq(const std::string& column,
                                    const Value& v) const {
  std::shared_lock lock(mu_);
  const int ci = schema_.column_index(column);
  std::vector<Row> out;
  if (ci < 0) return out;
  if (auto idx = secondary_.find(ci); idx != secondary_.end()) {
    auto [lo, hi] = idx->second.equal_range(KeyString(v));
    for (auto it = lo; it != hi; ++it) out.push_back(rows_.at(it->second));
    return out;
  }
  if (ci == schema_.primary_key) {
    if (auto it = pk_index_.find(KeyString(v)); it != pk_index_.end())
      out.push_back(rows_.at(it->second));
    return out;
  }
  for (const auto& [id, row] : rows_) {
    if (row[ci] == v) out.push_back(row);
  }
  return out;
}

std::vector<Row> Table::Scan(const Predicate& pred) const {
  std::shared_lock lock(mu_);
  std::vector<Row> out;
  for (const auto& [id, row] : rows_) {
    if (!pred || pred(row)) out.push_back(row);
  }
  return out;
}

void Table::ForEach(const RowVisitor& visit) const {
  std::shared_lock lock(mu_);
  for (const auto& [id, row] : rows_) {
    if (!visit(row)) return;
  }
}

void Table::ForEachWhereEq(const std::string& column, const Value& v,
                           const RowVisitor& visit) const {
  std::shared_lock lock(mu_);
  const int ci = schema_.column_index(column);
  if (ci < 0) return;
  if (auto idx = secondary_.find(ci); idx != secondary_.end()) {
    auto [lo, hi] = idx->second.equal_range(KeyString(v));
    for (auto it = lo; it != hi; ++it) {
      if (!visit(rows_.at(it->second))) return;
    }
    return;
  }
  if (ci == schema_.primary_key) {
    if (auto it = pk_index_.find(KeyString(v)); it != pk_index_.end())
      (void)visit(rows_.at(it->second));
    return;
  }
  for (const auto& [id, row] : rows_) {
    if (row[ci] == v && !visit(row)) return;
  }
}

std::vector<Row> Table::ScanOrderedBy(const std::string& column,
                                      const Predicate& pred) const {
  std::vector<Row> out = Scan(pred);
  const int ci = schema_.column_index(column);
  if (ci < 0) return out;
  std::stable_sort(out.begin(), out.end(), [ci](const Row& a, const Row& b) {
    return Value::Compare(a[ci], b[ci]) < 0;
  });
  return out;
}

Result<std::size_t> Table::Update(const Predicate& pred,
                                  const std::function<void(Row&)>& mutate) {
  std::lock_guard lock(mu_);
  // Two-phase: compute all new rows first, validate (including pk
  // uniqueness among survivors), then commit. Keeps the table consistent on
  // failure.
  std::vector<std::pair<RowId, Row>> changed;
  for (const auto& [id, row] : rows_) {
    if (pred && !pred(row)) continue;
    Row next = row;
    mutate(next);
    if (Status s = schema_.Validate(next); !s.ok()) return s.error();
    changed.emplace_back(id, std::move(next));
  }
  return CommitUpdate(std::move(changed));
}

Result<std::size_t> Table::UpdateWhereEq(
    const std::string& column, const Value& v, const Predicate& pred,
    const std::function<void(Row&)>& mutate) {
  std::lock_guard lock(mu_);
  const int ci = schema_.column_index(column);
  if (ci < 0)
    return Error{Errc::kInvalidArgument, "no column named " + column};

  // Candidate ids from the index (or a walk when unindexed), sorted so the
  // change set commits in the same RowId order a full Update would use.
  std::vector<RowId> candidates;
  if (auto idx = secondary_.find(ci); idx != secondary_.end()) {
    auto [lo, hi] = idx->second.equal_range(KeyString(v));
    for (auto it = lo; it != hi; ++it) candidates.push_back(it->second);
    std::sort(candidates.begin(), candidates.end());
  } else if (ci == schema_.primary_key) {
    if (auto it = pk_index_.find(KeyString(v)); it != pk_index_.end())
      candidates.push_back(it->second);
  } else {
    for (const auto& [id, row] : rows_) {
      if (row[ci] == v) candidates.push_back(id);
    }
  }

  std::vector<std::pair<RowId, Row>> changed;
  for (RowId id : candidates) {
    const Row& row = rows_.at(id);
    if (pred && !pred(row)) continue;
    Row next = row;
    mutate(next);
    if (Status s = schema_.Validate(next); !s.ok()) return s.error();
    changed.emplace_back(id, std::move(next));
  }
  return CommitUpdate(std::move(changed));
}

Result<std::size_t> Table::CommitUpdate(
    std::vector<std::pair<RowId, Row>> changed) {
  // PK-uniqueness check against unchanged rows and within the change set.
  std::map<std::string, RowId> new_keys;
  for (const auto& [id, next] : changed) {
    const std::string key = KeyString(next[schema_.primary_key]);
    if (auto it = pk_index_.find(key);
        it != pk_index_.end() && it->second != id) {
      // Key collides with a row not in the change set?
      const bool collides_with_changed =
          std::any_of(changed.begin(), changed.end(),
                      [&](const auto& p) { return p.first == it->second; });
      if (!collides_with_changed)
        return Error{Errc::kAlreadyExists, "update would duplicate key"};
    }
    if (!new_keys.emplace(key, id).second)
      return Error{Errc::kAlreadyExists, "update would duplicate key"};
  }
  for (auto& [id, next] : changed) {
    UnindexRow(id, rows_.at(id));
    IndexRow(id, next);
    rows_[id] = std::move(next);
  }
  return changed.size();
}

Status Table::UpdateByKey(const Value& key,
                          const std::function<void(Row&)>& mutate) {
  const int pk = schema_.primary_key;
  Result<std::size_t> n = Update(
      [&](const Row& row) { return row[pk] == key; }, mutate);
  if (!n.ok()) return n.error();
  if (n.value() == 0)
    return Status(Errc::kNotFound,
                  schema_.table_name + ": no row with key " + key.str());
  return Status::Ok();
}

std::size_t Table::Erase(const Predicate& pred) {
  std::lock_guard lock(mu_);
  std::vector<RowId> doomed;
  for (const auto& [id, row] : rows_) {
    if (!pred || pred(row)) doomed.push_back(id);
  }
  for (RowId id : doomed) {
    UnindexRow(id, rows_.at(id));
    rows_.erase(id);
  }
  return doomed.size();
}

std::size_t Table::size() const {
  std::shared_lock lock(mu_);
  return rows_.size();
}

std::vector<std::string> Table::IndexedColumns() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> cols;
  cols.reserve(secondary_.size());
  for (const auto& [ci, _] : secondary_)
    cols.push_back(schema_.columns[static_cast<std::size_t>(ci)].name);
  return cols;
}

}  // namespace sor::db

#include "db/table.hpp"

#include <algorithm>
#include <cassert>

namespace sor::db {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  assert(schema_.primary_key >= 0 &&
         schema_.primary_key < static_cast<int>(schema_.columns.size()));
}

void Table::AddPosting(Postings& p, RowId id) {
  // Postings stay sorted ascending; appends dominate (new rows get the
  // largest RowId), re-adds after an update binary-insert.
  if (p.empty() || p.back() < id) {
    p.push_back(id);
    return;
  }
  p.insert(std::lower_bound(p.begin(), p.end(), id), id);
}

void Table::RemovePosting(SecondaryIndex& idx, const Value& key, RowId id) {
  auto it = idx.find(key);
  if (it == idx.end()) return;
  Postings& p = it->second;
  auto pos = std::lower_bound(p.begin(), p.end(), id);
  if (pos != p.end() && *pos == id) p.erase(pos);
  if (p.empty()) idx.erase(it);
}

Status Table::CreateIndex(const std::string& column) {
  std::lock_guard lock(mu_);
  const int ci = schema_.column_index(column);
  if (ci < 0)
    return Status(Errc::kInvalidArgument, "no column named " + column);
  if (secondary_.contains(ci)) return Status::Ok();
  auto& idx = secondary_[ci];
  // Back-fill in RowId order, so every postings list is born sorted.
  for (RowId id = 1; id < next_id_; ++id) {
    const auto& slot = slots_[static_cast<std::size_t>(id - 1)];
    if (slot.has_value())
      AddPosting(idx[(*slot)[static_cast<std::size_t>(ci)]], id);
  }
  return Status::Ok();
}

void Table::IndexRow(RowId id, const Row& row) {
  pk_index_.emplace(row[static_cast<std::size_t>(schema_.primary_key)], id);
  for (auto& [ci, idx] : secondary_)
    AddPosting(idx[row[static_cast<std::size_t>(ci)]], id);
}

void Table::UnindexRow(RowId id, const Row& row) {
  pk_index_.erase(row[static_cast<std::size_t>(schema_.primary_key)]);
  for (auto& [ci, idx] : secondary_)
    RemovePosting(idx, row[static_cast<std::size_t>(ci)], id);
}

Result<RowId> Table::Insert(Row row) {
  if (Status s = schema_.Validate(row); !s.ok()) return s.error();
  if (storage_faults_ != nullptr && storage_faults_->FailWrite(schema_.table_name))
    return Error{Errc::kUnavailable,
                 schema_.table_name + ": injected storage write failure"};
  std::lock_guard lock(mu_);
  if (pk_index_.contains(row[static_cast<std::size_t>(schema_.primary_key)])) {
    return Error{Errc::kAlreadyExists,
                 schema_.table_name + ": duplicate key " +
                     row[static_cast<std::size_t>(schema_.primary_key)].str()};
  }
  const RowId id = next_id_++;
  slots_.push_back(std::move(row));
  ++live_;
  IndexRow(id, *slots_.back());
  return id;
}

Result<std::vector<RowId>> Table::InsertBatch(std::vector<Row> rows) {
  for (const Row& row : rows) {
    if (Status s = schema_.Validate(row); !s.ok()) return s.error();
  }
  // One batch is one write operation to the injector, mirroring Insert's
  // check-before-any-state-change contract.
  if (storage_faults_ != nullptr && storage_faults_->FailWrite(schema_.table_name))
    return Error{Errc::kUnavailable,
                 schema_.table_name + ": injected storage write failure"};
  std::lock_guard lock(mu_);
  const auto pk = std::size_t(schema_.primary_key);
  // Claim every key in the pk index up front — ids are predictable, the
  // batch occupies [next_id_, next_id_ + rows.size()). A collision (with
  // the table or within the batch, which the emplace catches uniformly)
  // unwinds the claims, so a failed batch leaves no trace.
  std::vector<decltype(pk_index_)::iterator> claimed;
  claimed.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    auto [it, fresh] = pk_index_.emplace(rows[i][pk], next_id_ + i);
    if (!fresh) {
      for (auto c : claimed) pk_index_.erase(c);
      return Error{Errc::kAlreadyExists,
                   schema_.table_name + ": duplicate key " + rows[i][pk].str()};
    }
    claimed.push_back(it);
  }
  std::vector<RowId> ids;
  ids.reserve(rows.size());
  slots_.reserve(slots_.size() + rows.size());
  for (Row& row : rows) {
    const RowId id = next_id_++;
    slots_.push_back(std::move(row));
    ++live_;
    // The pk entry is already claimed; only secondary postings remain, and
    // fresh monotone ids make each one a pure append.
    for (auto& [ci, idx] : secondary_)
      AddPosting(idx[(*slots_.back())[static_cast<std::size_t>(ci)]], id);
    ids.push_back(id);
  }
  return ids;
}

Result<RowId> Table::Upsert(Row row) {
  if (Status s = schema_.Validate(row); !s.ok()) return s.error();
  if (storage_faults_ != nullptr && storage_faults_->FailWrite(schema_.table_name))
    return Error{Errc::kUnavailable,
                 schema_.table_name + ": injected storage write failure"};
  std::lock_guard lock(mu_);
  const auto it =
      pk_index_.find(row[static_cast<std::size_t>(schema_.primary_key)]);
  if (it != pk_index_.end()) {
    const RowId id = it->second;
    Row& old = row_at(id);
    // Fast path: the replacement leaves every indexed cell unchanged (the
    // pk matches by construction), so the row moves into its slot without
    // any index maintenance — this is the feature-recompute hot path.
    for (auto& [ci, idx] : secondary_) {
      const auto c = static_cast<std::size_t>(ci);
      if (old[c] == row[c]) continue;
      RemovePosting(idx, old[c], id);
      AddPosting(idx[row[c]], id);
    }
    old = std::move(row);
    return id;
  }
  const RowId id = next_id_++;
  slots_.push_back(std::move(row));
  ++live_;
  IndexRow(id, *slots_.back());
  return id;
}

std::optional<Row> Table::FindByKey(const Value& key) const {
  std::shared_lock lock(mu_);
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) return std::nullopt;
  return row_at(it->second);
}

Result<Value> Table::ReadCell(const Value& key, int column) const {
  std::shared_lock lock(mu_);
  if (column < 0 || column >= static_cast<int>(schema_.columns.size()))
    return Error{Errc::kInvalidArgument, "column out of range"};
  auto it = pk_index_.find(key);
  if (it == pk_index_.end())
    return Error{Errc::kNotFound,
                 schema_.table_name + ": no row with key " + key.str()};
  return row_at(it->second)[static_cast<std::size_t>(column)];
}

std::optional<Value> Table::MaxPrimaryKey() const {
  std::shared_lock lock(mu_);
  if (pk_index_.empty()) return std::nullopt;
  return std::prev(pk_index_.end())->first;
}

std::vector<Row> Table::FindWhereEq(const std::string& column,
                                    const Value& v) const {
  std::shared_lock lock(mu_);
  const int ci = schema_.column_index(column);
  std::vector<Row> out;
  if (ci < 0) return out;
  if (auto idx = secondary_.find(ci); idx != secondary_.end()) {
    if (auto p = idx->second.find(v); p != idx->second.end()) {
      out.reserve(p->second.size());
      for (RowId id : p->second) out.push_back(row_at(id));
    }
    return out;
  }
  if (ci == schema_.primary_key) {
    if (auto it = pk_index_.find(v); it != pk_index_.end())
      out.push_back(row_at(it->second));
    return out;
  }
  CountFullScan();
  for (const auto& slot : slots_) {
    if (slot.has_value() && (*slot)[static_cast<std::size_t>(ci)] == v)
      out.push_back(*slot);
  }
  return out;
}

std::vector<Row> Table::Scan(const Predicate& pred) const {
  std::shared_lock lock(mu_);
  CountFullScan();
  std::vector<Row> out;
  for (const auto& slot : slots_) {
    if (slot.has_value() && (!pred || pred(*slot))) out.push_back(*slot);
  }
  return out;
}

void Table::ForEach(const RowVisitor& visit) const {
  std::shared_lock lock(mu_);
  CountFullScan();
  for (const auto& slot : slots_) {
    if (slot.has_value() && !visit(*slot)) return;
  }
}

void Table::ForEachWhereEq(const std::string& column, const Value& v,
                           const RowVisitor& visit) const {
  std::shared_lock lock(mu_);
  const int ci = schema_.column_index(column);
  if (ci < 0) return;
  if (auto idx = secondary_.find(ci); idx != secondary_.end()) {
    if (auto p = idx->second.find(v); p != idx->second.end()) {
      for (RowId id : p->second) {
        if (!visit(row_at(id))) return;
      }
    }
    return;
  }
  if (ci == schema_.primary_key) {
    if (auto it = pk_index_.find(v); it != pk_index_.end())
      (void)visit(row_at(it->second));
    return;
  }
  CountFullScan();
  for (const auto& slot : slots_) {
    if (slot.has_value() && (*slot)[static_cast<std::size_t>(ci)] == v &&
        !visit(*slot))
      return;
  }
}

void Table::ForEachWhereEqFromPk(const std::string& column, const Value& v,
                                 const Value& pk_after,
                                 const RowVisitor& visit) const {
  std::shared_lock lock(mu_);
  const int ci = schema_.column_index(column);
  if (ci < 0) return;
  const auto pk = static_cast<std::size_t>(schema_.primary_key);
  if (auto idx = secondary_.find(ci); idx != secondary_.end()) {
    auto p = idx->second.find(v);
    if (p == idx->second.end()) return;
    const Postings& postings = p->second;
    // Postings are ascending RowId; with pk order == insertion order the
    // rows past the cursor form a suffix, found by binary search.
    auto it = std::partition_point(
        postings.begin(), postings.end(), [&](RowId id) {
          return Value::Compare(row_at(id)[pk], pk_after) <= 0;
        });
    for (; it != postings.end(); ++it) {
      if (!visit(row_at(*it))) return;
    }
    return;
  }
  // Unindexed fallback: filtered walk (counted — this is the degradation
  // the counter exists to expose).
  CountFullScan();
  for (const auto& slot : slots_) {
    if (!slot.has_value()) continue;
    if ((*slot)[static_cast<std::size_t>(ci)] != v) continue;
    if (Value::Compare((*slot)[pk], pk_after) <= 0) continue;
    if (!visit(*slot)) return;
  }
}

std::vector<Row> Table::ScanOrderedBy(const std::string& column,
                                      const Predicate& pred) const {
  std::vector<Row> out = Scan(pred);
  const int ci = schema_.column_index(column);
  if (ci < 0) return out;
  std::stable_sort(out.begin(), out.end(), [ci](const Row& a, const Row& b) {
    return Value::Compare(a[static_cast<std::size_t>(ci)],
                          b[static_cast<std::size_t>(ci)]) < 0;
  });
  return out;
}

Result<std::size_t> Table::Update(const Predicate& pred,
                                  const std::function<void(Row&)>& mutate) {
  std::lock_guard lock(mu_);
  CountFullScan();
  // Two-phase: compute all new rows first, validate (including pk
  // uniqueness among survivors), then commit. Keeps the table consistent on
  // failure.
  std::vector<std::pair<RowId, Row>> changed;
  for (RowId id = 1; id < next_id_; ++id) {
    const auto& slot = slots_[static_cast<std::size_t>(id - 1)];
    if (!slot.has_value()) continue;
    if (pred && !pred(*slot)) continue;
    Row next = *slot;
    mutate(next);
    if (Status s = schema_.Validate(next); !s.ok()) return s.error();
    changed.emplace_back(id, std::move(next));
  }
  return CommitUpdate(std::move(changed));
}

Result<std::size_t> Table::UpdateWhereEq(
    const std::string& column, const Value& v, const Predicate& pred,
    const std::function<void(Row&)>& mutate) {
  std::lock_guard lock(mu_);
  const int ci = schema_.column_index(column);
  if (ci < 0)
    return Error{Errc::kInvalidArgument, "no column named " + column};

  // Candidate ids from the index (or a walk when unindexed); postings are
  // already in ascending RowId order, the order a full Update would use.
  std::vector<RowId> candidates;
  if (auto idx = secondary_.find(ci); idx != secondary_.end()) {
    if (auto p = idx->second.find(v); p != idx->second.end())
      candidates = p->second;
  } else if (ci == schema_.primary_key) {
    if (auto it = pk_index_.find(v); it != pk_index_.end())
      candidates.push_back(it->second);
  } else {
    CountFullScan();
    for (RowId id = 1; id < next_id_; ++id) {
      const auto& slot = slots_[static_cast<std::size_t>(id - 1)];
      if (slot.has_value() && (*slot)[static_cast<std::size_t>(ci)] == v)
        candidates.push_back(id);
    }
  }

  std::vector<std::pair<RowId, Row>> changed;
  for (RowId id : candidates) {
    const Row& row = row_at(id);
    if (pred && !pred(row)) continue;
    Row next = row;
    mutate(next);
    if (Status s = schema_.Validate(next); !s.ok()) return s.error();
    changed.emplace_back(id, std::move(next));
  }
  return CommitUpdate(std::move(changed));
}

Result<std::size_t> Table::CommitUpdate(
    std::vector<std::pair<RowId, Row>> changed) {
  const auto pk = static_cast<std::size_t>(schema_.primary_key);
  // PK-uniqueness check against unchanged rows and within the change set.
  std::map<Value, RowId, ValueLess> new_keys;
  for (const auto& [id, next] : changed) {
    if (auto it = pk_index_.find(next[pk]);
        it != pk_index_.end() && it->second != id) {
      // Key collides with a row not in the change set?
      const bool collides_with_changed =
          std::any_of(changed.begin(), changed.end(),
                      [&](const auto& p) { return p.first == it->second; });
      if (!collides_with_changed)
        return Error{Errc::kAlreadyExists, "update would duplicate key"};
    }
    if (!new_keys.emplace(next[pk], id).second)
      return Error{Errc::kAlreadyExists, "update would duplicate key"};
  }
  // Diff-aware commit, two passes per index so transiently-overlapping key
  // swaps inside one change set cannot collide mid-commit: drop all stale
  // entries first, then add the new ones, then move the rows in.
  for (const auto& [id, next] : changed) {
    const Row& old = row_at(id);
    if (old[pk] != next[pk]) pk_index_.erase(old[pk]);
    for (auto& [ci, idx] : secondary_) {
      const auto c = static_cast<std::size_t>(ci);
      if (old[c] != next[c]) RemovePosting(idx, old[c], id);
    }
  }
  for (const auto& [id, next] : changed) {
    const Row& old = row_at(id);
    if (old[pk] != next[pk]) pk_index_.emplace(next[pk], id);
    for (auto& [ci, idx] : secondary_) {
      const auto c = static_cast<std::size_t>(ci);
      if (old[c] != next[c]) AddPosting(idx[next[c]], id);
    }
  }
  for (auto& [id, next] : changed) row_at(id) = std::move(next);
  return changed.size();
}

Status Table::UpdateByKey(const Value& key,
                          const std::function<void(Row&)>& mutate) {
  std::lock_guard lock(mu_);
  const auto it = pk_index_.find(key);
  if (it == pk_index_.end())
    return Status(Errc::kNotFound,
                  schema_.table_name + ": no row with key " + key.str());
  Row next = row_at(it->second);
  mutate(next);
  if (Status s = schema_.Validate(next); !s.ok()) return s;
  std::vector<std::pair<RowId, Row>> changed;
  changed.emplace_back(it->second, std::move(next));
  Result<std::size_t> n = CommitUpdate(std::move(changed));
  if (!n.ok()) return Status(n.error());
  return Status::Ok();
}

Status Table::CheckInPlaceColumn(int column, const Value& v) const {
  if (column < 0 || column >= static_cast<int>(schema_.columns.size()))
    return Status(Errc::kInvalidArgument, "column out of range");
  if (column == schema_.primary_key)
    return Status(Errc::kInvalidArgument,
                  "in-place update cannot touch the primary key");
  if (secondary_.contains(column))
    return Status(Errc::kInvalidArgument,
                  "in-place update cannot touch indexed column " +
                      schema_.columns[static_cast<std::size_t>(column)].name);
  const ColumnSpec& spec = schema_.columns[static_cast<std::size_t>(column)];
  if (v.is_null()) {
    if (!spec.nullable)
      return Status(Errc::kInvalidArgument,
                    "null into non-nullable column " + spec.name);
    return Status::Ok();
  }
  if (!v.matches(spec.type))
    return Status(Errc::kInvalidArgument,
                  "type mismatch for column " + spec.name);
  return Status::Ok();
}

Status Table::UpdateInPlace(const Value& key, int column, Value v) {
  const std::pair<int, Value> cell{column, std::move(v)};
  return UpdateInPlace(key, std::span<const std::pair<int, Value>>(&cell, 1));
}

Status Table::UpdateInPlace(const Value& key,
                            std::span<const std::pair<int, Value>> cells) {
  std::lock_guard lock(mu_);
  for (const auto& [column, v] : cells) {
    if (Status s = CheckInPlaceColumn(column, v); !s.ok()) return s;
  }
  const auto it = pk_index_.find(key);
  if (it == pk_index_.end())
    return Status(Errc::kNotFound,
                  schema_.table_name + ": no row with key " + key.str());
  Row& row = row_at(it->second);
  for (const auto& [column, v] : cells)
    row[static_cast<std::size_t>(column)] = v;
  return Status::Ok();
}

std::size_t Table::Erase(const Predicate& pred) {
  std::lock_guard lock(mu_);
  CountFullScan();
  std::size_t erased = 0;
  for (RowId id = 1; id < next_id_; ++id) {
    auto& slot = slots_[static_cast<std::size_t>(id - 1)];
    if (!slot.has_value()) continue;
    if (pred && !pred(*slot)) continue;
    UnindexRow(id, *slot);
    slot.reset();
    --live_;
    ++erased;
  }
  return erased;
}

Status Table::EraseByKey(const Value& key) {
  std::lock_guard lock(mu_);
  const auto it = pk_index_.find(key);
  if (it == pk_index_.end())
    return Status(Errc::kNotFound,
                  schema_.table_name + ": no row with key " + key.str());
  const RowId id = it->second;
  auto& slot = slots_[static_cast<std::size_t>(id - 1)];
  UnindexRow(id, *slot);
  slot.reset();
  --live_;
  return Status::Ok();
}

std::size_t Table::size() const {
  std::shared_lock lock(mu_);
  return live_;
}

std::vector<std::string> Table::IndexedColumns() const {
  std::shared_lock lock(mu_);
  std::vector<std::string> cols;
  cols.reserve(secondary_.size());
  for (const auto& [ci, _] : secondary_)
    cols.push_back(schema_.columns[static_cast<std::size_t>(ci)].name);
  return cols;
}

}  // namespace sor::db

#include "db/storage_faults.hpp"

namespace sor::db {

void StorageFaultInjector::set_seed(std::uint64_t seed) {
  std::lock_guard lock(mu_);
  rng_ = Rng{seed};
}

void StorageFaultInjector::AddRule(StorageFaultRule rule) {
  std::lock_guard lock(mu_);
  rules_.push_back(std::move(rule));
}

void StorageFaultInjector::Clear() {
  std::lock_guard lock(mu_);
  rules_.clear();
}

bool StorageFaultInjector::armed() const {
  std::lock_guard lock(mu_);
  return !rules_.empty();
}

bool StorageFaultInjector::Matches(const std::string& pattern,
                                   const std::string& table) {
  if (pattern == "*") return true;
  if (!pattern.empty() && pattern.back() == '*')
    return table.compare(0, pattern.size() - 1, pattern, 0,
                         pattern.size() - 1) == 0;
  return pattern == table;
}

bool StorageFaultInjector::FailWrite(const std::string& table) {
  std::lock_guard lock(mu_);
  bool fail = false;
  for (StorageFaultRule& rule : rules_) {
    if (!Matches(rule.table, table)) continue;
    if (rule.fail_next > 0) {
      --rule.fail_next;
      fail = true;
      continue;  // scripted failures don't consume the seeded stream
    }
    // Consume the stream for every matching rule even once `fail` is set,
    // so the stream position depends only on the matching-write sequence.
    if (rng_.chance(rule.write_fail)) fail = true;
  }
  if (fail) ++writes_failed_;
  return fail;
}

std::uint64_t StorageFaultInjector::writes_failed() const {
  std::lock_guard lock(mu_);
  return writes_failed_;
}

void TearSnapshotBytes(Bytes& snapshot, const SnapshotTear& tear) {
  if (tear.truncate_to < snapshot.size()) snapshot.resize(tear.truncate_to);
  if (tear.flip_at < snapshot.size()) snapshot[tear.flip_at] ^= tear.xor_mask;
}

}  // namespace sor::db

// Storage fault domain (docs/robustness.md): seeded write failures and torn
// snapshot bytes, the db-layer sibling of net::FaultInjector.
//
// A StorageFaultInjector is attached to a Database; every Table::Insert /
// Table::Upsert first asks it whether the write fails. Failures surface as
// ordinary Errc::kUnavailable errors, so the caller's existing error path
// (the server replies with a throttle, the phone keeps the upload queued and
// retries) doubles as the recovery path — at-least-once delivery absorbs a
// lost write with no new machinery.
//
// Determinism contract: a rule consumes the seeded random stream ONLY for
// writes whose table name matches, so the stream position is a pure function
// of the sequence of matching writes. Chaos configs must therefore arm rules
// only for tables written inside the epoch merge pass (raw_data /
// participations); arming "*" would let the parallel feature-data writers
// consume the stream in scheduling order and break byte-identical replay
// across thread counts.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"

namespace sor::db {

struct StorageFaultRule {
  // Table name matcher: exact, "*" (all), or a trailing-'*' prefix
  // ("raw*"). Same wildcard grammar as net::FaultRule endpoints.
  std::string table = "*";
  double write_fail = 0.0;  // P(a matching Insert/Upsert fails)
  int fail_next = 0;        // scripted: fail this many matching writes first
};

class StorageFaultInjector {
 public:
  void set_seed(std::uint64_t seed);
  void AddRule(StorageFaultRule rule);
  void Clear();
  [[nodiscard]] bool armed() const;

  // Decide whether a write to `table` fails. Thread-safe; see the
  // determinism contract above for when it may be called concurrently.
  [[nodiscard]] bool FailWrite(const std::string& table);

  [[nodiscard]] std::uint64_t writes_failed() const;

  [[nodiscard]] static bool Matches(const std::string& pattern,
                                    const std::string& table);

 private:
  mutable std::mutex mu_;
  Rng rng_{0};
  std::vector<StorageFaultRule> rules_;
  std::uint64_t writes_failed_ = 0;
};

// Deterministically damage snapshot bytes in place — the "torn write" half
// of the storage domain. Used by the snapshot robustness tests and the
// chaos battery; RestoreDatabase must reject the result all-or-nothing.
struct SnapshotTear {
  // Keep only the first `truncate_to` bytes (no-op when >= size).
  std::size_t truncate_to = static_cast<std::size_t>(-1);
  // XOR the byte at `flip_at` with `xor_mask` (no-op when >= size).
  std::size_t flip_at = static_cast<std::size_t>(-1);
  std::uint8_t xor_mask = 0xFF;
};

void TearSnapshotBytes(Bytes& snapshot, const SnapshotTear& tear);

}  // namespace sor::db

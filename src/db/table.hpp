// Table: rows + primary-key uniqueness + optional secondary indexes.
//
// Deliberately relational-minimal: the sensing server's access patterns are
// point lookups by key (user by token, task by id), filtered scans
// (unprocessed raw blobs, participations of one app), ordered scans (feature
// data by place), and in-place updates (task status transitions). All of
// those are first-class here; anything fancier (joins) is composed by the
// caller.
//
// Storage layout (docs/performance.md):
//   * rows live in a contiguous slot vector addressed by RowId (monotone,
//     never reused; erased slots become tombstones), so visitation is a
//     linear walk instead of a std::map pointer chase;
//   * index keys are typed Values ordered by Value::Compare — no string
//     materialization, so indexing a blob column never copies the blob;
//   * secondary postings lists are kept sorted by RowId, which makes every
//     equality visitation deterministic insertion order and enables the
//     cursored ForEachWhereEqFromPk access path;
//   * updates that touch only non-key, non-indexed columns can go through
//     UpdateInPlace, which assigns the cells in place — no row copy, no
//     re-index.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "db/storage_faults.hpp"
#include "db/value.hpp"
#include "obs/metrics.hpp"

namespace sor::db {

using RowId = std::uint64_t;  // stable internal handle, never reused

// A filter over rows; empty function means "all rows".
using Predicate = std::function<bool(const Row&)>;

// A visitor over rows; return false to stop the iteration early. Runs under
// the table's shared lock: it must not call back into the same table.
using RowVisitor = std::function<bool(const Row&)>;

class Table {
 public:
  explicit Table(Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  [[nodiscard]] const Schema& schema() const { return schema_; }

  // Create a secondary (non-unique) index on a column. Must be called
  // before rows exist or it back-fills. Indexed equality scans then avoid
  // the full-table walk.
  Status CreateIndex(const std::string& column);

  // Insert; fails on schema mismatch or duplicate primary key.
  Result<RowId> Insert(Row row);

  // Batch insert: validates every row and checks primary-key uniqueness
  // (against the table AND within the batch) before any mutation, then
  // appends and indexes all rows under a single exclusive lock.
  // All-or-nothing: on any failure no row is inserted. Returns the new
  // RowIds in batch order. Because fresh RowIds are monotone, every
  // secondary-index posting is a pure append — one lock acquisition and no
  // binary inserts, which is what makes bulk loads (snapshot restore)
  // cheaper than a loop of Insert calls.
  Result<std::vector<RowId>> InsertBatch(std::vector<Row> rows);

  // Upsert on primary key: replaces the existing row if the key exists.
  // When the replacement changes no indexed cell (the common recompute
  // case, e.g. feature_data), the row moves into its slot without touching
  // any index.
  Result<RowId> Upsert(Row row);

  // Point lookup by primary-key value.
  [[nodiscard]] std::optional<Row> FindByKey(const Value& key) const;

  // Point read of one cell — no row copy (blobs stay put).
  [[nodiscard]] Result<Value> ReadCell(const Value& key, int column) const;

  // Largest primary-key value present, or nullopt on an empty table. O(1).
  [[nodiscard]] std::optional<Value> MaxPrimaryKey() const;

  // Equality scan on any column; uses a secondary index if one exists.
  [[nodiscard]] std::vector<Row> FindWhereEq(const std::string& column,
                                             const Value& v) const;

  // Filtered scan (all rows if pred is empty).
  [[nodiscard]] std::vector<Row> Scan(const Predicate& pred = {}) const;

  // Allocation-free visitation in RowId (insertion) order; the visitor
  // returns false to stop. Hot read paths use these instead of Scan /
  // FindWhereEq so they never copy whole row vectors (blobs included).
  void ForEach(const RowVisitor& visit) const;
  // Indexed equality visitation: same row set and order as FindWhereEq.
  void ForEachWhereEq(const std::string& column, const Value& v,
                      const RowVisitor& visit) const;

  // Cursored equality visitation: rows with `column == v` AND primary key
  // strictly greater than `pk_after`, ascending RowId order. Requires that
  // primary-key order matches insertion order for the matching rows (true
  // for append-only tables with monotone keys, e.g. raw_data), which lets
  // the cursor position resolve by binary search over the postings list —
  // O(log matches + new rows), never O(history). Falls back to a filtered
  // walk of the equality set when the assumption cannot apply (unindexed
  // column).
  void ForEachWhereEqFromPk(const std::string& column, const Value& v,
                            const Value& pk_after,
                            const RowVisitor& visit) const;

  // Filtered scan, sorted ascending by a column.
  [[nodiscard]] std::vector<Row> ScanOrderedBy(const std::string& column,
                                               const Predicate& pred = {}) const;

  // Update all rows matching `pred` via `mutate` (which edits a Row copy
  // that is then validated & re-indexed). Returns rows touched. Changing the
  // primary key to a duplicate fails the whole update.
  Result<std::size_t> Update(const Predicate& pred,
                             const std::function<void(Row&)>& mutate);

  // Update the single row whose primary key equals `key` (pk-index point
  // lookup, not a scan). Only indexes whose column actually changed are
  // touched on commit.
  Status UpdateByKey(const Value& key, const std::function<void(Row&)>& mutate);

  // In-place fast path: assign `v` to `column` of the row with primary key
  // `key`, without copying the row or touching any index. Restricted to
  // non-key, non-indexed columns (kInvalidArgument otherwise) — the
  // index-safety contract is documented in docs/performance.md. The value
  // is schema-validated before assignment.
  Status UpdateInPlace(const Value& key, int column, Value v);
  // Multi-column variant; all columns must satisfy the same contract.
  Status UpdateInPlace(const Value& key,
                       std::span<const std::pair<int, Value>> cells);

  // Indexed update: like Update, but candidate rows come from the equality
  // index on `column` (falling back to a full walk when unindexed), and
  // `pred` further filters them. Candidates are mutated in ascending RowId
  // order — exactly the row set and order Update(pred && column==v) visits.
  Result<std::size_t> UpdateWhereEq(const std::string& column, const Value& v,
                                    const Predicate& pred,
                                    const std::function<void(Row&)>& mutate);

  // Delete rows matching pred; returns rows removed.
  std::size_t Erase(const Predicate& pred);

  // Delete the single row whose primary key equals `key` (point lookup).
  Status EraseByKey(const Value& key);

  [[nodiscard]] std::size_t size() const;

  // Column-index helper that throws away the string lookup for hot paths.
  [[nodiscard]] int col(std::string_view name) const {
    return schema_.column_index(name);
  }

  // Names of columns carrying a secondary index (snapshot/restore).
  [[nodiscard]] std::vector<std::string> IndexedColumns() const;

  // Observability hook: every full-table walk (Scan/ForEach/Erase-by-pred
  // and the unindexed equality fallbacks) bumps this counter, so a query
  // silently degrading to O(table) shows up in `db.full_scans`. nullptr
  // (the default) disables counting.
  void set_full_scan_counter(obs::Counter* counter) { full_scans_ = counter; }

  // Storage fault hook (docs/robustness.md): when set, Insert/Upsert ask
  // the injector whether the write fails before touching any state, so an
  // injected failure is indistinguishable from a clean rejection. nullptr
  // (the default) disables injection.
  void set_storage_faults(StorageFaultInjector* faults) {
    storage_faults_ = faults;
  }

 private:
  // Sorted-by-RowId postings of one index key.
  using Postings = std::vector<RowId>;
  using SecondaryIndex = std::map<Value, Postings, ValueLess>;

  void IndexRow(RowId id, const Row& row);
  void UnindexRow(RowId id, const Row& row);
  static void AddPosting(Postings& p, RowId id);
  static void RemovePosting(SecondaryIndex& idx, const Value& key, RowId id);

  [[nodiscard]] const Row& row_at(RowId id) const {
    return *slots_[static_cast<std::size_t>(id - 1)];
  }
  [[nodiscard]] Row& row_at(RowId id) {
    return *slots_[static_cast<std::size_t>(id - 1)];
  }
  void CountFullScan() const {
    if (full_scans_ != nullptr) full_scans_->Inc();
  }
  // Shared checks for the in-place contract; returns the error or Ok.
  [[nodiscard]] Status CheckInPlaceColumn(int column, const Value& v) const;

  // Commits a validated change set (ids paired with their new rows) under
  // an already-held exclusive lock; shared by Update and UpdateWhereEq.
  // Diff-aware: only indexes whose column value actually changed are
  // rewritten.
  Result<std::size_t> CommitUpdate(std::vector<std::pair<RowId, Row>> changed);

  Schema schema_;
  // Readers (point lookups, scans, visitors) share the lock; writers are
  // exclusive. Lock hierarchy: executor round → network inbox gate → table
  // lock (see docs/runtime.md); visitors must not re-enter the table.
  mutable std::shared_mutex mu_;
  // Slot i holds the row with RowId i+1; erased rows leave tombstones
  // (RowIds are never reused, so the mapping is permanent).
  std::vector<std::optional<Row>> slots_;
  std::size_t live_ = 0;
  RowId next_id_ = 1;
  // Primary-key → RowId (unique), ordered by Value::Compare.
  std::map<Value, RowId, ValueLess> pk_index_;
  // column index → (value → sorted row ids); non-unique secondary indexes.
  std::unordered_map<int, SecondaryIndex> secondary_;
  obs::Counter* full_scans_ = nullptr;  // not owned; nullable
  StorageFaultInjector* storage_faults_ = nullptr;  // not owned; nullable
};

}  // namespace sor::db

// Table: rows + primary-key uniqueness + optional secondary indexes.
//
// Deliberately relational-minimal: the sensing server's access patterns are
// point lookups by key (user by token, task by id), filtered scans
// (unprocessed raw blobs, participations of one app), ordered scans (feature
// data by place), and in-place updates (task status transitions). All of
// those are first-class here; anything fancier (joins) is composed by the
// caller.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "db/value.hpp"

namespace sor::db {

using RowId = std::uint64_t;  // stable internal handle, never reused

// A filter over rows; empty function means "all rows".
using Predicate = std::function<bool(const Row&)>;

// A visitor over rows; return false to stop the iteration early. Runs under
// the table's shared lock: it must not call back into the same table.
using RowVisitor = std::function<bool(const Row&)>;

class Table {
 public:
  explicit Table(Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  [[nodiscard]] const Schema& schema() const { return schema_; }

  // Create a secondary (non-unique) index on a column. Must be called
  // before rows exist or it back-fills. Indexed equality scans then avoid
  // the full-table walk.
  Status CreateIndex(const std::string& column);

  // Insert; fails on schema mismatch or duplicate primary key.
  Result<RowId> Insert(Row row);

  // Upsert on primary key: replaces the existing row if the key exists.
  Result<RowId> Upsert(Row row);

  // Point lookup by primary-key value.
  [[nodiscard]] std::optional<Row> FindByKey(const Value& key) const;

  // Equality scan on any column; uses a secondary index if one exists.
  [[nodiscard]] std::vector<Row> FindWhereEq(const std::string& column,
                                             const Value& v) const;

  // Filtered scan (all rows if pred is empty).
  [[nodiscard]] std::vector<Row> Scan(const Predicate& pred = {}) const;

  // Allocation-free visitation in RowId (insertion) order; the visitor
  // returns false to stop. Hot read paths use these instead of Scan /
  // FindWhereEq so they never copy whole row vectors (blobs included).
  void ForEach(const RowVisitor& visit) const;
  // Indexed equality visitation: same row set and order as FindWhereEq.
  void ForEachWhereEq(const std::string& column, const Value& v,
                      const RowVisitor& visit) const;

  // Filtered scan, sorted ascending by a column.
  [[nodiscard]] std::vector<Row> ScanOrderedBy(const std::string& column,
                                               const Predicate& pred = {}) const;

  // Update all rows matching `pred` via `mutate` (which edits a Row copy
  // that is then validated & re-indexed). Returns rows touched. Changing the
  // primary key to a duplicate fails the whole update.
  Result<std::size_t> Update(const Predicate& pred,
                             const std::function<void(Row&)>& mutate);

  // Update the single row whose primary key equals `key`.
  Status UpdateByKey(const Value& key, const std::function<void(Row&)>& mutate);

  // Indexed update: like Update, but candidate rows come from the equality
  // index on `column` (falling back to a full walk when unindexed), and
  // `pred` further filters them. Candidates are mutated in ascending RowId
  // order — exactly the row set and order Update(pred && column==v) visits.
  Result<std::size_t> UpdateWhereEq(const std::string& column, const Value& v,
                                    const Predicate& pred,
                                    const std::function<void(Row&)>& mutate);

  // Delete rows matching pred; returns rows removed.
  std::size_t Erase(const Predicate& pred);

  [[nodiscard]] std::size_t size() const;

  // Column-index helper that throws away the string lookup for hot paths.
  [[nodiscard]] int col(std::string_view name) const {
    return schema_.column_index(name);
  }

  // Names of columns carrying a secondary index (snapshot/restore).
  [[nodiscard]] std::vector<std::string> IndexedColumns() const;

 private:
  void IndexRow(RowId id, const Row& row);
  void UnindexRow(RowId id, const Row& row);
  [[nodiscard]] std::string KeyString(const Value& v) const;

  // Commits a validated change set (ids paired with their new rows) under
  // an already-held exclusive lock; shared by Update and UpdateWhereEq.
  Result<std::size_t> CommitUpdate(std::vector<std::pair<RowId, Row>> changed);

  Schema schema_;
  // Readers (point lookups, scans, visitors) share the lock; writers are
  // exclusive. Lock hierarchy: executor round → network inbox gate → table
  // lock (see docs/runtime.md); visitors must not re-enter the table.
  mutable std::shared_mutex mu_;
  std::map<RowId, Row> rows_;
  RowId next_id_ = 1;
  // Primary-key → RowId (unique).
  std::map<std::string, RowId> pk_index_;
  // column index → (value-key → row ids); non-unique secondary indexes.
  std::unordered_map<int, std::multimap<std::string, RowId>> secondary_;
};

}  // namespace sor::db

// Database: a named collection of tables, plus the concrete SOR schema.
//
// §II-B: "we chose PostgreSQL for storing data". The sensing server stores
// (a) user records, (b) application records with their scripts, (c)
// participation/task state, (d) raw binary upload bodies exactly as
// received (decoded later by the Data Processor), (e) processed feature
// data, and (f) computed schedules. MakeSorSchema() creates those tables.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "db/table.hpp"

namespace sor::db {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  // Movable: snapshot restore builds a scratch database and commits it by
  // move (table pointers stay valid — ownership is by unique_ptr).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Create a table; error if the name is taken.
  Result<Table*> CreateTable(Schema schema);

  // nullptr when absent.
  [[nodiscard]] Table* table(const std::string& name);
  [[nodiscard]] const Table* table(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> table_names() const;

  Status DropTable(const std::string& name);

  // Wire every table's full-scan counter to `registry` (the shared
  // `db.full_scans` counter); tables created later inherit it. nullptr
  // detaches. Call again after replacing the database by move (restore).
  void AttachObservability(obs::MetricsRegistry* registry);

  // Wire every table's write path to a storage fault injector (tables
  // created later inherit it); nullptr detaches. Same re-attach caveat
  // after a restore-by-move as AttachObservability.
  void AttachStorageFaults(StorageFaultInjector* faults);

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  obs::Counter* full_scans_ = nullptr;  // not owned; nullable
  StorageFaultInjector* storage_faults_ = nullptr;  // not owned; nullable
};

// Table names used by the sensing server.
namespace tables {
inline constexpr const char* kUsers = "users";
inline constexpr const char* kApplications = "applications";
inline constexpr const char* kParticipations = "participations";
inline constexpr const char* kRawData = "raw_data";
inline constexpr const char* kFeatureData = "feature_data";
inline constexpr const char* kSchedules = "schedules";
inline constexpr const char* kProcessorState = "processor_state";
}  // namespace tables

// Instantiate the full SOR schema (all seven tables + indexes) on `db`.
void MakeSorSchema(Database& db);

}  // namespace sor::db

// Database snapshot & restore.
//
// The prototype's PostgreSQL gave SOR durability across server restarts.
// The embedded store gains the equivalent through binary snapshots: the
// full content (schemas + rows + index definitions) serializes to one
// CRC-protected byte buffer that a fresh process can restore. The codec is
// the same ByteWriter/ByteReader layer used on the wire, so a corrupted
// snapshot is detected, never half-loaded.
#pragma once

#include "codec/bytes.hpp"
#include "db/database.hpp"

namespace sor::db {

// Serialize every table of `db` (schema, secondary-index columns, rows).
[[nodiscard]] Bytes SnapshotDatabase(const Database& db);

// Rebuild a database from a snapshot. All-or-nothing: any malformed or
// corrupt content fails without partially populating `out`.
[[nodiscard]] Status RestoreDatabase(std::span<const std::uint8_t> snapshot,
                                     Database& out);

}  // namespace sor::db

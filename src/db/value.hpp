// Typed values and schemas for the embedded relational store.
//
// The SOR prototype stores users, applications, participations, raw sensed
// blobs and processed feature data in PostgreSQL (§II-B). This reproduction
// embeds a small typed relational engine instead; Value is its cell type.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.hpp"

namespace sor::db {

using Blob = std::vector<std::uint8_t>;

enum class ColumnType : std::uint8_t {
  kInt64,
  kDouble,
  kText,
  kBlob,
  kBool,
};

[[nodiscard]] constexpr const char* to_string(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64: return "int64";
    case ColumnType::kDouble: return "double";
    case ColumnType::kText: return "text";
    case ColumnType::kBlob: return "blob";
    case ColumnType::kBool: return "bool";
  }
  return "?";
}

struct Null {
  friend bool operator==(const Null&, const Null&) { return true; }
};

class Value {
 public:
  Value() : repr_(Null{}) {}
  Value(Null) : repr_(Null{}) {}
  Value(std::int64_t v) : repr_(v) {}
  Value(int v) : repr_(static_cast<std::int64_t>(v)) {}
  Value(std::uint64_t v) : repr_(static_cast<std::int64_t>(v)) {}
  Value(double v) : repr_(v) {}
  Value(std::string v) : repr_(std::move(v)) {}
  Value(const char* v) : repr_(std::string(v)) {}
  Value(Blob v) : repr_(std::move(v)) {}
  Value(bool v) : repr_(v) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<Null>(repr_);
  }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(repr_);
  }
  [[nodiscard]] bool is_double() const {
    return std::holds_alternative<double>(repr_);
  }
  [[nodiscard]] bool is_text() const {
    return std::holds_alternative<std::string>(repr_);
  }
  [[nodiscard]] bool is_blob() const {
    return std::holds_alternative<Blob>(repr_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(repr_);
  }

  [[nodiscard]] std::int64_t as_int() const {
    return std::get<std::int64_t>(repr_);
  }
  [[nodiscard]] double as_double() const { return std::get<double>(repr_); }
  [[nodiscard]] const std::string& as_text() const {
    return std::get<std::string>(repr_);
  }
  [[nodiscard]] const Blob& as_blob() const { return std::get<Blob>(repr_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(repr_); }

  // Numeric view: ints widen to double. Used by aggregation queries.
  [[nodiscard]] double numeric() const {
    if (is_int()) return static_cast<double>(as_int());
    if (is_double()) return as_double();
    if (is_bool()) return as_bool() ? 1.0 : 0.0;
    return 0.0;
  }

  [[nodiscard]] bool matches(ColumnType t) const {
    switch (t) {
      case ColumnType::kInt64: return is_int();
      case ColumnType::kDouble: return is_double() || is_int();
      case ColumnType::kText: return is_text();
      case ColumnType::kBlob: return is_blob();
      case ColumnType::kBool: return is_bool();
    }
    return false;
  }

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Value&, const Value&) = default;

  // Total order used by ORDER BY and by index keys. Null sorts first;
  // heterogeneous comparisons order by type index.
  [[nodiscard]] static int Compare(const Value& a, const Value& b);

 private:
  std::variant<Null, std::int64_t, double, std::string, Blob, bool> repr_;
};

using Row = std::vector<Value>;

// Strict weak order over Values via Value::Compare; the comparator behind
// typed index keys (no string materialization of keys).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return Value::Compare(a, b) < 0;
  }
};

struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  bool nullable = false;
};

struct Schema {
  std::string table_name;
  std::vector<ColumnSpec> columns;
  // Index (into `columns`) of the primary-key column; unique & non-null.
  int primary_key = 0;

  [[nodiscard]] int column_index(std::string_view name) const;
  [[nodiscard]] Status Validate(const Row& row) const;
};

}  // namespace sor::db

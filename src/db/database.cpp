#include "db/database.hpp"

namespace sor::db {

Result<Table*> Database::CreateTable(Schema schema) {
  const std::string name = schema.table_name;
  if (tables_.contains(name))
    return Error{Errc::kAlreadyExists, "table exists: " + name};
  auto table = std::make_unique<Table>(std::move(schema));
  Table* ptr = table.get();
  ptr->set_full_scan_counter(full_scans_);
  ptr->set_storage_faults(storage_faults_);
  tables_.emplace(name, std::move(table));
  return ptr;
}

void Database::AttachObservability(obs::MetricsRegistry* registry) {
  // Per-thread sharding: ProcessApp streams read tables from worker threads.
  full_scans_ = registry == nullptr
                    ? nullptr
                    : &registry->counter("db.full_scans",
                                         obs::Sharding::kPerThread);
  for (auto& [_, table] : tables_) table->set_full_scan_counter(full_scans_);
}

void Database::AttachStorageFaults(StorageFaultInjector* faults) {
  storage_faults_ = faults;
  for (auto& [_, table] : tables_) table->set_storage_faults(faults);
}

Table* Database::table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0)
    return Status(Errc::kNotFound, "no table " + name);
  return Status::Ok();
}

void MakeSorSchema(Database& db) {
  using CT = ColumnType;

  // users(user_id PK, name, token)  — §II-B User Info Manager.
  {
    Schema s;
    s.table_name = tables::kUsers;
    s.columns = {{"user_id", CT::kInt64}, {"name", CT::kText},
                 {"token", CT::kText}};
    Table* t = db.CreateTable(std::move(s)).value();
    (void)t->CreateIndex("token");
  }
  // applications(app_id PK, creator, place_id, place_name, lat, lon, alt,
  //              radius_m, script, features, period_begin_ms, period_end_ms,
  //              n_instants, sigma_s, required_sensors, energy_budget_mj,
  //              flow_manifest)
  // — §II-B Application Manager; the
  // creator also specifies the scheduling-period duration. `features` is
  // the encoded list of feature definitions (name:sensor:method) the Data
  // Processor computes for this app. `required_sensors` is the script's
  // statically derived sensor manifest and `energy_budget_mj` the per-run
  // ceiling the analyzer enforced at registration; `flow_manifest` is the
  // encoded information-flow manifest (which sensors reach each upload
  // site). All appended last so older positional column reads stay valid.
  {
    Schema s;
    s.table_name = tables::kApplications;
    s.columns = {{"app_id", CT::kInt64},      {"creator", CT::kText},
                 {"place_id", CT::kInt64},    {"place_name", CT::kText},
                 {"lat", CT::kDouble},        {"lon", CT::kDouble},
                 {"alt", CT::kDouble},        {"radius_m", CT::kDouble},
                 {"script", CT::kText},       {"features", CT::kText},
                 {"period_begin_ms", CT::kInt64},
                 {"period_end_ms", CT::kInt64}, {"n_instants", CT::kInt64},
                 {"sigma_s", CT::kDouble},
                 {"required_sensors", CT::kText},
                 {"energy_budget_mj", CT::kDouble},
                 {"flow_manifest", CT::kText}};
    (void)db.CreateTable(std::move(s)).value();
  }
  // participations(task_id PK, user_id, app_id, token, budget,
  //                budget_left, status, arrive_ms, leave_ms, incarnation)
  // — §II-B Participation Manager ("running, waiting for sensing schedule,
  // finished, error"); budget updated at runtime. `incarnation` is the
  // phone's install generation (ParticipationRequest::incarnation): a
  // re-scan with the same incarnation is idempotent, a higher one finishes
  // this task and opens a fresh one (reinstalled phones restart their
  // upload seq at 1, so reusing the task would trip the dedup index). It
  // is appended last so older positional column reads stay valid.
  {
    Schema s;
    s.table_name = tables::kParticipations;
    s.columns = {{"task_id", CT::kInt64},   {"user_id", CT::kInt64},
                 {"app_id", CT::kInt64},    {"token", CT::kText},
                 {"budget", CT::kInt64},    {"budget_left", CT::kInt64},
                 {"status", CT::kText},     {"arrive_ms", CT::kInt64},
                 {"leave_ms", CT::kInt64, /*nullable=*/true},
                 {"incarnation", CT::kInt64}};
    Table* t = db.CreateTable(std::move(s)).value();
    (void)t->CreateIndex("app_id");
    (void)t->CreateIndex("user_id");
    (void)t->CreateIndex("status");
  }
  // raw_data(raw_id PK, task_id, app_id, body BLOB, received_ms, processed,
  //          seq) — the message handler "directly store[s] the binary
  // message body into the database, which will be processed later by the
  // Data Processor". `seq` is the upload sequence number; together with
  // task_id it is the server's dedup key for retried uploads, and it is
  // appended last so older positional column reads stay valid.
  {
    Schema s;
    s.table_name = tables::kRawData;
    s.columns = {{"raw_id", CT::kInt64},     {"task_id", CT::kInt64},
                 {"app_id", CT::kInt64},     {"body", CT::kBlob},
                 {"received_ms", CT::kInt64}, {"processed", CT::kBool},
                 {"seq", CT::kInt64}};
    Table* t = db.CreateTable(std::move(s)).value();
    // No index on `processed`: the Data Processor tracks unprocessed work
    // with per-app watermarks (see DataProcessor::NoteUploadStored), and an
    // index here would forbid the in-place flip of the flag.
    (void)t->CreateIndex("app_id");
    (void)t->CreateIndex("task_id");
  }
  // feature_data(feature_id PK, app_id, place_id, feature, value, n_samples,
  //              computed_ms) — the Data Processor's output, the ranker's
  // input (matrix H is read from here).
  {
    Schema s;
    s.table_name = tables::kFeatureData;
    s.columns = {{"feature_id", CT::kInt64}, {"app_id", CT::kInt64},
                 {"place_id", CT::kInt64},   {"feature", CT::kText},
                 {"value", CT::kDouble},     {"n_samples", CT::kInt64},
                 {"computed_ms", CT::kInt64}};
    Table* t = db.CreateTable(std::move(s)).value();
    (void)t->CreateIndex("place_id");
    (void)t->CreateIndex("feature");
    (void)t->CreateIndex("app_id");
  }
  // schedules(schedule_id PK, task_id, app_id, instants BLOB, created_ms)
  // — the Sensing Scheduler "store[s] them into the database".
  {
    Schema s;
    s.table_name = tables::kSchedules;
    s.columns = {{"schedule_id", CT::kInt64}, {"task_id", CT::kInt64},
                 {"app_id", CT::kInt64},      {"instants", CT::kBlob},
                 {"created_ms", CT::kInt64}};
    Table* t = db.CreateTable(std::move(s)).value();
    (void)t->CreateIndex("task_id");
  }
  // processor_state(app_id PK, cursor, state BLOB) — the Data Processor's
  // persistent per-app accumulator state (raw_id cursor + encoded sufficient
  // statistics). Stored as a table so snapshot/restore carries it and crash
  // recovery (PR 1) resumes the incremental path instead of re-decoding
  // history.
  {
    Schema s;
    s.table_name = tables::kProcessorState;
    s.columns = {{"app_id", CT::kInt64},
                 {"cursor", CT::kInt64},
                 {"state", CT::kBlob}};
    (void)db.CreateTable(std::move(s)).value();
  }
}

}  // namespace sor::db

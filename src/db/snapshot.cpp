#include "db/snapshot.hpp"

#include <algorithm>

#include "codec/crc32.hpp"

namespace sor::db {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x31424453;  // "SDB1"

enum class ValueTag : std::uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kText = 3,
  kBlob = 4,
  kBool = 5,
};

void EncodeValue(const Value& v, ByteWriter& w) {
  if (v.is_null()) {
    w.u8(static_cast<std::uint8_t>(ValueTag::kNull));
  } else if (v.is_int()) {
    w.u8(static_cast<std::uint8_t>(ValueTag::kInt));
    w.svarint(v.as_int());
  } else if (v.is_double()) {
    w.u8(static_cast<std::uint8_t>(ValueTag::kDouble));
    w.f64(v.as_double());
  } else if (v.is_text()) {
    w.u8(static_cast<std::uint8_t>(ValueTag::kText));
    w.str(v.as_text());
  } else if (v.is_blob()) {
    w.u8(static_cast<std::uint8_t>(ValueTag::kBlob));
    w.blob(v.as_blob());
  } else {
    w.u8(static_cast<std::uint8_t>(ValueTag::kBool));
    w.boolean(v.as_bool());
  }
}

Result<Value> DecodeValue(ByteReader& r) {
  const std::uint8_t tag = r.u8();
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kNull: return Value();
    case ValueTag::kInt: return Value(r.svarint());
    case ValueTag::kDouble: return Value(r.f64());
    case ValueTag::kText: return Value(r.str());
    case ValueTag::kBlob: return Value(r.blob());
    case ValueTag::kBool: return Value(r.boolean());
  }
  r.invalidate();
  return Error{Errc::kDecodeError, "unknown value tag"};
}

}  // namespace

Bytes SnapshotDatabase(const Database& db) {
  ByteWriter w;
  w.u32_fixed(kSnapshotMagic);

  // Deterministic table order for byte-identical snapshots.
  std::vector<std::string> names = db.table_names();
  std::sort(names.begin(), names.end());
  w.varint(names.size());
  for (const std::string& name : names) {
    const Table* table = db.table(name);
    const Schema& schema = table->schema();
    w.str(schema.table_name);
    w.svarint(schema.primary_key);
    w.varint(schema.columns.size());
    for (const ColumnSpec& col : schema.columns) {
      w.str(col.name);
      w.u8(static_cast<std::uint8_t>(col.type));
      w.boolean(col.nullable);
    }
    std::vector<std::string> indexed = table->IndexedColumns();
    std::sort(indexed.begin(), indexed.end());
    w.varint(indexed.size());
    for (const std::string& col : indexed) w.str(col);

    // Rows ordered by primary key for determinism.
    const std::vector<Row> rows =
        table->ScanOrderedBy(schema.columns[static_cast<std::size_t>(
                                                schema.primary_key)]
                                 .name);
    w.varint(rows.size());
    for (const Row& row : rows) {
      for (const Value& v : row) EncodeValue(v, w);
    }
  }
  w.u32_fixed(Crc32(w.bytes()));
  return w.take();
}

Status RestoreDatabase(std::span<const std::uint8_t> snapshot, Database& out) {
  if (snapshot.size() < 8)
    return Status(Errc::kDecodeError, "snapshot too short");
  const auto payload = snapshot.first(snapshot.size() - 4);
  ByteReader tail(snapshot.subspan(snapshot.size() - 4));
  if (Crc32(payload) != tail.u32_fixed())
    return Status(Errc::kDecodeError, "snapshot crc mismatch");

  ByteReader r(payload);
  if (r.u32_fixed() != kSnapshotMagic)
    return Status(Errc::kDecodeError, "bad snapshot magic");

  // Stage into a scratch database first; swap into `out` only on success.
  Database scratch;
  const std::uint64_t num_tables = r.varint();
  for (std::uint64_t t = 0; t < num_tables && r.ok(); ++t) {
    Schema schema;
    schema.table_name = r.str();
    schema.primary_key = static_cast<int>(r.svarint());
    const std::uint64_t num_cols = r.varint();
    if (!r.ok() || num_cols == 0 || num_cols > 4'096)
      return Status(Errc::kDecodeError, "bad column count");
    for (std::uint64_t c = 0; c < num_cols && r.ok(); ++c) {
      ColumnSpec col;
      col.name = r.str();
      const std::uint8_t type = r.u8();
      if (type > static_cast<std::uint8_t>(ColumnType::kBool))
        return Status(Errc::kDecodeError, "bad column type");
      col.type = static_cast<ColumnType>(type);
      col.nullable = r.boolean();
      schema.columns.push_back(std::move(col));
    }
    if (schema.primary_key < 0 ||
        schema.primary_key >= static_cast<int>(schema.columns.size()))
      return Status(Errc::kDecodeError, "bad primary key index");

    Result<Table*> created = scratch.CreateTable(std::move(schema));
    if (!created.ok()) return Status(created.error());
    Table* table = created.value();

    const std::uint64_t num_indexes = r.varint();
    for (std::uint64_t i = 0; i < num_indexes && r.ok(); ++i) {
      if (Status s = table->CreateIndex(r.str()); !s.ok()) return s;
    }

    const std::uint64_t num_rows = r.varint();
    const std::size_t cols = table->schema().columns.size();
    // Decode the whole table, then bulk-load it: InsertBatch validates and
    // indexes everything under one lock, with pure-append postings.
    std::vector<Row> rows;
    if (num_rows <= 1u << 24) rows.reserve(static_cast<std::size_t>(num_rows));
    for (std::uint64_t i = 0; i < num_rows && r.ok(); ++i) {
      Row row;
      row.reserve(cols);
      for (std::size_t c = 0; c < cols; ++c) {
        Result<Value> v = DecodeValue(r);
        if (!v.ok()) return Status(v.error());
        row.push_back(std::move(v).value());
      }
      rows.push_back(std::move(row));
    }
    if (!r.ok()) break;
    Result<std::vector<RowId>> inserted = table->InsertBatch(std::move(rows));
    if (!inserted.ok()) return Status(inserted.error());
  }
  if (Status s = r.finish(); !s.ok()) return s;

  // Commit: move every restored table into the target database.
  for (const std::string& name : scratch.table_names()) {
    if (out.table(name) != nullptr)
      return Status(Errc::kAlreadyExists,
                    "target database already has table " + name);
  }
  // Database owns tables by unique_ptr and has no move-table API on
  // purpose (tables are pinned); restoring into a fresh Database is the
  // supported flow, so adopt the scratch database wholesale.
  out = std::move(scratch);
  return Status::Ok();
}

}  // namespace sor::db

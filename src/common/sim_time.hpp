// Simulated time.
//
// The paper's scheduling model (§III) discretizes a scheduling period
// [tS, tE] into N equally spaced instants; the field tests span wall-clock
// windows (11:00AM–2:00PM). The whole reproduction runs against a simulated
// clock so experiments are deterministic and fast. Time is kept in integer
// milliseconds to avoid floating-point drift in schedule bookkeeping;
// algorithms that need seconds convert explicitly.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace sor {

// A point in simulated time, milliseconds since simulation epoch.
struct SimTime {
  std::int64_t ms = 0;

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ms) / 1000.0;
  }
  static constexpr SimTime FromSeconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1000.0)};
  }
};

// A duration in simulated time, milliseconds.
struct SimDuration {
  std::int64_t ms = 0;

  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ms) / 1000.0;
  }
  static constexpr SimDuration FromSeconds(double s) {
    return SimDuration{static_cast<std::int64_t>(s * 1000.0)};
  }
};

constexpr SimTime operator+(SimTime t, SimDuration d) {
  return SimTime{t.ms + d.ms};
}
constexpr SimTime operator-(SimTime t, SimDuration d) {
  return SimTime{t.ms - d.ms};
}
constexpr SimDuration operator-(SimTime a, SimTime b) {
  return SimDuration{a.ms - b.ms};
}
constexpr SimDuration operator+(SimDuration a, SimDuration b) {
  return SimDuration{a.ms + b.ms};
}
constexpr SimDuration operator*(SimDuration d, std::int64_t k) {
  return SimDuration{d.ms * k};
}
constexpr SimDuration operator/(SimDuration d, std::int64_t k) {
  return SimDuration{d.ms / k};
}

// A half-open-ended inclusive interval [begin, end] of simulated time, e.g.
// a scheduling period or a user's presence window [tS_k, tE_k].
struct SimInterval {
  SimTime begin;
  SimTime end;

  [[nodiscard]] constexpr bool contains(SimTime t) const {
    return begin <= t && t <= end;
  }
  [[nodiscard]] constexpr SimDuration duration() const { return end - begin; }
  [[nodiscard]] constexpr bool empty() const { return end < begin; }

  // Intersection; empty() is true when the intervals are disjoint.
  [[nodiscard]] constexpr SimInterval intersect(SimInterval o) const {
    return SimInterval{begin > o.begin ? begin : o.begin,
                       end < o.end ? end : o.end};
  }
};

// Divide a scheduling period into `n` equally spaced instants, the set T of
// §III. Instants are placed at the centers-free classic grid: t_i = tS + i*dt
// with dt = (tE - tS)/n, i = 1..n  (the paper is agnostic about endpoint
// placement; spacing is what matters for coverage).
[[nodiscard]] inline std::vector<SimTime> MakeInstantGrid(SimInterval period,
                                                          int n) {
  assert(n > 0);
  std::vector<SimTime> grid;
  grid.reserve(static_cast<size_t>(n));
  const std::int64_t span = period.duration().ms;
  for (int i = 1; i <= n; ++i) {
    grid.push_back(SimTime{period.begin.ms + span * i / n});
  }
  return grid;
}

// The simulation clock. Single-threaded discrete-event usage: components read
// now() and the driver advances it. Kept deliberately minimal; the event loop
// lives in sor::core.
class SimClock {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  void advance_to(SimTime t) {
    assert(t >= now_);
    now_ = t;
  }
  void advance(SimDuration d) {
    assert(d.ms >= 0);
    now_ = now_ + d;
  }
  void reset(SimTime t = {}) { now_ = t; }

 private:
  SimTime now_{};
};

[[nodiscard]] inline std::string to_string(SimTime t) {
  const std::int64_t total_s = t.ms / 1000;
  const std::int64_t h = total_s / 3600;
  const std::int64_t m = (total_s % 3600) / 60;
  const std::int64_t s = total_s % 60;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s),
                static_cast<long long>(t.ms % 1000));
  return buf;
}

}  // namespace sor

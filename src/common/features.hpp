// Canonical names of the humanly-understandable sensing features the paper
// ranks on (§IV-A / §V). Shared between the world scenarios, the server's
// Data Processor, and the ranker so the feature matrix columns always line
// up.
#pragma once

namespace sor::features {

// Hiking trails (§V-A): the 5 features "hikers usually care about most".
inline constexpr const char* kTemperature = "temperature";        // °F, mean
inline constexpr const char* kHumidity = "humidity";              // %RH, mean
inline constexpr const char* kRoughness = "roughness";            // m/s², mean of per-Δt stddev
inline constexpr const char* kCurvature = "curvature";            // mrad/m from GPS
inline constexpr const char* kAltitudeChange = "altitude_change"; // m, stddev of per-Δt means

// Coffee shops (§V-B): the 4 features "customers usually care about most".
inline constexpr const char* kBrightness = "brightness";  // lux, mean
inline constexpr const char* kNoise = "noise";            // normalized SPL, mean
inline constexpr const char* kWifi = "wifi";              // RSSI dBm, mean

}  // namespace sor::features

// Deterministic random number generation.
//
// Every stochastic component (arrival processes, sensor noise, workload
// generators) draws from an explicitly seeded Rng so that experiments are
// reproducible run-to-run; benches vary the seed across the "10 runs" the
// paper averages over.
#pragma once

#include <cstdint>
#include <random>

namespace sor {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  // Gaussian with the given mean and standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Derive an independent child stream (for per-phone / per-run streams).
  [[nodiscard]] Rng fork() {
    return Rng{engine_() ^ 0x9e3779b97f4a7c15ULL};
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sor

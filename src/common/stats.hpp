// Small statistics toolkit.
//
// The Data Processor (paper §IV-A) turns raw sensor readings into "feature
// data, which are usually statistics (average, variance, etc) of raw data".
// These helpers are the single implementation used by the data processor,
// the world generators, and the evaluation harnesses.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace sor {

// Numerically stable streaming accumulator (Welford). Use when readings
// arrive one at a time, e.g. inside a Provider buffer.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  // Population variance (divide by n): matches how the paper reports feature
  // variability over a fixed field-test window.
  [[nodiscard]] double variance() const {
    return n_ ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  // Raw second central moment (Σ(x−mean)²). Together with count/mean/min/max
  // it is the full internal state, so an accumulator can be serialized and
  // rebuilt bit-for-bit via FromMoments.
  [[nodiscard]] double m2() const { return m2_; }

  [[nodiscard]] static RunningStats FromMoments(std::size_t n, double mean,
                                                double m2, double min,
                                                double max) {
    RunningStats s;
    s.n_ = n;
    s.mean_ = mean;
    s.m2_ = m2;
    s.min_ = min;
    s.max_ = max;
    return s;
  }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double total = static_cast<double>(n_ + o.n_);
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / total;
    mean_ += delta * static_cast<double>(o.n_) / total;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

[[nodiscard]] double Mean(std::span<const double> xs);
[[nodiscard]] double Variance(std::span<const double> xs);  // population
[[nodiscard]] double StdDev(std::span<const double> xs);
[[nodiscard]] double Min(std::span<const double> xs);
[[nodiscard]] double Max(std::span<const double> xs);
// Linear-interpolated percentile, p in [0,100].
[[nodiscard]] double Percentile(std::vector<double> xs, double p);

[[nodiscard]] double Median(std::vector<double> xs);

// Median absolute deviation (raw, not normalized).
[[nodiscard]] double Mad(std::span<const double> xs, double median);

// Robust mean: average of the values whose modified z-score
// |x − median| / (1.4826·MAD) is at most `threshold`. Falls back to the
// plain mean when MAD is 0 (constant data). Shields feature extraction
// from a phone with a broken/miscalibrated sensor.
[[nodiscard]] double RobustMean(std::span<const double> xs,
                                double threshold = 6.0);

}  // namespace sor

// Strongly typed identifiers used across the SOR system.
//
// The paper's prototype identifies users by userID + a device token, sensing
// applications by AppID, and keeps per-participation task ids. Using distinct
// C++ types (instead of bare integers) makes it impossible to pass a user id
// where an application id is expected; the compiler enforces what PostgreSQL
// foreign keys enforced in the original system.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace sor {

// CRTP-free tagged id: a 64-bit value wrapped in a unique type per Tag.
template <class Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

  [[nodiscard]] std::string str() const { return std::to_string(value_); }

  static constexpr std::uint64_t kInvalid = 0;

 private:
  std::uint64_t value_ = kInvalid;
};

struct UserTag {};
struct AppTag {};
struct PlaceTag {};
struct TaskTag {};
struct PhoneTag {};
struct ScheduleTag {};

using UserId = Id<UserTag>;          // a registered (mobile) user
using AppId = Id<AppTag>;            // a sensing application (per target place)
using PlaceId = Id<PlaceTag>;        // a target place (coffee shop, trail, ...)
using TaskId = Id<TaskTag>;          // one sensing task instance
using PhoneId = Id<PhoneTag>;        // a physical device
using ScheduleId = Id<ScheduleTag>;  // one computed sensing schedule

// Device token: uniquely identifies a mobile device to the server (paper
// §II-B, User Info Manager). Opaque string in the prototype; same here.
struct Token {
  std::string value;
  friend auto operator<=>(const Token&, const Token&) = default;
};

// Monotonic id generator; each manager owns one. Starts at 1 so that the
// default-constructed Id (0) always means "invalid".
template <class IdT>
class IdGenerator {
 public:
  [[nodiscard]] IdT next() { return IdT{next_++}; }

  // After restoring state from a snapshot the generator must not re-issue
  // ids already present in the database; bump it past the largest seen.
  void advance_past(std::uint64_t v) {
    if (v >= next_) next_ = v + 1;
  }

 private:
  std::uint64_t next_ = 1;
};

}  // namespace sor

namespace std {
template <class Tag>
struct hash<sor::Id<Tag>> {
  size_t operator()(const sor::Id<Tag>& id) const noexcept {
    return std::hash<uint64_t>{}(id.value());
  }
};
template <>
struct hash<sor::Token> {
  size_t operator()(const sor::Token& t) const noexcept {
    return std::hash<std::string>{}(t.value);
  }
};
}  // namespace std

#include "common/stats.hpp"

#include <algorithm>
#include <cassert>

namespace sor {

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double m = xs[mid];
  if (xs.size() % 2 == 0) {
    const double lower = *std::max_element(
        xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

double Mad(std::span<const double> xs, double median) {
  if (xs.empty()) return 0.0;
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::fabs(x - median));
  return Median(std::move(dev));
}

double RobustMean(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  const double med = Median(std::vector<double>(xs.begin(), xs.end()));
  const double mad = Mad(xs, med);
  if (mad == 0.0) return Mean(xs);
  const double scale = 1.4826 * mad;  // ≈ stddev for Gaussian data
  double sum = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    if (std::fabs(x - med) <= threshold * scale) {
      sum += x;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : med;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  assert(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace sor

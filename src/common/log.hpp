// Minimal leveled logger.
//
// Components log significant events (participation accepted, schedule
// distributed, decode failure, ...) so the examples read like a trace of the
// deployed system. Off by default above kWarn to keep test output clean.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace sor {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lvl) { level_ = lvl; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void write(LogLevel lvl, const std::string& component,
             const std::string& message);

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

// Usage: SOR_LOG(kInfo, "server", "scheduled " << n << " tasks");
#define SOR_LOG(lvl, component, expr)                                      \
  do {                                                                     \
    if (::sor::Logger::instance().level() <= ::sor::LogLevel::lvl) {       \
      std::ostringstream sor_log_oss_;                                     \
      sor_log_oss_ << expr;                                                \
      ::sor::Logger::instance().write(::sor::LogLevel::lvl, (component),   \
                                      sor_log_oss_.str());                 \
    }                                                                      \
  } while (0)

}  // namespace sor

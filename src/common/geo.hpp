// Geographic primitives.
//
// SOR verifies that a participant is physically at the target place by
// "acquiring its location and comparing it against the location stored in
// the Application Manager" (§II-B), computes trail curvature from GPS
// locations (§V-A), and marks users "finished" when they leave. All of that
// needs distances between lat/lon points; a trail is a polyline of them.
#pragma once

#include <cmath>
#include <vector>

namespace sor {

inline constexpr double kEarthRadiusMeters = 6371000.0;
inline constexpr double kPi = 3.14159265358979323846;

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
  double alt_m = 0.0;  // altitude above sea level, meters

  friend constexpr bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

[[nodiscard]] inline double DegToRad(double deg) { return deg * kPi / 180.0; }

// Great-circle (haversine) distance in meters, ignoring altitude.
[[nodiscard]] inline double HaversineMeters(const GeoPoint& a,
                                            const GeoPoint& b) {
  const double phi1 = DegToRad(a.lat_deg);
  const double phi2 = DegToRad(b.lat_deg);
  const double dphi = DegToRad(b.lat_deg - a.lat_deg);
  const double dlam = DegToRad(b.lon_deg - a.lon_deg);
  const double s = std::sin(dphi / 2) * std::sin(dphi / 2) +
                   std::cos(phi1) * std::cos(phi2) * std::sin(dlam / 2) *
                       std::sin(dlam / 2);
  return 2.0 * kEarthRadiusMeters *
         std::atan2(std::sqrt(s), std::sqrt(1.0 - s));
}

// 3D distance including the altitude delta (useful on steep trails).
[[nodiscard]] inline double Distance3dMeters(const GeoPoint& a,
                                             const GeoPoint& b) {
  const double d = HaversineMeters(a, b);
  const double dz = b.alt_m - a.alt_m;
  return std::sqrt(d * d + dz * dz);
}

// Local tangent-plane projection of b relative to origin a, in meters
// (x: east, y: north). Adequate at the few-km scale of a target place.
struct LocalXY {
  double x_m = 0.0;
  double y_m = 0.0;
};

[[nodiscard]] inline LocalXY ProjectLocal(const GeoPoint& origin,
                                          const GeoPoint& b) {
  const double y =
      DegToRad(b.lat_deg - origin.lat_deg) * kEarthRadiusMeters;
  const double x = DegToRad(b.lon_deg - origin.lon_deg) * kEarthRadiusMeters *
                   std::cos(DegToRad(origin.lat_deg));
  return {x, y};
}

// Inverse of ProjectLocal: displace `origin` by (x east, y north) meters.
[[nodiscard]] inline GeoPoint OffsetMeters(const GeoPoint& origin, double x_m,
                                           double y_m) {
  GeoPoint p = origin;
  p.lat_deg += (y_m / kEarthRadiusMeters) * 180.0 / kPi;
  p.lon_deg += (x_m / (kEarthRadiusMeters *
                       std::cos(DegToRad(origin.lat_deg)))) *
               180.0 / kPi;
  return p;
}

// Discrete curvature at vertex b of the polyline a-b-c: turn angle (radians)
// divided by the mean of the adjacent segment lengths. This is the standard
// polyline estimator; §V-A computes trail curvature "based on GPS locations".
[[nodiscard]] inline double PolylineCurvature(const GeoPoint& a,
                                              const GeoPoint& b,
                                              const GeoPoint& c) {
  const LocalXY u = ProjectLocal(b, a);
  const LocalXY v = ProjectLocal(b, c);
  const double lu = std::hypot(u.x_m, u.y_m);
  const double lv = std::hypot(v.x_m, v.y_m);
  if (lu < 1e-9 || lv < 1e-9) return 0.0;
  // Angle between incoming direction (-u) and outgoing direction (v).
  const double dot = (-u.x_m) * v.x_m + (-u.y_m) * v.y_m;
  double cosang = dot / (lu * lv);
  cosang = std::fmin(1.0, std::fmax(-1.0, cosang));
  const double turn = std::acos(cosang);  // 0 = straight, pi = U-turn
  return turn / (0.5 * (lu + lv));
}

}  // namespace sor

// Sensor vocabulary shared by every layer (codec, phone, server, world).
//
// §II-A: SOR supports "all sensors available on a Google Nexus4 smartphone
// and all sensors available on a Sensordrone". This enum is that union; each
// entry is implemented as a Provider in src/sensors and as a ground-truth
// signal in src/world.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace sor {

enum class SensorKind : std::uint8_t {
  // Embedded (Nexus4):
  kAccelerometer = 0,  // 3-axis, m/s^2 magnitude reported
  kGyroscope,          // rad/s magnitude
  kCompass,            // heading, degrees
  kGps,                // location fixes (lat/lon/alt)
  kMicrophone,         // sound pressure level, dB
  kLight,              // illuminance, lux
  kWifi,               // RSSI, dBm
  kBarometer,          // pressure, hPa (gives altitude)
  // External (Sensordrone over Bluetooth):
  kDroneTemperature,   // degrees F (paper reports temperature in F)
  kDroneHumidity,      // relative humidity, %
  kDroneLight,         // lux
  kDronePressure,      // hPa
  kDroneGasCo,         // ppm
  kDroneColor,         // dominant wavelength proxy
  kCount,
};

inline constexpr int kSensorKindCount = static_cast<int>(SensorKind::kCount);

[[nodiscard]] constexpr std::string_view to_string(SensorKind k) {
  switch (k) {
    case SensorKind::kAccelerometer: return "accelerometer";
    case SensorKind::kGyroscope: return "gyroscope";
    case SensorKind::kCompass: return "compass";
    case SensorKind::kGps: return "gps";
    case SensorKind::kMicrophone: return "microphone";
    case SensorKind::kLight: return "light";
    case SensorKind::kWifi: return "wifi";
    case SensorKind::kBarometer: return "barometer";
    case SensorKind::kDroneTemperature: return "drone_temperature";
    case SensorKind::kDroneHumidity: return "drone_humidity";
    case SensorKind::kDroneLight: return "drone_light";
    case SensorKind::kDronePressure: return "drone_pressure";
    case SensorKind::kDroneGasCo: return "drone_gas_co";
    case SensorKind::kDroneColor: return "drone_color";
    case SensorKind::kCount: break;
  }
  return "unknown";
}

[[nodiscard]] constexpr std::optional<SensorKind> SensorKindFromString(
    std::string_view s) {
  for (int i = 0; i < kSensorKindCount; ++i) {
    const auto k = static_cast<SensorKind>(i);
    if (to_string(k) == s) return k;
  }
  return std::nullopt;
}

// True for sensors on the external Sensordrone (reachable only when the
// phone has paired with one — §II-A Providers use "APIs provided by ...
// third party" for external sensors).
[[nodiscard]] constexpr bool IsExternalSensor(SensorKind k) {
  return k >= SensorKind::kDroneTemperature && k < SensorKind::kCount;
}

}  // namespace sor

// Result<T> — a lightweight expected-style error channel.
//
// Following the Core Guidelines (E.2/E.3: use exceptions only for genuinely
// exceptional conditions), recoverable failures that are part of normal
// operation in a distributed sensing system — a phone that went away, a
// malformed message, a sensor read timeout — are reported by value through
// Result<T> rather than thrown.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace sor {

// Error categories roughly mirror the task statuses the Participation
// Manager tracks in the paper ("running, waiting for sensing schedule,
// finished, error, etc") plus transport/codec failures.
enum class Errc {
  kOk = 0,
  kNotFound,          // unknown user/app/task/row
  kAlreadyExists,     // duplicate registration / unique-key violation
  kInvalidArgument,   // caller error: bad parameter
  kPermissionDenied,  // local preference forbids the sensor / function
  kTimeout,           // sensor acquisition or transport timed out
  kDecodeError,       // malformed binary message / barcode
  kOutOfBudget,       // sensing budget exhausted
  kNotInPlace,        // location verification failed (untruthful user)
  kUnavailable,       // endpoint/sensor not reachable
  kScriptError,       // SenseScript compile/runtime error
  kInternal,          // invariant violation; indicates a bug
  kUnsupported,       // device lacks a capability the task requires —
                      // permanent, unlike the transient kUnavailable
};

[[nodiscard]] constexpr const char* to_string(Errc e) {
  switch (e) {
    case Errc::kOk: return "ok";
    case Errc::kNotFound: return "not found";
    case Errc::kAlreadyExists: return "already exists";
    case Errc::kInvalidArgument: return "invalid argument";
    case Errc::kPermissionDenied: return "permission denied";
    case Errc::kTimeout: return "timeout";
    case Errc::kDecodeError: return "decode error";
    case Errc::kOutOfBudget: return "out of budget";
    case Errc::kNotInPlace: return "not in target place";
    case Errc::kUnavailable: return "unavailable";
    case Errc::kScriptError: return "script error";
    case Errc::kInternal: return "internal error";
    case Errc::kUnsupported: return "unsupported";
  }
  return "unknown";
}

// An error code plus a human-readable detail message. Errors that originate
// from a specific line of a SenseScript source (lexer, parser, interpreter,
// static analyzer) also carry the 1-based line number so callers can render
// uniform, line-addressed diagnostics without re-parsing the message text.
struct Error {
  Errc code = Errc::kInternal;
  std::string message;
  int line = 0;  // 0 = not tied to a script line

  [[nodiscard]] std::string str() const {
    std::string s = to_string(code);
    if (!message.empty()) {
      s += ": ";
      s += message;
    }
    return s;
  }
};

template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::in_place_index<0>, std::move(value)) {}
  Result(Error err) : repr_(std::in_place_index<1>, std::move(err)) {}
  Result(Errc code, std::string msg = {})
      : repr_(std::in_place_index<1>, Error{code, std::move(msg)}) {}

  [[nodiscard]] bool ok() const { return repr_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(repr_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(repr_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(repr_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<1>(repr_);
  }
  [[nodiscard]] Errc code() const {
    return ok() ? Errc::kOk : error().code;
  }

  // value_or: convenience for tests and defaults.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> repr_;
};

// Status: Result with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error err) : err_(std::move(err)) {}
  Status(Errc code, std::string msg = {}) : err_(Error{code, std::move(msg)}) {}

  [[nodiscard]] bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return *err_;
  }
  [[nodiscard]] Errc code() const { return ok() ? Errc::kOk : err_->code; }
  [[nodiscard]] std::string str() const {
    return ok() ? std::string("ok") : err_->str();
  }

  static Status Ok() { return {}; }

 private:
  std::optional<Error> err_;
};

}  // namespace sor

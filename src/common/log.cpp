#include "common/log.hpp"

#include <cstdio>

namespace sor {

namespace {
const char* LevelName(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel lvl, const std::string& component,
                   const std::string& message) {
  std::lock_guard lock(mu_);
  std::fprintf(stderr, "[%s] %-12s %s\n", LevelName(lvl), component.c_str(),
               message.c_str());
}

}  // namespace sor

#include "common/sharded_executor.hpp"

namespace sor {

ShardedExecutor::ShardedExecutor(int threads)
    : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int s = 1; s < threads_; ++s)
    workers_.emplace_back([this, s] { WorkerLoop(s); });
}

ShardedExecutor::~ShardedExecutor() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardedExecutor::RunShard(int shard, std::size_t n,
                               const std::function<void(std::size_t)>& fn)
    const {
  for (std::size_t i = static_cast<std::size_t>(shard); i < n;
       i += static_cast<std::size_t>(threads_)) {
    fn(i);
  }
}

void ShardedExecutor::WorkerLoop(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
      fn = job_;
      n = job_size_;
    }
    RunShard(shard, n, *fn);
    {
      std::lock_guard lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ShardedExecutor::ParallelFor(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_ == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard lock(mu_);
    job_ = &fn;
    job_size_ = n;
    pending_ = threads_ - 1;
    ++round_;
  }
  start_cv_.notify_all();
  RunShard(0, n, fn);  // the caller is shard 0
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
}

}  // namespace sor

// ShardedExecutor — a fixed pool of worker threads for the deterministic
// parallel runtime (docs/runtime.md).
//
// ParallelFor(n, fn) partitions the index space [0, n) round-robin across
// `threads` shards (index i belongs to shard i % threads) and runs every
// shard concurrently; within one shard, indices run in ascending order on a
// single thread. The call is a barrier: it returns only after fn has run
// for every index. The calling thread participates as shard 0, so
// `threads` is the total parallelism, not the number of helpers.
//
// Round-robin (rather than contiguous blocks) spreads neighboring indices
// across shards, which balances load when cost correlates with index
// locality (phones of the same place are contiguous). The barrier at the
// end of ParallelFor is also the happens-before edge the epoch runtime
// relies on: everything the shards wrote in phase A (outbox appends, trace
// events) is visible to the driver's merge pass in phase B without any
// further locking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sor {

class ShardedExecutor {
 public:
  // Spawns threads-1 workers (shard 0 runs on the calling thread).
  explicit ShardedExecutor(int threads);
  ~ShardedExecutor();

  ShardedExecutor(const ShardedExecutor&) = delete;
  ShardedExecutor& operator=(const ShardedExecutor&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  // Run fn(i) for every i in [0, n); blocks until all are done. fn must not
  // throw. Reentrant calls (fn calling ParallelFor on the same executor)
  // are not supported.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop(int shard);
  void RunShard(int shard, std::size_t n,
                const std::function<void(std::size_t)>& fn) const;

  const int threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::uint64_t round_ = 0;  // bumped once per ParallelFor
  int pending_ = 0;          // workers still running the current round
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sor

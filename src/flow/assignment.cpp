#include "flow/assignment.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "flow/min_cost_flow.hpp"

namespace sor::flow {

Result<AssignmentResult> SolveAssignmentFlow(const CostMatrix& costs) {
  const int n = costs.n;
  if (n <= 0) return Error{Errc::kInvalidArgument, "empty cost matrix"};
  if (costs.cost.size() != static_cast<std::size_t>(n) * n)
    return Error{Errc::kInvalidArgument, "cost matrix size mismatch"};

  // Node layout: 0 = source, 1..n = rows (places), n+1..2n = columns
  // (ranks), 2n+1 = sink — the paper's G(V ∪ V' ∪ {s, z}, E).
  MinCostFlow g(2 * n + 2);
  const NodeId s = 0;
  const NodeId z = 2 * n + 1;
  std::vector<std::vector<int>> handle(n, std::vector<int>(n));
  for (int i = 0; i < n; ++i) {
    g.AddEdge(s, 1 + i, 1, 0);
    for (int j = 0; j < n; ++j)
      handle[i][j] = g.AddEdge(1 + i, n + 1 + j, 1, costs.at(i, j));
  }
  for (int j = 0; j < n; ++j) g.AddEdge(n + 1 + j, z, 1, 0);

  Result<FlowResult> r = g.Solve(s, z, n);
  if (!r.ok()) return r.error();
  if (r.value().flow != n)
    return Error{Errc::kInternal, "assignment network not saturated"};

  AssignmentResult out;
  out.total_cost = r.value().cost;
  out.column_of_row.assign(n, -1);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (g.flow_on(handle[i][j]) == 1) {
        out.column_of_row[i] = j;
        break;
      }
    }
    if (out.column_of_row[i] < 0)
      return Error{Errc::kInternal, "row left unassigned"};
  }
  return out;
}

Result<AssignmentResult> SolveAssignmentHungarian(const CostMatrix& costs) {
  const int n = costs.n;
  if (n <= 0) return Error{Errc::kInvalidArgument, "empty cost matrix"};
  if (costs.cost.size() != static_cast<std::size_t>(n) * n)
    return Error{Errc::kInvalidArgument, "cost matrix size mismatch"};

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  // 1-based Kuhn–Munkres with row/column potentials; O(n^3).
  std::vector<std::int64_t> u(n + 1, 0), v(n + 1, 0);
  std::vector<int> p(n + 1, 0);    // p[j] = row matched to column j
  std::vector<int> way(n + 1, 0);

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<std::int64_t> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      std::int64_t delta = kInf;
      int j1 = -1;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const std::int64_t cur = costs.at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the alternating path.
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult out;
  out.column_of_row.assign(n, -1);
  for (int j = 1; j <= n; ++j) out.column_of_row[p[j] - 1] = j - 1;
  for (int i = 0; i < n; ++i)
    out.total_cost += costs.at(i, out.column_of_row[i]);
  return out;
}

}  // namespace sor::flow

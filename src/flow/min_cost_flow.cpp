#include "flow/min_cost_flow.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace sor::flow {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}

MinCostFlow::MinCostFlow(int num_nodes) : head_(num_nodes, -1) {
  assert(num_nodes > 0);
}

int MinCostFlow::AddEdge(NodeId from, NodeId to, std::int64_t capacity,
                         std::int64_t cost) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  assert(capacity >= 0);
  assert(!solved_ && "graph is frozen after Solve()");
  if (cost < 0) has_negative_ = true;
  const int handle = static_cast<int>(edges_.size());
  edges_.push_back({to, capacity, cost, head_[from]});
  head_[from] = handle;
  edges_.push_back({from, 0, -cost, head_[to]});
  head_[to] = handle + 1;
  return handle;
}

Result<FlowResult> MinCostFlow::Solve(NodeId s, NodeId t,
                                      std::int64_t max_flow) {
  if (s < 0 || s >= num_nodes() || t < 0 || t >= num_nodes())
    return Error{Errc::kInvalidArgument, "bad source/sink"};
  if (s == t) return Error{Errc::kInvalidArgument, "source == sink"};
  if (solved_) return Error{Errc::kInvalidArgument, "already solved"};
  solved_ = true;

  const int n = num_nodes();
  std::vector<std::int64_t> potential(n, 0);

  if (has_negative_) {
    // Bellman–Ford from s over edges with residual capacity to obtain
    // valid potentials despite negative costs.
    std::vector<std::int64_t> dist(n, kInf);
    dist[s] = 0;
    for (int round = 0; round < n; ++round) {
      bool changed = false;
      for (int u = 0; u < n; ++u) {
        if (dist[u] >= kInf) continue;
        for (int e = head_[u]; e != -1; e = edges_[e].next) {
          if (edges_[e].cap <= 0) continue;
          if (dist[u] + edges_[e].cost < dist[edges_[e].to]) {
            dist[edges_[e].to] = dist[u] + edges_[e].cost;
            changed = true;
            if (round == n - 1)
              return Error{Errc::kInvalidArgument, "negative cycle"};
          }
        }
      }
      if (!changed) break;
    }
    for (int u = 0; u < n; ++u)
      potential[u] = dist[u] >= kInf ? 0 : dist[u];
  }

  FlowResult result;
  std::vector<std::int64_t> dist(n);
  std::vector<int> prev_edge(n);
  using HeapItem = std::pair<std::int64_t, int>;  // (dist, node)

  while (result.flow < max_flow) {
    // Dijkstra on reduced costs cost(u,v) + pot(u) - pot(v) >= 0.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(prev_edge.begin(), prev_edge.end(), -1);
    dist[s] = 0;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    heap.emplace(0, s);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      for (int e = head_[u]; e != -1; e = edges_[e].next) {
        if (edges_[e].cap <= 0) continue;
        const NodeId v = edges_[e].to;
        const std::int64_t nd =
            d + edges_[e].cost + potential[u] - potential[v];
        assert(edges_[e].cost + potential[u] - potential[v] >= 0);
        if (nd < dist[v]) {
          dist[v] = nd;
          prev_edge[v] = e;
          heap.emplace(nd, v);
        }
      }
    }
    if (dist[t] >= kInf) break;  // t unreachable: max flow found

    for (int u = 0; u < n; ++u) {
      if (dist[u] < kInf) potential[u] += dist[u];
    }

    // Bottleneck along the augmenting path.
    std::int64_t push = max_flow - result.flow;
    for (NodeId v = t; v != s;) {
      const int e = prev_edge[v];
      push = std::min(push, edges_[e].cap);
      v = edges_[e ^ 1].to;
    }
    for (NodeId v = t; v != s;) {
      const int e = prev_edge[v];
      edges_[e].cap -= push;
      edges_[e ^ 1].cap += push;
      result.cost += push * edges_[e].cost;
      v = edges_[e ^ 1].to;
    }
    result.flow += push;
  }
  return result;
}

std::int64_t MinCostFlow::flow_on(int edge_handle) const {
  assert(edge_handle >= 0 &&
         edge_handle + 1 < static_cast<int>(edges_.size()));
  // Flow pushed forward equals residual capacity accumulated on the
  // reverse edge.
  return edges_[edge_handle ^ 1].cap;
}

}  // namespace sor::flow

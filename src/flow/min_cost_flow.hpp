// Minimum-cost maximum-flow.
//
// §IV-B reduces weighted-footrule rank aggregation to a min-cost flow on an
// auxiliary bipartite graph (places → ranks, unit capacities, virtual source
// and sink) and solves it "by a linear programming based algorithm [1]",
// noting total unimodularity guarantees an integer optimum. We solve the
// same network with successive shortest augmenting paths using Dijkstra on
// reduced costs (Johnson potentials) — on a unit-capacity assignment network
// this produces exactly the integral LP optimum, in O(N · E log V).
//
// Costs may be negative on input; an initial Bellman–Ford pass establishes
// valid potentials before the Dijkstra phase.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.hpp"

namespace sor::flow {

using NodeId = int;

struct FlowResult {
  std::int64_t flow = 0;
  std::int64_t cost = 0;
};

class MinCostFlow {
 public:
  explicit MinCostFlow(int num_nodes);

  // Adds a directed edge; returns an edge handle usable with flow_on().
  int AddEdge(NodeId from, NodeId to, std::int64_t capacity,
              std::int64_t cost);

  // Pushes up to `max_flow` units from s to t along successively cheapest
  // paths. Call once; the object then holds the final flow assignment.
  [[nodiscard]] Result<FlowResult> Solve(
      NodeId s, NodeId t,
      std::int64_t max_flow = std::numeric_limits<std::int64_t>::max());

  // Flow carried by the edge returned from AddEdge.
  [[nodiscard]] std::int64_t flow_on(int edge_handle) const;

  [[nodiscard]] int num_nodes() const {
    return static_cast<int>(head_.size());
  }

 private:
  struct Edge {
    NodeId to;
    std::int64_t cap;   // residual capacity
    std::int64_t cost;
    int next;           // next edge index in adjacency list
  };

  // Paired forward/backward edges at indices 2k, 2k+1.
  std::vector<Edge> edges_;
  std::vector<int> head_;
  bool has_negative_ = false;
  bool solved_ = false;
};

}  // namespace sor::flow

// Minimum-cost perfect matching (assignment problem) on an N×N cost matrix.
//
// This is exactly the structure of the paper's auxiliary flow graph
// (§IV-B): vertices V = target places, V' = ranks, cost(i → i') =
// Σ_j w_j · |π(i, R_j) − i'|, all capacities 1, plus virtual source and
// sink. Two independent solvers are provided:
//
//   * SolveAssignmentFlow     — builds the paper's flow graph verbatim and
//                               runs MinCostFlow (the paper's LP stand-in);
//   * SolveAssignmentHungarian — O(n^3) Kuhn–Munkres with potentials
//                               (Jonker–Volgenant flavour), used to
//                               cross-check the flow solver and as an
//                               ablation subject.
//
// Both return, for each row i, the column assigned to it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.hpp"

namespace sor::flow {

// Row-major square cost matrix.
struct CostMatrix {
  int n = 0;
  std::vector<std::int64_t> cost;  // n*n entries

  [[nodiscard]] std::int64_t at(int i, int j) const {
    return cost[static_cast<std::size_t>(i) * n + j];
  }
  std::int64_t& at(int i, int j) {
    return cost[static_cast<std::size_t>(i) * n + j];
  }
};

struct AssignmentResult {
  std::vector<int> column_of_row;  // size n; column_of_row[i] = assigned j
  std::int64_t total_cost = 0;
};

[[nodiscard]] Result<AssignmentResult> SolveAssignmentFlow(
    const CostMatrix& costs);

[[nodiscard]] Result<AssignmentResult> SolveAssignmentHungarian(
    const CostMatrix& costs);

}  // namespace sor::flow

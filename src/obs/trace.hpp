// Deterministic event tracer.
//
// Every traced component owns a *stream* — a bounded ring buffer of typed
// events stamped with sim-time and a per-stream sequence number (the
// event's rank inside its stream). Streams are single-writer by
// construction: a phone's stream is written by the shard ticking that
// phone during an epoch's collect phase and by the driver thread during
// the merge pass (the executor barrier separates the two), and the
// server-side streams are written only inside the merge pass (see
// docs/runtime.md). A mutex per stream keeps the rings safe for any stray
// concurrent writer, but ordering never depends on it.
//
// Determinism contract: with deterministically ordered writers (the
// sharded runtime's contract), the (stream, seq) assignment of every event
// is independent of thread count, so Merged() — a stable sort by
// (time, stream, seq) — and Fingerprint() are byte-identical across
// threads ∈ {1, 2, 8, ...}. This is verified by ObsDeterminism.* in
// tests/test_obs.cpp and by the CI observability stage.
//
// Ring bound: when a stream overflows, the oldest events are overwritten
// and counted in dropped(); seq keeps counting, so a truncated trace still
// exposes exactly *what* was lost.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.hpp"

namespace sor::obs {

// Typed events across the phone↔server pipeline. Payload fields a/b/c are
// kind-specific (documented per enumerator and in docs/observability.md).
enum class EventKind : std::uint8_t {
  // --- transport (recorded on the *sender's* stream; a = peer stream id) --
  kMsgSend = 1,        // b = frame bytes, c = message type
  kMsgDelivered,       // request reached the handler intact
  kMsgDropped,         // request lost; b = 1 when a partition caused it
  kMsgCorrupted,       // request delivered with a flipped byte
  kMsgDuplicated,      // handler ran twice on the same frame
  kMsgRespDropped,     // handler ran, reply lost (lost Ack); b = 1 partition
  kMsgRespCorrupted,   // reply mangled in transit
  kFaultLatency,       // b = injected ms, c = leg (0 request, 1 response)
  // --- phone -------------------------------------------------------------
  kTaskScheduled,      // a = task, b = #instants
  kTaskRefused,        // a = task, b = sensor kind (capability gate)
  kSenseBatch,         // a = task, b = upload seq, c = #tuples collected
  kUploadAcked,        // a = task, b = upload seq
  kUploadFailed,       // a = task, b = upload seq, c = attempt number
  kUploadEvicted,      // a = task, b = upload seq (queue bound hit)
  kLeaveQueued,        // a = task (leave not yet acknowledged)
  kLeaveAcked,         // a = task
  // --- server ------------------------------------------------------------
  kParticipationAccepted,  // a = task, b = app
  kParticipationRejected,  // a = app
  kUploadStored,       // db commit of a raw_data row: a = task, b = seq, c = app
  kUploadDeduped,      // a = task, b = seq (retry of stored data, re-acked)
  kTaskFinished,       // a = task (leave processed)
  kServerRestored,     // a = raw rows recovered from snapshot
  // --- scheduler ---------------------------------------------------------
  kSchedulePlanned,     // a = app, b = #active users, c = objective (milli)
  kScheduleCommitted,   // db commit of a schedules row: a = task, c = app
  kScheduleDistributed, // a = task, b = #instants, c = app
  // --- data processor ----------------------------------------------------
  kBlobProcessed,      // a = task, b = seq, c = app
  kAppProcessed,       // a = app, b = #feature values written
  // --- system ------------------------------------------------------------
  kRankingDone,        // a = app (place's final rankings are available)
  // --- robustness (appended: kinds are persisted in trace files and must
  // --- never renumber) ----------------------------------------------------
  kNodeUnreachable,    // send hit a down node; a = peer stream id
  kNodeCrashed,        // a = 1 when the crash is an uninstall (state wiped)
  kNodeRestarted,      // a = 1 when the restart is a reinstall (new task)
  kUploadThrottled,    // phone: a = task, b = seq, c = retry_after ms
  kUploadShed,         // server: a = task, b = seq, c = 1 when stale
  kServerModeChanged,  // a = new ServerMode, b = old
  kStorageWriteFailed, // server: a = task, b = seq (injected write failure)
  kServerReprimed,     // a = raw rows re-indexed during quarantine recovery
};

[[nodiscard]] const char* to_string(EventKind k);
// Inverse of to_string; returns false for an unknown name.
[[nodiscard]] bool ParseEventKind(std::string_view name, EventKind* out);

using StreamId = std::uint32_t;

struct TraceEvent {
  std::int64_t time_ms = 0;  // sim-time stamp
  StreamId stream = 0;
  std::uint64_t seq = 0;     // rank within the stream (monotone, gap-free)
  EventKind kind = EventKind::kMsgSend;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// A self-contained trace: the canonical event order plus the stream-name
// table payload stream ids refer to. This is what the exporters write, the
// JSONL reader reconstructs, and the span builder consumes.
struct TraceData {
  std::vector<std::string> stream_names;  // index == StreamId
  std::vector<TraceEvent> events;         // (time, stream, seq) order
  std::uint64_t dropped = 0;              // events lost to ring bounds

  friend bool operator==(const TraceData&, const TraceData&) = default;
};

// FNV-1a over the stream names, drop count, and canonical event order — the
// value the determinism tests compare across thread counts.
// Tracer::Fingerprint() is exactly Fingerprint(Snapshot()), so a trace read
// back from JSONL fingerprints identically to the tracer that recorded it.
[[nodiscard]] std::uint64_t Fingerprint(const TraceData& trace);

class Tracer {
 public:
  explicit Tracer(std::size_t capacity_per_stream = 1 << 16);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Tracing is off by default: Emit() is a single relaxed load + branch.
  void set_enabled(bool v) { enabled_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Applies to streams registered afterwards.
  void set_capacity(std::size_t c) { capacity_ = c; }

  // Find-or-create the stream for `name`. Deterministic stream ids require
  // deterministic registration order: components register their streams
  // from serial setup code or inside the epoch merge pass (both are
  // thread-count invariant). Handles stay valid for the tracer's lifetime.
  StreamId RegisterStream(std::string_view name);
  [[nodiscard]] const std::string& stream_name(StreamId id) const;
  [[nodiscard]] std::size_t num_streams() const;

  void Emit(StreamId stream, SimTime t, EventKind kind, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint64_t c = 0);

  // All retained events in the canonical deterministic order:
  // (time_ms, stream, seq). (stream, seq) is unique, so the order is total.
  [[nodiscard]] std::vector<TraceEvent> Merged() const;

  // Merged events + stream names + drop total, ready for export/analysis.
  [[nodiscard]] TraceData Snapshot() const;

  [[nodiscard]] std::uint64_t dropped(StreamId stream) const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  [[nodiscard]] std::size_t total_events() const;

  // FNV-1a over the merged events, stream names and drop counts — the
  // fingerprint the determinism tests compare across thread counts.
  [[nodiscard]] std::uint64_t Fingerprint() const;

  // Forget all streams and events (campaign boundary). Stream ids from
  // before the clear are invalidated.
  void Clear();

 private:
  struct Stream {
    explicit Stream(std::string n) : name(std::move(n)) {}
    std::string name;
    mutable std::mutex mu;
    std::vector<TraceEvent> ring;  // capacity-bounded, ring[seq % cap]
    std::size_t capacity = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t dropped = 0;
  };

  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  mutable std::mutex mu_;  // guards streams_ layout (not the rings)
  std::vector<std::unique_ptr<Stream>> streams_;
  std::map<std::string, StreamId, std::less<>> by_name_;
};

}  // namespace sor::obs

// MetricsRegistry — the unified counter/gauge/histogram store (the
// measurement substrate the paper built by hand-instrumenting its Android
// client and sensing server for §V's energy/latency/coverage figures).
//
// Design goals, in order:
//   1. Lock-cheap on the hot path. An increment is one relaxed atomic add;
//      metrics the parallel tick loop hammers from many shards use
//      per-thread cells (64-byte padded) that merge on read, so the
//      ShardedExecutor's workers never bounce a cache line.
//   2. Deterministic readouts. Counter and histogram values are sums —
//      order-independent, so any thread count yields the same numbers.
//      Gauges are last-write; components only set them from serialized
//      contexts (the epoch merge pass or serial driver code).
//   3. Stable handles. counter()/gauge()/histogram() return references
//      that stay valid for the registry's lifetime, so call sites resolve
//      the name once and keep the pointer — the string map is off the hot
//      path entirely.
//
// Naming scheme (docs/observability.md): dotted lowercase
// "<layer>.<noun>[_<verb>]", e.g. "net.delivered", "phone.uploads_sent",
// "sched.reschedules". Per-link metrics append |from=<endpoint>|to=<endpoint>
// label suffixes via LabeledName().
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sor::obs {

// How a metric's storage is laid out.
enum class Sharding {
  kSingle,     // one atomic cell — for metrics whose writers are serialized
               // (per-link transport counters inside the merge pass)
  kPerThread,  // padded per-thread cells, merged on read — for metrics the
               // parallel tick loop updates from every shard
};

namespace detail {

inline constexpr std::size_t kCells = 16;

struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> v{0};
};

// Stable small index for the calling thread, assigned on first use. Two
// threads may share a cell (kCells is a bound, not a guarantee); sharing
// costs contention, never correctness — cells are summed on read.
std::size_t ThreadCell();

}  // namespace detail

class Counter {
 public:
  explicit Counter(Sharding sharding);
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(std::uint64_t n = 1) {
    cell(sharding_ == Sharding::kPerThread ? detail::ThreadCell() : 0)
        .fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const;
  void Reset();

 private:
  [[nodiscard]] std::atomic<std::uint64_t>& cell(std::size_t i) {
    return cells_[i].v;
  }
  Sharding sharding_;
  // kSingle uses cells_[0] only; kPerThread spreads across all of them.
  std::vector<detail::PaddedCell> cells_;
};

// Last-write-wins double value (queue depths, last objective, ...). Writers
// must be serialized for deterministic readouts; every current caller sets
// gauges from serial driver code or inside the epoch merge pass.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { Set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
};

// Fixed-bucket histogram: counts of observations <= each upper bound, plus
// a +inf overflow bucket, a running sum and a count. Buckets are fixed at
// creation so merge-on-read is a plain per-bucket sum.
class Histogram {
 public:
  Histogram(std::vector<double> upper_bounds, Sharding sharding);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double x);

  struct Snapshot {
    std::vector<double> upper_bounds;   // one per finite bucket
    std::vector<std::uint64_t> counts;  // size = upper_bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot Read() const;
  void Reset();

 private:
  struct alignas(64) Cells {
    explicit Cells(std::size_t n) : buckets(n) {}
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  // double, CAS-accumulated
  };
  std::vector<double> bounds_;
  Sharding sharding_;
  std::vector<std::unique_ptr<Cells>> cells_;
};

// Common bucket ladders.
[[nodiscard]] std::vector<double> ExponentialBuckets(double start,
                                                     double factor, int n);

// Approximate quantile (q in [0, 1]) of a histogram snapshot: locate the
// bucket holding the q-th observation and interpolate linearly inside it.
// Observations in the +inf overflow bucket report the last finite bound.
// Returns 0 for an empty snapshot.
[[nodiscard]] double HistogramQuantile(const Histogram::Snapshot& snapshot,
                                       double q);

// "name|k1=v1|k2=v2" — the labeled-metric convention used for per-link
// transport counters. Keys must be given in a fixed order by the caller so
// the same link always maps to the same metric name.
[[nodiscard]] std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The sharding/buckets of an existing metric win; callers
  // that disagree get the original (names are the identity).
  Counter& counter(std::string_view name, Sharding s = Sharding::kSingle);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       Sharding s = Sharding::kSingle);

  // Merged read of everything, sorted by name (deterministic export order).
  struct Entry {
    std::string name;
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    std::uint64_t counter_value = 0;      // kCounter
    double gauge_value = 0.0;             // kGauge
    Histogram::Snapshot histogram;        // kHistogram
  };
  [[nodiscard]] std::vector<Entry> Read() const;

  // Human/machine readouts of Read().
  [[nodiscard]] std::string RenderText() const;
  [[nodiscard]] std::string RenderJson() const;

  // Zero every metric (campaign boundaries in benches). Handles stay valid.
  void Reset();

 private:
  mutable std::mutex mu_;  // guards the maps; values are internally atomic
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sor::obs

#include "obs/trace.hpp"

#include <algorithm>
#include <array>

namespace sor::obs {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

constexpr std::array kKindNames = {
    KindName{EventKind::kMsgSend, "msg_send"},
    KindName{EventKind::kMsgDelivered, "msg_delivered"},
    KindName{EventKind::kMsgDropped, "msg_dropped"},
    KindName{EventKind::kMsgCorrupted, "msg_corrupted"},
    KindName{EventKind::kMsgDuplicated, "msg_duplicated"},
    KindName{EventKind::kMsgRespDropped, "msg_resp_dropped"},
    KindName{EventKind::kMsgRespCorrupted, "msg_resp_corrupted"},
    KindName{EventKind::kFaultLatency, "fault_latency"},
    KindName{EventKind::kTaskScheduled, "task_scheduled"},
    KindName{EventKind::kTaskRefused, "task_refused"},
    KindName{EventKind::kSenseBatch, "sense_batch"},
    KindName{EventKind::kUploadAcked, "upload_acked"},
    KindName{EventKind::kUploadFailed, "upload_failed"},
    KindName{EventKind::kUploadEvicted, "upload_evicted"},
    KindName{EventKind::kLeaveQueued, "leave_queued"},
    KindName{EventKind::kLeaveAcked, "leave_acked"},
    KindName{EventKind::kParticipationAccepted, "participation_accepted"},
    KindName{EventKind::kParticipationRejected, "participation_rejected"},
    KindName{EventKind::kUploadStored, "upload_stored"},
    KindName{EventKind::kUploadDeduped, "upload_deduped"},
    KindName{EventKind::kTaskFinished, "task_finished"},
    KindName{EventKind::kServerRestored, "server_restored"},
    KindName{EventKind::kSchedulePlanned, "schedule_planned"},
    KindName{EventKind::kScheduleCommitted, "schedule_committed"},
    KindName{EventKind::kScheduleDistributed, "schedule_distributed"},
    KindName{EventKind::kBlobProcessed, "blob_processed"},
    KindName{EventKind::kAppProcessed, "app_processed"},
    KindName{EventKind::kRankingDone, "ranking_done"},
    KindName{EventKind::kNodeUnreachable, "node_unreachable"},
    KindName{EventKind::kNodeCrashed, "node_crashed"},
    KindName{EventKind::kNodeRestarted, "node_restarted"},
    KindName{EventKind::kUploadThrottled, "upload_throttled"},
    KindName{EventKind::kUploadShed, "upload_shed"},
    KindName{EventKind::kServerModeChanged, "server_mode_changed"},
    KindName{EventKind::kStorageWriteFailed, "storage_write_failed"},
    KindName{EventKind::kServerReprimed, "server_reprimed"},
};

}  // namespace

const char* to_string(EventKind k) {
  for (const KindName& kn : kKindNames)
    if (kn.kind == k) return kn.name;
  return "unknown";
}

bool ParseEventKind(std::string_view name, EventKind* out) {
  for (const KindName& kn : kKindNames) {
    if (name == kn.name) {
      *out = kn.kind;
      return true;
    }
  }
  return false;
}

Tracer::Tracer(std::size_t capacity_per_stream)
    : capacity_(capacity_per_stream) {}

StreamId Tracer::RegisterStream(std::string_view name) {
  std::lock_guard lock(mu_);
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  const StreamId id = static_cast<StreamId>(streams_.size());
  streams_.push_back(std::make_unique<Stream>(std::string(name)));
  streams_.back()->capacity = capacity_ > 0 ? capacity_ : 1;
  streams_.back()->ring.reserve(
      std::min<std::size_t>(streams_.back()->capacity, 1024));
  by_name_.emplace(std::string(name), id);
  return id;
}

const std::string& Tracer::stream_name(StreamId id) const {
  std::lock_guard lock(mu_);
  static const std::string kUnknown = "?";
  if (id >= streams_.size()) return kUnknown;
  return streams_[id]->name;
}

std::size_t Tracer::num_streams() const {
  std::lock_guard lock(mu_);
  return streams_.size();
}

void Tracer::Emit(StreamId stream, SimTime t, EventKind kind, std::uint64_t a,
                  std::uint64_t b, std::uint64_t c) {
  if (!enabled()) return;
  Stream* s;
  {
    std::lock_guard lock(mu_);
    if (stream >= streams_.size()) return;
    s = streams_[stream].get();
  }
  TraceEvent e;
  e.time_ms = t.ms;
  e.stream = stream;
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.c = c;
  std::lock_guard lock(s->mu);
  e.seq = s->next_seq++;
  if (s->ring.size() < s->capacity) {
    s->ring.push_back(e);
  } else {
    // Overwrite the oldest slot; seq keeps counting so the gap is visible.
    s->ring[static_cast<std::size_t>(e.seq % s->capacity)] = e;
    ++s->dropped;
  }
}

std::vector<TraceEvent> Tracer::Merged() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard lock(mu_);
    for (const std::unique_ptr<Stream>& s : streams_) {
      std::lock_guard ring_lock(s->mu);
      out.insert(out.end(), s->ring.begin(), s->ring.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.time_ms != y.time_ms) return x.time_ms < y.time_ms;
              if (x.stream != y.stream) return x.stream < y.stream;
              return x.seq < y.seq;
            });
  return out;
}

TraceData Tracer::Snapshot() const {
  TraceData data;
  {
    std::lock_guard lock(mu_);
    data.stream_names.reserve(streams_.size());
    for (const std::unique_ptr<Stream>& s : streams_)
      data.stream_names.push_back(s->name);
  }
  data.events = Merged();
  data.dropped = total_dropped();
  return data;
}

std::uint64_t Tracer::dropped(StreamId stream) const {
  std::lock_guard lock(mu_);
  if (stream >= streams_.size()) return 0;
  std::lock_guard ring_lock(streams_[stream]->mu);
  return streams_[stream]->dropped;
}

std::uint64_t Tracer::total_dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<Stream>& s : streams_) {
    std::lock_guard ring_lock(s->mu);
    total += s->dropped;
  }
  return total;
}

std::size_t Tracer::total_events() const {
  std::lock_guard lock(mu_);
  std::size_t total = 0;
  for (const std::unique_ptr<Stream>& s : streams_) {
    std::lock_guard ring_lock(s->mu);
    total += s->ring.size();
  }
  return total;
}

namespace {

inline void FnvMix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

}  // namespace

std::uint64_t Fingerprint(const TraceData& trace) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::string& name : trace.stream_names) {
    for (char c : name) FnvMix(h, static_cast<std::uint8_t>(c));
  }
  FnvMix(h, trace.dropped);
  for (const TraceEvent& e : trace.events) {
    FnvMix(h, static_cast<std::uint64_t>(e.time_ms));
    FnvMix(h, e.stream);
    FnvMix(h, e.seq);
    FnvMix(h, static_cast<std::uint64_t>(e.kind));
    FnvMix(h, e.a);
    FnvMix(h, e.b);
    FnvMix(h, e.c);
  }
  return h;
}

std::uint64_t Tracer::Fingerprint() const {
  return obs::Fingerprint(Snapshot());
}

void Tracer::Clear() {
  std::lock_guard lock(mu_);
  streams_.clear();
  by_name_.clear();
}

}  // namespace sor::obs

#include "obs/spans.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "common/stats.hpp"

namespace sor::obs {

std::vector<UploadSpan> BuildUploadSpans(const TraceData& trace) {
  // (task, seq) -> span under construction. std::map keeps the output in
  // (task, seq) order without a final sort.
  std::map<std::pair<std::uint64_t, std::uint64_t>, UploadSpan> spans;
  // app id -> time the app's ranking became available.
  std::map<std::uint64_t, std::int64_t> ranked_at;

  auto at = [&spans](std::uint64_t task, std::uint64_t seq) -> UploadSpan& {
    UploadSpan& s = spans[{task, seq}];
    s.task = task;
    s.seq = seq;
    return s;
  };

  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case EventKind::kSenseBatch: {
        UploadSpan& s = at(e.a, e.b);
        if (s.t_sense < 0) s.t_sense = e.time_ms;
        break;
      }
      case EventKind::kUploadFailed:
        ++at(e.a, e.b).attempts;
        break;
      case EventKind::kUploadAcked: {
        UploadSpan& s = at(e.a, e.b);
        if (s.t_acked < 0) {
          s.t_acked = e.time_ms;
          ++s.attempts;  // the attempt that landed
        }
        break;
      }
      case EventKind::kUploadStored:
      case EventKind::kUploadDeduped: {
        UploadSpan& s = at(e.a, e.b);
        if (s.t_stored < 0) {
          s.t_stored = e.time_ms;
          s.app = e.c;
        }
        break;
      }
      case EventKind::kBlobProcessed: {
        UploadSpan& s = at(e.a, e.b);
        if (s.t_processed < 0) s.t_processed = e.time_ms;
        if (s.app == 0) s.app = e.c;
        break;
      }
      case EventKind::kRankingDone: {
        auto [it, inserted] = ranked_at.try_emplace(e.a, e.time_ms);
        if (!inserted) it->second = e.time_ms;  // last ranking wins
        break;
      }
      default:
        break;
    }
  }

  std::vector<UploadSpan> out;
  out.reserve(spans.size());
  for (auto& [key, s] : spans) {
    if (s.app != 0) {
      if (auto it = ranked_at.find(s.app); it != ranked_at.end())
        s.t_ranked = it->second;
    }
    out.push_back(std::move(s));
  }
  return out;
}

TraceSummary Summarize(const TraceData& trace) {
  TraceSummary s;
  s.events = trace.events.size();
  s.events_dropped = trace.dropped;

  const std::vector<UploadSpan> spans = BuildUploadSpans(trace);
  s.spans = spans.size();
  std::vector<double> e2e;
  std::vector<double> ack;
  for (const UploadSpan& sp : spans) {
    if (sp.t_acked >= 0) {
      ++s.acked;
      if (sp.t_sense >= 0)
        ack.push_back(static_cast<double>(sp.t_acked - sp.t_sense));
    }
    if (sp.t_processed >= 0) ++s.processed;
    if (sp.t_ranked >= 0) ++s.ranked;
    if (const std::int64_t ms = sp.EndToEndMs(); ms >= 0)
      e2e.push_back(static_cast<double>(ms));
  }
  if (!e2e.empty()) {
    s.e2e_p50 = Percentile(e2e, 50.0);
    s.e2e_p95 = Percentile(e2e, 95.0);
    s.e2e_p99 = Percentile(e2e, 99.0);
  }
  if (!ack.empty()) {
    s.ack_p50 = Percentile(ack, 50.0);
    s.ack_p95 = Percentile(ack, 95.0);
    s.ack_p99 = Percentile(ack, 99.0);
  }

  // Per-link delivery, keyed by (sender stream, peer stream). The transport
  // records every msg_* event on the sender's stream with a = peer id.
  std::map<std::pair<StreamId, StreamId>, LinkSummary> links;
  auto name_of = [&trace](StreamId id) -> std::string {
    if (id < trace.stream_names.size()) return trace.stream_names[id];
    return "stream:" + std::to_string(id);
  };
  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case EventKind::kMsgSend:
      case EventKind::kMsgDropped:
      case EventKind::kMsgRespDropped:
      case EventKind::kMsgCorrupted:
      case EventKind::kMsgRespCorrupted:
        break;
      default:
        continue;
    }
    LinkSummary& l = links[{e.stream, static_cast<StreamId>(e.a)}];
    switch (e.kind) {
      case EventKind::kMsgSend:
        ++l.sends;
        break;
      case EventKind::kMsgDropped:
        ++l.dropped;
        break;
      case EventKind::kMsgRespDropped:
        ++l.resp_dropped;
        break;
      case EventKind::kMsgCorrupted:
      case EventKind::kMsgRespCorrupted:
        ++l.corrupted;
        break;
      default:
        break;
    }
  }
  s.links.reserve(links.size());
  for (auto& [key, l] : links) {
    l.from = name_of(key.first);
    l.to = name_of(key.second);
    s.links.push_back(std::move(l));
  }
  std::sort(s.links.begin(), s.links.end(),
            [](const LinkSummary& a, const LinkSummary& b) {
              return std::tie(a.from, a.to) < std::tie(b.from, b.to);
            });
  return s;
}

namespace {

// Percentiles are sim-time millisecond interpolations: render with %g so
// "1500" stays "1500" and "1512.5" keeps its half — stable across platforms
// since the inputs are exact ticks.
std::string Ms(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string Pct(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace

std::string RenderSummary(const TraceSummary& s) {
  std::ostringstream os;
  os << "trace summary\n";
  os << "  events " << s.events << " (ring-dropped " << s.events_dropped
     << ")\n";
  os << "  upload spans " << s.spans << " (acked " << s.acked << ", processed "
     << s.processed << ", ranked " << s.ranked << ")\n";
  os << "  sense->ack ms  p50=" << Ms(s.ack_p50) << " p95=" << Ms(s.ack_p95)
     << " p99=" << Ms(s.ack_p99) << "\n";
  os << "  sense->end ms  p50=" << Ms(s.e2e_p50) << " p95=" << Ms(s.e2e_p95)
     << " p99=" << Ms(s.e2e_p99) << "\n";
  os << "  links\n";
  for (const LinkSummary& l : s.links) {
    os << "    " << l.from << " -> " << l.to << "  sends=" << l.sends
       << " dropped=" << l.dropped << " resp_dropped=" << l.resp_dropped
       << " corrupted=" << l.corrupted << " drop_rate=" << Pct(l.drop_rate())
       << "\n";
  }
  return os.str();
}

}  // namespace sor::obs

#include "obs/trace_io.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/spans.hpp"

namespace sor::obs {

namespace {

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

// --- minimal strict scanner for the two line shapes we emit ---------------

class Scanner {
 public:
  explicit Scanner(std::string_view s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      char ch = s_[pos_++];
      if (ch == '"') return true;
      if (ch == '\\') {
        if (pos_ >= s_.size()) return false;
        char esc = s_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                v |= static_cast<unsigned>(h - 'A' + 10);
              else
                return false;
            }
            if (v > 0x7f) return false;  // we only ever escape control chars
            out->push_back(static_cast<char>(v));
            break;
          }
          default:
            return false;
        }
      } else {
        out->push_back(ch);
      }
    }
    return false;  // unterminated
  }

  bool ParseU64(std::uint64_t* out) {
    SkipWs();
    if (pos_ >= s_.size() ||
        !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return false;
    std::uint64_t v = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      v = v * 10 + static_cast<std::uint64_t>(s_[pos_] - '0');
      ++pos_;
    }
    *out = v;
    return true;
  }

  bool ParseI64(std::int64_t* out) {
    SkipWs();
    bool neg = false;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      neg = true;
      ++pos_;
    }
    std::uint64_t v = 0;
    if (!ParseU64(&v)) return false;
    *out = neg ? -static_cast<std::int64_t>(v) : static_cast<std::int64_t>(v);
    return true;
  }

  // Expects  "key":  next (after an optional leading comma was consumed).
  bool ParseKey(std::string_view key) {
    std::string k;
    return ParseString(&k) && k == key && Consume(':');
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= s_.size();
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

bool Fail(std::string* error, std::size_t line_no, std::string_view why) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + std::string(why);
  }
  return false;
}

}  // namespace

std::string WriteJsonLines(const TraceData& trace) {
  std::string out;
  out += "{\"streams\":[";
  for (std::size_t i = 0; i < trace.stream_names.size(); ++i) {
    if (i) out += ',';
    AppendJsonString(out, trace.stream_names[i]);
  }
  out += "],\"dropped\":";
  out += std::to_string(trace.dropped);
  out += "}\n";
  for (const TraceEvent& e : trace.events) {
    out += "{\"t\":";
    out += std::to_string(e.time_ms);
    out += ",\"s\":";
    out += std::to_string(e.stream);
    out += ",\"q\":";
    out += std::to_string(e.seq);
    out += ",\"k\":\"";
    out += to_string(e.kind);
    out += "\",\"a\":";
    out += std::to_string(e.a);
    out += ",\"b\":";
    out += std::to_string(e.b);
    out += ",\"c\":";
    out += std::to_string(e.c);
    out += "}\n";
  }
  return out;
}

bool ReadJsonLines(std::string_view text, TraceData* out, std::string* error) {
  TraceData data;
  std::size_t line_no = 0;
  std::size_t start = 0;
  bool saw_header = false;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    // Skip blank lines (trailing newline produces one).
    bool blank = true;
    for (char c : line)
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    if (blank) {
      if (start > text.size()) break;
      continue;
    }

    Scanner sc(line);
    if (!sc.Consume('{')) return Fail(error, line_no, "expected '{'");
    if (!saw_header) {
      if (!sc.ParseKey("streams") || !sc.Consume('['))
        return Fail(error, line_no, "bad header: expected \"streams\":[");
      if (!sc.Consume(']')) {
        do {
          std::string name;
          if (!sc.ParseString(&name))
            return Fail(error, line_no, "bad stream name");
          data.stream_names.push_back(std::move(name));
        } while (sc.Consume(','));
        if (!sc.Consume(']'))
          return Fail(error, line_no, "unterminated stream list");
      }
      if (!sc.Consume(',') || !sc.ParseKey("dropped") ||
          !sc.ParseU64(&data.dropped))
        return Fail(error, line_no, "bad header: expected \"dropped\":N");
      if (!sc.Consume('}') || !sc.AtEnd())
        return Fail(error, line_no, "trailing content in header");
      saw_header = true;
      continue;
    }

    TraceEvent e;
    std::string kind_name;
    std::uint64_t stream = 0;
    if (!sc.ParseKey("t") || !sc.ParseI64(&e.time_ms) || !sc.Consume(',') ||
        !sc.ParseKey("s") || !sc.ParseU64(&stream) || !sc.Consume(',') ||
        !sc.ParseKey("q") || !sc.ParseU64(&e.seq) || !sc.Consume(',') ||
        !sc.ParseKey("k") || !sc.ParseString(&kind_name) || !sc.Consume(',') ||
        !sc.ParseKey("a") || !sc.ParseU64(&e.a) || !sc.Consume(',') ||
        !sc.ParseKey("b") || !sc.ParseU64(&e.b) || !sc.Consume(',') ||
        !sc.ParseKey("c") || !sc.ParseU64(&e.c))
      return Fail(error, line_no, "bad event");
    if (!sc.Consume('}') || !sc.AtEnd())
      return Fail(error, line_no, "trailing content in event");
    if (!ParseEventKind(kind_name, &e.kind))
      return Fail(error, line_no, "unknown event kind '" + kind_name + "'");
    if (stream >= data.stream_names.size())
      return Fail(error, line_no, "stream id out of range");
    e.stream = static_cast<StreamId>(stream);
    data.events.push_back(e);
  }
  if (!saw_header) return Fail(error, line_no, "missing header line");
  *out = std::move(data);
  return true;
}

std::string WriteChromeTrace(const TraceData& trace) {
  std::string out;
  out += "[";
  bool first = true;
  auto sep = [&out, &first]() {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };
  // Track names: one "thread" per stream inside pid 0.
  for (std::size_t i = 0; i < trace.stream_names.size(); ++i) {
    sep();
    out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(i) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendJsonString(out, trace.stream_names[i]);
    out += "}}";
  }
  for (const TraceEvent& e : trace.events) {
    sep();
    out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":" +
           std::to_string(e.stream) +
           ",\"ts\":" + std::to_string(e.time_ms * 1000) + ",\"name\":\"" +
           to_string(e.kind) + "\",\"args\":{\"a\":" + std::to_string(e.a) +
           ",\"b\":" + std::to_string(e.b) + ",\"c\":" + std::to_string(e.c) +
           "}}";
  }
  // Stitched upload spans as duration slices on a dedicated track.
  const std::uint64_t span_tid = trace.stream_names.size();
  bool emitted_span = false;
  for (const UploadSpan& s : BuildUploadSpans(trace)) {
    const std::int64_t dur = s.EndToEndMs();
    if (dur < 0) continue;
    if (!emitted_span) {
      sep();
      out += "{\"ph\":\"M\",\"pid\":0,\"tid\":" + std::to_string(span_tid) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"spans\"}}";
      emitted_span = true;
    }
    sep();
    out += "{\"ph\":\"X\",\"pid\":0,\"tid\":" + std::to_string(span_tid) +
           ",\"ts\":" + std::to_string(s.t_sense * 1000) +
           ",\"dur\":" + std::to_string(dur * 1000) + ",\"name\":\"task" +
           std::to_string(s.task) + "/seq" + std::to_string(s.seq) +
           "\",\"args\":{\"app\":" + std::to_string(s.app) +
           ",\"attempts\":" + std::to_string(s.attempts) + "}}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace sor::obs

// Span timelines — stitch trace events into end-to-end latency records.
//
// The unit of work SOR ships through its pipeline is one upload batch: a
// task instance executes its scheduled instants (sense), the frontend
// sends the batch (upload), the server commits it to raw_data and
// acknowledges (ack), the Data Processor decodes it into feature data
// (process), and the Personalizable Ranker folds the features into a
// ranking (rank). BuildUploadSpans() keys each batch by (task, seq) and
// extracts one milestone timestamp per stage from the trace, so the
// latencies the paper measured by hand-instrumenting its prototype fall
// out of any recorded trace.
//
// All timestamps are simulated milliseconds; -1 marks a milestone the
// batch never reached (e.g. an upload still queued when the trace ended).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace sor::obs {

struct UploadSpan {
  std::uint64_t task = 0;
  std::uint64_t seq = 0;
  std::uint64_t app = 0;          // learned at the server (0 = never arrived)
  std::int64_t t_sense = -1;      // batch collected on the phone
  std::int64_t t_acked = -1;      // phone saw the server's Ack
  std::int64_t t_stored = -1;     // raw_data row committed
  std::int64_t t_processed = -1;  // Data Processor decoded the blob
  std::int64_t t_ranked = -1;     // app's final ranking available
  int attempts = 0;               // sends tried (1 = first try landed)

  // Milliseconds from sense to the furthest milestone reached, or -1 when
  // the batch never produced a server-visible effect.
  [[nodiscard]] std::int64_t EndToEndMs() const {
    const std::int64_t end =
        t_ranked >= 0 ? t_ranked
        : t_processed >= 0 ? t_processed
        : t_stored >= 0 ? t_stored
        : t_acked;
    return end >= 0 && t_sense >= 0 ? end - t_sense : -1;
  }

  friend bool operator==(const UploadSpan&, const UploadSpan&) = default;
};

// Spans in (task, seq) order — deterministic for a deterministic trace.
[[nodiscard]] std::vector<UploadSpan> BuildUploadSpans(const TraceData& trace);

// One (from, to) endpoint pair's delivery record, from the msg_* events.
struct LinkSummary {
  std::string from;
  std::string to;
  std::uint64_t sends = 0;
  std::uint64_t dropped = 0;        // request leg (incl. partition windows)
  std::uint64_t resp_dropped = 0;   // lost Acks
  std::uint64_t corrupted = 0;

  [[nodiscard]] double drop_rate() const {
    return sends == 0
               ? 0.0
               : static_cast<double>(dropped + resp_dropped) /
                     static_cast<double>(sends);
  }
};

struct TraceSummary {
  std::size_t events = 0;
  std::uint64_t events_dropped = 0;  // lost to ring bounds
  std::size_t spans = 0;             // upload batches seen
  std::size_t acked = 0;
  std::size_t processed = 0;
  std::size_t ranked = 0;
  // Percentiles over EndToEndMs() of completed spans (ms).
  double e2e_p50 = 0.0, e2e_p95 = 0.0, e2e_p99 = 0.0;
  // Percentiles over (t_acked - t_sense) of acked spans (ms): the
  // phone-visible upload latency, including every retry backoff.
  double ack_p50 = 0.0, ack_p95 = 0.0, ack_p99 = 0.0;
  std::vector<LinkSummary> links;  // sorted by (from, to)
};

[[nodiscard]] TraceSummary Summarize(const TraceData& trace);

// The `sor trace --summary` output (golden-tested in tests/test_obs.cpp).
[[nodiscard]] std::string RenderSummary(const TraceSummary& s);

}  // namespace sor::obs

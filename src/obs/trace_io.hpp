// Trace export/import.
//
// Two formats:
//   * JSON-lines — the interchange format. Line 1 is a header carrying the
//     stream-name table and the ring-drop count; every following line is
//     one event. Writing a TraceData and reading it back reproduces it
//     exactly (round-trip tested), so `sor trace --summary <file>` analyses
//     offline what the simulator recorded online.
//   * Chrome trace_event JSON — load in chrome://tracing or Perfetto.
//     Each stream becomes a named track; events are instants and stitched
//     upload spans become duration slices on a "spans" track.
#pragma once

#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace sor::obs {

// Header: {"streams":["name",...],"dropped":N}
// Event:  {"t":<ms>,"s":<stream id>,"q":<seq>,"k":"<kind>","a":..,"b":..,"c":..}
[[nodiscard]] std::string WriteJsonLines(const TraceData& trace);

// Strict inverse of WriteJsonLines. Returns false (and leaves *out
// untouched) on any malformed line; *error gets a one-line reason when
// non-null.
[[nodiscard]] bool ReadJsonLines(std::string_view text, TraceData* out,
                                 std::string* error = nullptr);

// Chrome trace_event "JSON Array Format" (chrome://tracing / Perfetto).
// Sim-time milliseconds map to trace microseconds (ts = ms * 1000).
[[nodiscard]] std::string WriteChromeTrace(const TraceData& trace);

}  // namespace sor::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <sstream>

namespace sor::obs {

namespace detail {

std::size_t ThreadCell() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t cell =
      next.fetch_add(1, std::memory_order_relaxed) % kCells;
  return cell;
}

}  // namespace detail

Counter::Counter(Sharding sharding)
    : sharding_(sharding),
      cells_(sharding == Sharding::kPerThread ? detail::kCells : 1) {}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const detail::PaddedCell& c : cells_)
    total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (detail::PaddedCell& c : cells_)
    c.v.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds, Sharding sharding)
    : bounds_(std::move(upper_bounds)), sharding_(sharding) {
  std::sort(bounds_.begin(), bounds_.end());
  const std::size_t n =
      sharding_ == Sharding::kPerThread ? detail::kCells : 1;
  cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    cells_.push_back(std::make_unique<Cells>(bounds_.size() + 1));
}

void Histogram::Observe(double x) {
  const std::size_t slot =
      sharding_ == Sharding::kPerThread ? detail::ThreadCell() : 0;
  Cells& c = *cells_[slot];
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  c.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  // Double accumulation via CAS: uncontended in practice (one writer per
  // cell); the loop only spins when two threads share a cell.
  std::uint64_t old = c.sum_bits.load(std::memory_order_relaxed);
  while (!c.sum_bits.compare_exchange_weak(
      old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + x),
      std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Read() const {
  Snapshot s;
  s.upper_bounds = bounds_;
  s.counts.assign(bounds_.size() + 1, 0);
  for (const std::unique_ptr<Cells>& c : cells_) {
    for (std::size_t i = 0; i < s.counts.size(); ++i)
      s.counts[i] += c->buckets[i].load(std::memory_order_relaxed);
    s.count += c->count.load(std::memory_order_relaxed);
    s.sum += std::bit_cast<double>(c->sum_bits.load(std::memory_order_relaxed));
  }
  return s;
}

void Histogram::Reset() {
  for (const std::unique_ptr<Cells>& c : cells_) {
    for (auto& b : c->buckets) b.store(0, std::memory_order_relaxed);
    c->count.store(0, std::memory_order_relaxed);
    c->sum_bits.store(std::bit_cast<std::uint64_t>(0.0),
                      std::memory_order_relaxed);
  }
}

std::vector<double> ExponentialBuckets(double start, double factor, int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

double HistogramQuantile(const Histogram::Snapshot& snapshot, double q) {
  if (snapshot.count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(snapshot.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snapshot.counts.size(); ++i) {
    const std::uint64_t in_bucket = snapshot.counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= snapshot.upper_bounds.size()) {
        // Overflow bucket: no finite upper edge to interpolate towards.
        return snapshot.upper_bounds.empty() ? 0.0
                                             : snapshot.upper_bounds.back();
      }
      const double hi = snapshot.upper_bounds[i];
      const double lo = i == 0 ? 0.0 : snapshot.upper_bounds[i - 1];
      const double into = target - static_cast<double>(cumulative);
      return lo + (hi - lo) * (into / static_cast<double>(in_bucket));
    }
    cumulative += in_bucket;
  }
  return snapshot.upper_bounds.empty() ? 0.0 : snapshot.upper_bounds.back();
}

std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string name(base);
  for (const auto& [k, v] : labels) {
    name += '|';
    name += k;
    name += '=';
    name += v;
  }
  return name;
}

Counter& MetricsRegistry::counter(std::string_view name, Sharding s) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>(s))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      Sharding s) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds), s))
             .first;
  }
  return *it->second;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Read() const {
  std::lock_guard lock(mu_);
  std::vector<Entry> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Entry e;
    e.name = name;
    e.kind = Entry::Kind::kCounter;
    e.counter_value = c->value();
    out.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    Entry e;
    e.name = name;
    e.kind = Entry::Kind::kGauge;
    e.gauge_value = g->value();
    out.push_back(std::move(e));
  }
  for (const auto& [name, h] : histograms_) {
    Entry e;
    e.name = name;
    e.kind = Entry::Kind::kHistogram;
    e.histogram = h->Read();
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

namespace {

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::RenderText() const {
  std::ostringstream os;
  for (const Entry& e : Read()) {
    switch (e.kind) {
      case Entry::Kind::kCounter:
        os << e.name << " " << e.counter_value << "\n";
        break;
      case Entry::Kind::kGauge:
        os << e.name << " " << Num(e.gauge_value) << "\n";
        break;
      case Entry::Kind::kHistogram: {
        os << e.name << " count=" << e.histogram.count
           << " sum=" << Num(e.histogram.sum);
        for (std::size_t i = 0; i < e.histogram.upper_bounds.size(); ++i)
          os << " le" << Num(e.histogram.upper_bounds[i]) << "="
             << e.histogram.counts[i];
        os << " inf=" << e.histogram.counts.back() << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::RenderJson() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const Entry& e : Read()) {
    os << (first ? "" : ",") << "\n  \"";
    first = false;
    // Metric names are from a fixed internal alphabet (no quotes or
    // backslashes), so escaping is not needed here.
    os << e.name << "\": ";
    switch (e.kind) {
      case Entry::Kind::kCounter:
        os << e.counter_value;
        break;
      case Entry::Kind::kGauge:
        os << Num(e.gauge_value);
        break;
      case Entry::Kind::kHistogram: {
        os << "{\"count\": " << e.histogram.count
           << ", \"sum\": " << Num(e.histogram.sum) << ", \"buckets\": [";
        for (std::size_t i = 0; i < e.histogram.counts.size(); ++i) {
          os << (i ? ", " : "") << "[";
          if (i < e.histogram.upper_bounds.size())
            os << Num(e.histogram.upper_bounds[i]);
          else
            os << "null";
          os << ", " << e.histogram.counts[i] << "]";
        }
        os << "]}";
        break;
      }
    }
  }
  os << "\n}\n";
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace sor::obs
